module Ast = Cm_ocl.Ast
module Eval = Cm_ocl.Eval
module Ty = Cm_ocl.Ty
module BM = Cm_uml.Behavior_model
module RM = Cm_uml.Resource_model
module J = Cm_json.Json
(* Deterministic per-case RNG over {!Cm_core.Prng} (splitmix64).  The
   analysis layer deliberately does not depend on [cm_proptest] — the
   proptest harness sits above the monitor, which now consumes this
   library — so the few combinators the generators need live here. *)
module Rng = struct
  let case ~seed case = Cm_core.Prng.of_seed ((seed * 1_000_003) + case)
  let int t bound = if bound <= 0 then 0 else Cm_core.Prng.int t bound
  let int_in = Cm_core.Prng.int_in
  let bool t = Cm_core.Prng.int t 2 = 1
  let choose t xs = List.nth xs (int t (List.length xs))
end

type result = {
  cases : int;
  branches : int;
  flagged_dead : int;
  flagged_vacuous : int;
  live_witnessed : int;
  violations : string list;
}

let ok r = r.violations = []

let pp_result ppf r =
  Fmt.pf ppf
    "%d cases x %d branches: %d flagged dead, %d flagged vacuous, %d live \
     branches witnessed, %d violations"
    r.cases r.branches r.flagged_dead r.flagged_vacuous r.live_witnessed
    (List.length r.violations)

(* ---- observation generator: signature-driven random JSON ---- *)

let string_pool =
  [ "available"; "in-use"; "active"; "error"; "deleted"; "x" ]

let usergroups =
  [ "proj_administrator"; "service_architect"; "business_analyst" ]

let rec gen_json rng (ty : Ty.t) =
  match ty with
  | Ty.Bool -> J.Bool (Rng.bool rng)
  | Ty.Int | Ty.Real -> J.Int (Rng.int_in rng 0 4)
  | Ty.String -> J.String (Rng.choose rng string_pool)
  | Ty.Collection elt ->
    J.List (List.init (Rng.int rng 4) (fun _ -> gen_json rng elt))
  | Ty.Object fields ->
    (* Occasionally drop a field so evaluation exercises Undef paths. *)
    J.Obj
      (List.filter_map
         (fun (name, fty) ->
           if Rng.int rng 8 = 0 then None
           else Some (name, gen_json rng fty))
         fields)
  | Ty.Any -> if Rng.bool rng then J.Int (Rng.int_in rng 0 4) else J.String "x"

let gen_user rng assignment =
  let groups = List.filter (fun _ -> Rng.bool rng) usergroups in
  let subject = Cm_rbac.Subject.make "crosscheck" groups in
  match assignment with
  | Some a -> Cm_rbac.Role_assignment.enrich subject a
  | None -> Cm_rbac.Subject.to_json subject

let gen_bindings rng signature assignment =
  List.map
    (fun (name, ty) ->
      if String.equal name "user" then (name, gen_user rng assignment)
      else (name, gen_json rng ty))
    signature

let gen_env rng signature assignment =
  Eval.env_of_bindings (gen_bindings rng signature assignment)

(* ---- static branch classification ---- *)

type branch = {
  label : string;
  branch_pre : Ast.expr;  (** inv(source) and guard and auth *)
  consequent : Ast.expr;  (** inv(target) and effect *)
  dead : bool;
  vacuous : bool;
}

let classify (input : Rules.input) =
  let inv_of name =
    match BM.find_state name input.behavior with
    | Some s -> s.BM.invariant
    | None -> Ast.Bool_lit true
  in
  let auth_of (tr : BM.transition) =
    match input.security with
    | None -> []
    | Some { Cm_contracts.Generate.table; assignment } ->
      (match
         Cm_rbac.Security_table.find ~resource:tr.trigger.resource
           ~meth:tr.trigger.meth table
       with
       | Some entry ->
         [ Cm_rbac.Security_table.auth_guard entry assignment ]
       | None -> [ Ast.Bool_lit false ]  (* fail-closed, as in Generate *))
  in
  List.mapi
    (fun i (tr : BM.transition) ->
      let branch_pre =
        Cm_ocl.Simplify.simplify
          (Ast.conj
             ((inv_of tr.source
              :: (match tr.guard with Some g -> [ g ] | None -> []))
             @ auth_of tr))
      in
      let consequent =
        Ast.conj
          (inv_of tr.target
          :: (match tr.effect with Some e -> [ e ] | None -> []))
      in
      { label =
          Fmt.str "transition #%d %s->%s on %a" i tr.source tr.target
            BM.pp_trigger tr.trigger;
        branch_pre;
        consequent;
        dead = Solver.satisfiable branch_pre = Solver.Unsat;
        vacuous = Solver.never_false consequent = Solver.Unsat
      })
    input.behavior.BM.transitions

(* ---- the run ---- *)

let run ?(cases = 10_000) ?(seed = 42) (input : Rules.input) =
  let signature = RM.signature input.resources in
  let signature =
    if List.mem_assoc "user" signature then signature
    else ("user", Ty.Any) :: signature
  in
  let assignment =
    Option.map
      (fun s -> s.Cm_contracts.Generate.assignment)
      input.security
  in
  let branches = classify input in
  let n = List.length branches in
  let witnessed = Array.make n false in
  let violations = ref [] in
  let record v = if List.length !violations < 10 then violations := v :: !violations in
  for case = 0 to cases - 1 do
    let rng = Rng.case ~seed case in
    let env_pre = gen_env rng signature assignment in
    let env_post =
      Eval.with_pre ~pre:env_pre (gen_env rng signature assignment)
    in
    List.iteri
      (fun i b ->
        (match Eval.check env_pre b.branch_pre with
         | Cm_ocl.Value.True ->
           if b.dead then
             record
               (Printf.sprintf
                  "case %d: %s was flagged dead but its precondition \
                   evaluated to true"
                  case b.label)
           else witnessed.(i) <- true
         | Cm_ocl.Value.False | Cm_ocl.Value.Unknown -> ());
        if b.vacuous then
          match Eval.check env_post b.consequent with
          | Cm_ocl.Value.False ->
            record
              (Printf.sprintf
                 "case %d: %s was flagged vacuous but its consequent \
                  evaluated to false"
                 case b.label)
          | Cm_ocl.Value.True | Cm_ocl.Value.Unknown -> ())
      branches
  done;
  let count p = List.length (List.filter p branches) in
  Ok
    { cases;
      branches = n;
      flagged_dead = count (fun b -> b.dead);
      flagged_vacuous = count (fun b -> b.vacuous);
      live_witnessed =
        Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 witnessed;
      violations = List.rev !violations
    }

(* ---- subscription-soundness oracle ----

   The interference analysis claims: events outside a contract's
   subscription map commute with it.  The oracle attacks the claim
   dynamically — per case it draws an environment, picks an event, and
   regenerates exactly the state that event's write effect covers
   (field-precise, so a write of [project.volumes] leaves [project.id]
   alone).  Every contract NOT subscribed to the event must then return
   bit-identical pre and post verdicts on the original and the
   perturbed environments. *)

type subscription_result = {
  sub_cases : int;
  sub_contracts : int;
  sub_checks : int;  (** (case, event, unsubscribed contract) verdict pairs *)
  sub_violations : string list;
}

let sub_ok r = r.sub_violations = []

let pp_subscription_result ppf r =
  Fmt.pf ppf
    "%d cases over %d contracts: %d unsubscribed-event verdict pairs \
     compared, %d violations"
    r.sub_cases r.sub_contracts r.sub_checks
    (List.length r.sub_violations)

let field_types signature root =
  match List.assoc_opt root signature with
  | Some (Ty.Object fs) -> fs
  | _ -> []

(* Regenerate exactly the written state inside a binding list.  Fields
   dropped by the generator stay dropped, so the perturbation never
   changes which paths are Undef outside the write set. *)
let perturb_bindings rng signature assignment (writes : Cm_ocl.Footprint.t)
    bindings =
  let fresh_root name =
    if String.equal name "user" then gen_user rng assignment
    else
      gen_json rng (Option.value ~default:Ty.Any (List.assoc_opt name signature))
  in
  List.map
    (fun (name, v) ->
      match List.assoc_opt name writes with
      | None -> (name, v)
      | Some Cm_ocl.Footprint.All -> (name, fresh_root name)
      | Some (Cm_ocl.Footprint.Fields fs) ->
        (match v with
         | J.Obj kvs ->
           let ftys = field_types signature name in
           ( name,
             J.Obj
               (List.map
                  (fun (k, fv) ->
                    if List.mem k fs then
                      ( k,
                        gen_json rng
                          (Option.value ~default:Ty.Any
                             (List.assoc_opt k ftys)) )
                    else (k, fv))
                  kvs) )
         | _ -> (name, fresh_root name)))
    bindings

let run_subscriptions ?(cases = 10_000) ?(seed = 42) (input : Rules.input) =
  match
    ( Cm_contracts.Generate.all ?security:input.security input.behavior,
      Effects.events input,
      Interference.subscriptions input )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
  | Ok contracts, Ok events, Ok subs ->
    let signature = RM.signature input.resources in
    let signature =
      if List.mem_assoc "user" signature then signature
      else ("user", Ty.Any) :: signature
    in
    let assignment =
      Option.map (fun s -> s.Cm_contracts.Generate.assignment) input.security
    in
    let subscribed (c : Cm_contracts.Contract.t) (ev : Effects.event) =
      match Interference.subscription_for subs c.trigger with
      | None -> true  (* unknown contract: assume interest, never flag *)
      | Some s ->
        List.exists
          (fun (e : Effects.event) ->
            BM.trigger_equal e.ev_trigger ev.ev_trigger)
          s.sub_events
    in
    let checks = ref 0 in
    let violations = ref [] in
    let record v =
      if List.length !violations < 10 then violations := v :: !violations
    in
    for case = 0 to cases - 1 do
      let rng = Rng.case ~seed case in
      let pre_b = gen_bindings rng signature assignment in
      let post_b = gen_bindings rng signature assignment in
      let ev = Rng.choose rng events in
      let pre_b' = perturb_bindings rng signature assignment ev.ev_writes pre_b in
      let post_b' =
        perturb_bindings rng signature assignment ev.ev_writes post_b
      in
      let env_pre = Eval.env_of_bindings pre_b in
      let env_pre' = Eval.env_of_bindings pre_b' in
      let env_post = Eval.with_pre ~pre:env_pre (Eval.env_of_bindings post_b) in
      let env_post' =
        Eval.with_pre ~pre:env_pre' (Eval.env_of_bindings post_b')
      in
      List.iter
        (fun (c : Cm_contracts.Contract.t) ->
          if not (subscribed c ev) then begin
            incr checks;
            if Eval.check env_pre c.pre <> Eval.check env_pre' c.pre then
              record
                (Fmt.str
                   "case %d: precondition of %a changed verdict on %a — an \
                    event outside its subscription map"
                   case BM.pp_trigger c.trigger BM.pp_trigger ev.ev_trigger);
            if Eval.check env_post c.post <> Eval.check env_post' c.post then
              record
                (Fmt.str
                   "case %d: postcondition of %a changed verdict on %a — an \
                    event outside its subscription map"
                   case BM.pp_trigger c.trigger BM.pp_trigger ev.ev_trigger)
          end)
        contracts
    done;
    Ok
      { sub_cases = cases;
        sub_contracts = List.length contracts;
        sub_checks = !checks;
        sub_violations = List.rev !violations
      }
