(** Length-prefixed, checksummed record framing for the event journal.

    Each record is [magic "J1" (2B) | payload length (4B LE) |
    CRC-32 of payload (4B LE) | payload].  {!scan} walks a byte string
    and returns every record that is completely and correctly present;
    it stops at the first frame that is torn (runs past the end of the
    data), has a bad magic, or fails its checksum — everything from
    that offset on is the crash's torn tail and must be discarded.

    CRC-32 (IEEE 802.3 polynomial) detects all single-byte corruptions
    and all burst errors up to 32 bits, which covers the torn-write
    model: a partially persisted record is either short (torn) or has
    trailing garbage where payload bytes should be (checksum). *)

val magic : string
(** ["J1"]. *)

val header_length : int
(** Bytes of framing per record (magic + length + checksum = 10). *)

val crc32 : string -> int
(** IEEE CRC-32 of the bytes, as a non-negative int below 2^32. *)

val frame : string -> string
(** Wrap a payload in a frame. *)

val scan : string -> string list * int
(** [scan data] is [(payloads, clean)] where [payloads] are the
    well-formed records' payloads in order and [clean] is the byte
    offset at which the first damaged frame (if any) begins —
    [String.length data] when the whole string is clean. *)
