(** The durable event journal: framed {!Event}s on a {!Device}.

    Append order is commit order.  {!sync} is the durability barrier;
    {!scan} is the recovery read path — it decodes the clean prefix and
    reports where the torn tail (if any) starts, so recovery can
    {!truncate_torn} before appending anything new. *)

type t

val create : Device.t -> t
val device : t -> Device.t

val append : t -> Event.t -> unit
(** Frame, checksum and append one event (volatile until {!sync}). *)

val sync : t -> unit

val appended : t -> int
(** Events appended since {!create}. *)

val scan : Device.t -> Event.t list * int
(** [(events, clean)] — every fully persisted, well-formed event in
    order, and the byte offset where the damaged tail begins
    ([Device.size] when the journal is clean).  A record that frames
    correctly but does not decode as an event also ends the clean
    prefix: past it nothing can be trusted. *)

val truncate_torn : Device.t -> int -> unit
(** Drop the torn tail at the offset {!scan} reported and make the
    surviving prefix durable. *)
