type t = {
  buf : Buffer.t;
  mutable durable : int;
  prng : Cm_core.Prng.t;
  clock : Cm_core.Clock.t;
  sync_latency_ms : int;
  mutable syncs : int;
  mutable crashes : int;
}

let create ?(sync_latency_ms = 1) ?(contents = "") ~clock ~seed () =
  let buf = Buffer.create (max 4096 (String.length contents)) in
  Buffer.add_string buf contents;
  {
    buf;
    durable = String.length contents;
    prng = Cm_core.Prng.of_seed seed;
    clock;
    sync_latency_ms;
    syncs = 0;
    crashes = 0;
  }

let append t s = Buffer.add_string t.buf s
let size t = Buffer.length t.buf
let durable_size t = t.durable

let sync t =
  if Buffer.length t.buf > t.durable then begin
    Cm_core.Clock.advance t.clock t.sync_latency_ms;
    t.syncs <- t.syncs + 1;
    t.durable <- Buffer.length t.buf
  end

let crash t =
  let unsynced = Buffer.length t.buf - t.durable in
  let surviving =
    if unsynced = 0 then 0 else Cm_core.Prng.int t.prng (unsynced + 1)
  in
  Buffer.truncate t.buf (t.durable + surviving);
  t.crashes <- t.crashes + 1

let truncate t n =
  let n = min n (Buffer.length t.buf) in
  Buffer.truncate t.buf n;
  t.durable <- min t.durable n

let contents t = Buffer.contents t.buf
let syncs t = t.syncs
let crashes t = t.crashes
