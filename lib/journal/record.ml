let magic = "J1"
let header_length = 10

(* IEEE CRC-32, bytewise table.  Hand-rolled: the toolchain image has no
   zlib binding, and ten lines of table generation beat a dependency. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let put_le32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_le32 s pos =
  let byte i = Char.code s.[pos + i] in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let frame payload =
  let b = Buffer.create (header_length + String.length payload) in
  Buffer.add_string b magic;
  put_le32 b (String.length payload);
  put_le32 b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let scan data =
  let len = String.length data in
  let rec loop pos acc =
    if pos + header_length > len then (List.rev acc, pos)
    else if not (String.equal (String.sub data pos 2) magic) then
      (List.rev acc, pos)
    else
      let plen = get_le32 data (pos + 2) in
      let crc = get_le32 data (pos + 6) in
      if plen < 0 || pos + header_length + plen > len then (List.rev acc, pos)
      else
        let payload = String.sub data (pos + header_length) plen in
        if crc32 payload <> crc then (List.rev acc, pos)
        else loop (pos + header_length + plen) (payload :: acc)
  in
  loop 0 []
