module Monitor = Cm_monitor.Monitor
module Outcome = Cm_monitor.Outcome
module Crash = Cm_core.Crash

let rid_header = "X-Request-Id"

type make =
  journal_pre:(Monitor.pre_image -> unit) ->
  journal_barrier:(unit -> unit) ->
  crash:Crash.t option ->
  unit ->
  (Monitor.t, string list) result

type t = {
  journal : Journal.t;
  monitor : Monitor.t;
  crash : Crash.t option;
  batch : int;
  mutable next_seq : int;
  mutable current : int option;  (* seq of the in-flight exchange *)
  mutable unsynced_verdicts : int;
  mutable verdict_log : Event.verdict_record list;  (* newest first *)
}

let monitor t = t.monitor
let journal t = t.journal
let device t = Journal.device t.journal

let alloc t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let on_pre t image =
  (* Only journal a pre-image inside a journaled exchange; [None]
     happens when the inner monitor is driven directly (recovery's own
     resume included — its pre-image is already on the journal). *)
  match t.current with
  | None -> ()
  | Some seq ->
      Crash.at t.crash "journal.before-pre";
      Journal.append t.journal (Event.Pre { seq; image });
      Crash.at t.crash "journal.after-pre"

let barrier t =
  Crash.at t.crash "journal.before-sync";
  Journal.sync t.journal;
  t.unsynced_verdicts <- 0;
  Crash.at t.crash "journal.after-sync"

let make_instance ?(batch = 8) ?crash device (make : make) =
  let journal = Journal.create device in
  let cell = ref None in
  let with_t f = match !cell with Some t -> f t | None -> () in
  match
    make
      ~journal_pre:(fun image -> with_t (fun t -> on_pre t image))
      ~journal_barrier:(fun () -> with_t barrier)
      ~crash ()
  with
  | Error es -> Error es
  | Ok monitor ->
      let t =
        {
          journal;
          monitor;
          crash;
          batch;
          next_seq = 1;
          current = None;
          unsynced_verdicts = 0;
          verdict_log = [];
        }
      in
      cell := Some t;
      Ok t

let create ?batch ?crash device make = make_instance ?batch ?crash device make

let verdict_of ~seq ~rid (outcome : Outcome.t) =
  {
    Event.v_seq = seq;
    v_rid = rid;
    v_meth = Cm_http.Meth.to_string outcome.request.Cm_http.Request.meth;
    v_path = outcome.request.Cm_http.Request.path;
    v_status = outcome.response.Cm_http.Response.status;
    v_conformance = Outcome.conformance_to_string outcome.conformance;
    v_detail = outcome.detail;
    v_covered = outcome.covered_requirements;
    v_body = outcome.response.Cm_http.Response.body;
  }

let emit t ~seq ~rid outcome =
  let v = verdict_of ~seq ~rid outcome in
  Crash.at t.crash "journal.before-verdict";
  Journal.append t.journal (Event.Verdict v);
  t.unsynced_verdicts <- t.unsynced_verdicts + 1;
  if t.unsynced_verdicts >= t.batch then begin
    Journal.sync t.journal;
    t.unsynced_verdicts <- 0
  end;
  Crash.at t.crash "journal.after-verdict";
  t.verdict_log <- v :: t.verdict_log;
  v

let handle t req =
  let seq = alloc t in
  let rid, req =
    match Cm_http.Headers.get rid_header req.Cm_http.Request.headers with
    | Some rid -> (rid, req)
    | None ->
        let rid = Printf.sprintf "jrn-%d" seq in
        ( rid,
          {
            req with
            Cm_http.Request.headers =
              Cm_http.Headers.replace rid_header rid
                req.Cm_http.Request.headers;
          } )
  in
  Crash.at t.crash "journal.before-request";
  Journal.append t.journal (Event.Request { seq; rid; req });
  Crash.at t.crash "journal.after-request";
  t.current <- Some seq;
  let outcome = Monitor.handle t.monitor req in
  let _v = emit t ~seq ~rid outcome in
  t.current <- None;
  outcome

let handle_response t req = (handle t req).Outcome.response

let mark t note =
  let seq = alloc t in
  Journal.append t.journal (Event.Mark { seq; note })

let sync t =
  Journal.sync t.journal;
  t.unsynced_verdicts <- 0

let verdicts t = List.rev t.verdict_log
let verdict_lines t = List.map Event.verdict_line (verdicts t)

let verdict_for_rid t rid =
  List.find_opt (fun v -> String.equal v.Event.v_rid rid) t.verdict_log

type recovery = {
  events_scanned : int;
  discarded_bytes : int;
  resumed : int;
  rehandled : int;
}

let recover ?batch ?crash device make =
  let events, clean = Journal.scan device in
  let discarded = Device.size device - clean in
  Journal.truncate_torn device clean;
  match make_instance ?batch ?crash device make with
  | Error es -> Error es
  | Ok t ->
      (* Index the surviving history. *)
      let concluded = Hashtbl.create 64 in
      let pre_images = Hashtbl.create 8 in
      let max_seq = ref 0 in
      List.iter
        (fun ev ->
          max_seq := max !max_seq (Event.seq ev);
          match ev with
          | Event.Verdict v ->
              Hashtbl.replace concluded v.Event.v_seq ();
              t.verdict_log <- v :: t.verdict_log
          | Event.Pre { seq; image } -> Hashtbl.replace pre_images seq image
          | Event.Request _ | Event.Mark _ -> ())
        events;
      t.next_seq <- !max_seq + 1;
      (* Finish every request without a durable verdict.  By the
         barrier-before-every-forward invariant at most the last one
         can exist, but recovery handles any number soundly. *)
      let resumed = ref 0 and rehandled = ref 0 in
      List.iter
        (fun ev ->
          match ev with
          | Event.Request { seq; rid; req } when not (Hashtbl.mem concluded seq)
            ->
              let outcome =
                match Hashtbl.find_opt pre_images seq with
                | Some image ->
                    incr resumed;
                    Monitor.resume t.monitor req image
                | None ->
                    (* Nothing durable was forwarded for this request
                       (no pre-image means no barrier ran after its
                       append), or it was uncontracted — either way a
                       fresh handle with the same rid is idempotent. *)
                    incr rehandled;
                    Monitor.handle t.monitor req
              in
              ignore (emit t ~seq ~rid outcome)
          | _ -> ())
        events;
      sync t;
      Ok
        ( t,
          {
            events_scanned = List.length events;
            discarded_bytes = discarded;
            resumed = !resumed;
            rehandled = !rehandled;
          } )

type step =
  | Replay_request of { seq : int; rid : string; req : Cm_http.Request.t }
  | Replay_mark of string

let replay_plan events =
  List.filter_map
    (function
      | Event.Request { seq; rid; req } -> Some (Replay_request { seq; rid; req })
      | Event.Mark { note; _ } -> Some (Replay_mark note)
      | Event.Pre _ | Event.Verdict _ -> None)
    events

let journaled_verdict_lines events =
  List.filter_map
    (function
      | Event.Verdict v -> Some (Event.verdict_line v)
      | Event.Request _ | Event.Pre _ | Event.Mark _ -> None)
    events
