(** A monitor wrapped in a durable write-ahead event journal.

    Per monitored exchange the wrapper appends (see {!Event}):
    [Request] (synced before any forward), [Pre] (the pre-phase
    conclusion, also synced before the forward — write-ahead), and
    [Verdict] (group-committed: it rides unsynced until the next
    forward's barrier or until [batch] verdicts have accumulated).

    The recovery invariant this buys: {e forwarded implies durably
    journaled}.  After a crash at any point, at most the single
    in-flight exchange lacks a durable verdict, and its journaled
    pre-image suffices to finish it with {!Cm_monitor.Monitor.resume}
    — re-forwarding idempotently by [X-Request-Id] — so every request
    ends with {e exactly one} durable verdict per sequence number, and
    the verdict stream equals the crash-free run's.

    Crash-point injection: when a {!Cm_core.Crash.t} is supplied, the
    wrapper announces the sites [journal.before-request],
    [journal.after-request], [journal.before-pre], [journal.after-pre],
    [journal.before-sync], [journal.after-sync],
    [journal.before-verdict] and [journal.after-verdict] (the monitor
    itself adds [monitor.after-forward] and
    [monitor.after-invalidate]).  An armed crash raises
    [Cm_core.Crash.Crashed] out of {!handle}; the test driver then
    calls {!Device.crash} and {!recover}. *)

val rid_header : string
(** ["X-Request-Id"] — the idempotency key the backend dedups on. *)

type make =
  journal_pre:(Cm_monitor.Monitor.pre_image -> unit) ->
  journal_barrier:(unit -> unit) ->
  crash:Cm_core.Crash.t option ->
  unit ->
  (Cm_monitor.Monitor.t, string list) result
(** Monitor factory: the caller owns backend construction and config;
    the wrapper owns the journal hooks it must be created with. *)

type t

val create :
  ?batch:int ->
  ?crash:Cm_core.Crash.t ->
  Device.t ->
  make ->
  (t, string list) result
(** A journaled monitor on an (empty or recovered) device.  [batch]
    (default 8) is the group-commit threshold: a sync is forced every
    [batch] verdicts even if no forward barrier arrives first. *)

val monitor : t -> Cm_monitor.Monitor.t
val journal : t -> Journal.t
val device : t -> Device.t

val handle : t -> Cm_http.Request.t -> Cm_monitor.Outcome.t
(** Journal, monitor, journal — see the module header.  Requests
    without an [X-Request-Id] header are assigned one ([jrn-<seq>])
    before journaling, so a recovery re-forward always dedups.  Raises
    [Cm_core.Crash.Crashed] when an armed crash point fires. *)

val handle_response : t -> Cm_http.Request.t -> Cm_http.Response.t

val mark : t -> string -> unit
(** Journal an out-of-band action (relogin, tenant churn) so replays
    can re-perform it in sequence. *)

val sync : t -> unit
(** Explicit durability barrier (e.g. at clean shutdown). *)

val verdicts : t -> Event.verdict_record list
(** Every verdict this instance knows, oldest first — after
    {!recover}, journaled history followed by resumed verdicts. *)

val verdict_lines : t -> string list
(** {!verdicts} through {!Event.verdict_line}. *)

val verdict_for_rid : t -> string -> Event.verdict_record option
(** Latest verdict for an idempotency key.  A client that crashed
    mid-call asks this after recovery: [Some v] means the exchange
    completed (use the recorded response); [None] means it is safe to
    re-issue with the same key. *)

type recovery = {
  events_scanned : int;  (** clean events found on the device *)
  discarded_bytes : int;  (** torn/corrupt tail dropped *)
  resumed : int;
      (** pending exchanges finished via [Monitor.resume] (their
          pre-image was durable) *)
  rehandled : int;
      (** pending exchanges re-run from scratch (request durable, no
          pre-image — so nothing was ever forwarded, or the request was
          uncontracted and the re-forward dedups) *)
}

val recover :
  ?batch:int ->
  ?crash:Cm_core.Crash.t ->
  Device.t ->
  make ->
  (t * recovery, string list) result
(** Restart from a crashed device: scan, drop the torn tail, rebuild a
    fresh monitor, finish every request that lacks a durable verdict
    (exactly-once by sequence number), sync.  The returned instance
    continues the journal where the crash left it. *)

(** {2 Replay helpers}

    A scanned journal can be replayed against a fresh backend: re-issue
    each [Request] in order (the recorded ids — tokens, created
    resources — are deterministic, so they stay valid), re-perform each
    [Mark] out-of-band, and compare verdict lines. *)

type step =
  | Replay_request of { seq : int; rid : string; req : Cm_http.Request.t }
  | Replay_mark of string

val replay_plan : Event.t list -> step list
val journaled_verdict_lines : Event.t list -> string list
