(** Journal events and their (JSON) payload serialization.

    One monitored exchange produces up to three events, all carrying
    the same sequence number:

    - [Request] — the incoming request, verbatim, tagged with its
      idempotency key ([X-Request-Id]); appended {e and synced} before
      anything is forwarded.
    - [Pre] — the pre-phase conclusion ({!Cm_monitor.Monitor.pre_image})
      of a contracted request; synced before the forward, so recovery
      never has to re-observe a pre-state the effect may already have
      destroyed.
    - [Verdict] — the exchange's conformance verdict and response;
      group-committed (rides unsynced until the next barrier or batch
      flush).

    [Mark] records out-of-band actions (relogins, tenant churn) so a
    replay can re-perform them in sequence; it carries no verdict.

    Serialization is line-oriented JSON — human-greppable, and decode
    failures are soft ([None]) because a journal tail can be torn. *)

type verdict_record = {
  v_seq : int;
  v_rid : string;  (** the request's idempotency key *)
  v_meth : string;
  v_path : string;
  v_status : int;  (** status the monitor returned upstream *)
  v_conformance : string;  (** [Outcome.conformance_to_string] *)
  v_detail : string;
  v_covered : string list;
  v_body : Cm_json.Json.t option;
      (** response body — replays resolve created ids from it *)
}

type t =
  | Request of { seq : int; rid : string; req : Cm_http.Request.t }
  | Pre of { seq : int; image : Cm_monitor.Monitor.pre_image }
  | Verdict of verdict_record
  | Mark of { seq : int; note : string }

val seq : t -> int
val encode : t -> string
val decode : string -> t option
(** [None] on any malformed payload — never raises. *)

val verdict_line : verdict_record -> string
(** Canonical one-line rendering of a verdict, used wherever two
    verdict streams are compared for bit-identity (live vs. replayed,
    pre- vs. post-crash).  Includes the response body in canonical
    (key-sorted) form. *)

val pp : Format.formatter -> t -> unit
