module J = Cm_json.Json

type verdict_record = {
  v_seq : int;
  v_rid : string;
  v_meth : string;
  v_path : string;
  v_status : int;
  v_conformance : string;
  v_detail : string;
  v_covered : string list;
  v_body : Cm_json.Json.t option;
}

type t =
  | Request of { seq : int; rid : string; req : Cm_http.Request.t }
  | Pre of { seq : int; image : Cm_monitor.Monitor.pre_image }
  | Verdict of verdict_record
  | Mark of { seq : int; note : string }

let seq = function
  | Request { seq; _ } | Pre { seq; _ } | Mark { seq; _ } -> seq
  | Verdict v -> v.v_seq

(* Options are wrapped in a singleton list ([Null] = absent) so that
   [Some Null] bodies survive a round-trip. *)
let opt enc = function None -> J.Null | Some x -> J.List [ enc x ]

let dec_opt dec = function
  | J.Null -> Some None
  | J.List [ x ] -> Option.map Option.some (dec x)
  | _ -> None

let enc_pairs ps =
  J.List (List.map (fun (k, v) -> J.List [ J.String k; J.String v ]) ps)

let dec_pairs j =
  match j with
  | J.List items ->
      let pair = function
        | J.List [ J.String k; J.String v ] -> Some (k, v)
        | _ -> None
      in
      let ps = List.filter_map pair items in
      if List.length ps = List.length items then Some ps else None
  | _ -> None

let enc_verdict = function
  | Cm_ocl.Eval.Holds -> J.String "H"
  | Cm_ocl.Eval.Violated -> J.String "V"
  | Cm_ocl.Eval.Undefined_verdict hint -> J.List [ J.String "U"; J.String hint ]

let dec_verdict = function
  | J.String "H" -> Some Cm_ocl.Eval.Holds
  | J.String "V" -> Some Cm_ocl.Eval.Violated
  | J.List [ J.String "U"; J.String hint ] ->
      Some (Cm_ocl.Eval.Undefined_verdict hint)
  | _ -> None

let enc_tri = function
  | Cm_ocl.Value.True -> J.String "T"
  | Cm_ocl.Value.False -> J.String "F"
  | Cm_ocl.Value.Unknown -> J.String "U"

let dec_tri = function
  | J.String "T" -> Some Cm_ocl.Value.True
  | J.String "F" -> Some Cm_ocl.Value.False
  | J.String "U" -> Some Cm_ocl.Value.Unknown
  | _ -> None

let enc_value = function
  | Cm_ocl.Value.Undef -> J.List [ J.String "u" ]
  | Cm_ocl.Value.Json j -> J.List [ J.String "j"; j ]

let dec_value = function
  | J.List [ J.String "u" ] -> Some Cm_ocl.Value.Undef
  | J.List [ J.String "j"; j ] -> Some (Cm_ocl.Value.Json j)
  | _ -> None

let enc_snapshot slots =
  J.List
    (List.map (fun (slot, v) -> J.List [ J.String slot; enc_value v ]) slots)

let dec_snapshot j =
  match j with
  | J.List items ->
      let slot = function
        | J.List [ J.String name; v ] ->
            Option.map (fun v -> (name, v)) (dec_value v)
        | _ -> None
      in
      let ss = List.filter_map slot items in
      if List.length ss = List.length items then Some ss else None
  | _ -> None

let enc_strings ss = J.List (List.map (fun s -> J.String s) ss)

let dec_strings = function
  | J.List items ->
      let s = function J.String s -> Some s | _ -> None in
      let ss = List.filter_map s items in
      if List.length ss = List.length items then Some ss else None
  | _ -> None

let encode ev =
  let json =
    match ev with
    | Request { seq; rid; req } ->
        J.Obj
          [
            ("t", J.String "req");
            ("seq", J.Int seq);
            ("rid", J.String rid);
            ("meth", J.String (Cm_http.Meth.to_string req.Cm_http.Request.meth));
            ("path", J.String req.Cm_http.Request.path);
            ("query", enc_pairs req.Cm_http.Request.query);
            ( "headers",
              enc_pairs (Cm_http.Headers.to_list req.Cm_http.Request.headers) );
            ("body", opt Fun.id req.Cm_http.Request.body);
          ]
    | Pre { seq; image } ->
        J.Obj
          [
            ("t", J.String "pre");
            ("seq", J.Int seq);
            ("pre", enc_verdict image.Cm_monitor.Monitor.pi_pre_verdict);
            ("auth", opt enc_tri image.Cm_monitor.Monitor.pi_auth);
            ("fn", enc_tri image.Cm_monitor.Monitor.pi_functional);
            ("cov", enc_strings image.Cm_monitor.Monitor.pi_covered);
            ("snap", opt enc_snapshot image.Cm_monitor.Monitor.pi_snapshot);
          ]
    | Verdict v ->
        J.Obj
          [
            ("t", J.String "ver");
            ("seq", J.Int v.v_seq);
            ("rid", J.String v.v_rid);
            ("meth", J.String v.v_meth);
            ("path", J.String v.v_path);
            ("status", J.Int v.v_status);
            ("conf", J.String v.v_conformance);
            ("detail", J.String v.v_detail);
            ("cov", enc_strings v.v_covered);
            ("body", opt Fun.id v.v_body);
          ]
    | Mark { seq; note } ->
        J.Obj
          [ ("t", J.String "mark"); ("seq", J.Int seq); ("note", J.String note) ]
  in
  Cm_json.Printer.to_string json

let field name j = J.member name j
let str name j = Option.bind (field name j) J.to_string
let int_f name j = Option.bind (field name j) J.to_int

let ( let* ) = Option.bind

let decode_json j =
  let* tag = str "t" j in
  let* seq = int_f "seq" j in
  match tag with
  | "req" ->
      let* rid = str "rid" j in
      let* meth = Option.bind (str "meth" j) Cm_http.Meth.of_string in
      let* path = str "path" j in
      let* query = Option.bind (field "query" j) dec_pairs in
      let* headers = Option.bind (field "headers" j) dec_pairs in
      let* body = Option.bind (field "body" j) (dec_opt Option.some) in
      let req =
        {
          Cm_http.Request.meth;
          path;
          query;
          headers = Cm_http.Headers.of_list headers;
          body;
        }
      in
      Some (Request { seq; rid; req })
  | "pre" ->
      let* pi_pre_verdict = Option.bind (field "pre" j) dec_verdict in
      let* pi_auth = Option.bind (field "auth" j) (dec_opt dec_tri) in
      let* pi_functional = Option.bind (field "fn" j) dec_tri in
      let* pi_covered = Option.bind (field "cov" j) dec_strings in
      let* pi_snapshot = Option.bind (field "snap" j) (dec_opt dec_snapshot) in
      Some
        (Pre
           {
             seq;
             image =
               {
                 Cm_monitor.Monitor.pi_pre_verdict;
                 pi_auth;
                 pi_functional;
                 pi_covered;
                 pi_snapshot;
               };
           })
  | "ver" ->
      let* v_rid = str "rid" j in
      let* v_meth = str "meth" j in
      let* v_path = str "path" j in
      let* v_status = int_f "status" j in
      let* v_conformance = str "conf" j in
      let* v_detail = str "detail" j in
      let* v_covered = Option.bind (field "cov" j) dec_strings in
      let* v_body = Option.bind (field "body" j) (dec_opt Option.some) in
      Some
        (Verdict
           {
             v_seq = seq;
             v_rid;
             v_meth;
             v_path;
             v_status;
             v_conformance;
             v_detail;
             v_covered;
             v_body;
           })
  | "mark" ->
      let* note = str "note" j in
      Some (Mark { seq; note })
  | _ -> None

let decode payload =
  match Cm_json.Parser.parse payload with
  | Error _ -> None
  | Ok j -> ( try decode_json j with _ -> None)

let verdict_line v =
  Printf.sprintf "%d %s %s %s %d %s %s [%s] %s" v.v_seq v.v_rid v.v_meth
    v.v_path v.v_status v.v_conformance v.v_detail
    (String.concat "," v.v_covered)
    (match v.v_body with
    | None -> "-"
    | Some body -> Cm_json.Printer.to_string (J.sort_keys body))

let pp ppf ev =
  match ev with
  | Request { seq; rid; req } ->
      Format.fprintf ppf "#%d req %s %s %s" seq rid
        (Cm_http.Meth.to_string req.Cm_http.Request.meth)
        req.Cm_http.Request.path
  | Pre { seq; _ } -> Format.fprintf ppf "#%d pre" seq
  | Verdict v -> Format.fprintf ppf "#%d verdict %s" v.v_seq v.v_conformance
  | Mark { seq; note } -> Format.fprintf ppf "#%d mark %s" seq note
