type t = { device : Device.t; mutable appended : int }

let create device = { device; appended = 0 }
let device t = t.device

let append t ev =
  Device.append t.device (Record.frame (Event.encode ev));
  t.appended <- t.appended + 1

let sync t = Device.sync t.device
let appended t = t.appended

let scan device =
  let payloads, clean = Record.scan (Device.contents device) in
  (* Decode the frame-clean prefix; a payload that frames correctly but
     is not an event ends the trustworthy prefix (recompute the byte
     offset of the first rejected record from the payload lengths). *)
  let rec loop payloads pos acc =
    match payloads with
    | [] -> (List.rev acc, clean)
    | payload :: rest -> (
        match Event.decode payload with
        | Some ev ->
            loop rest (pos + Record.header_length + String.length payload)
              (ev :: acc)
        | None -> (List.rev acc, pos))
  in
  loop payloads 0 []

let truncate_torn device clean =
  Device.truncate device clean;
  Device.sync device
