(** A virtual durable byte device with an explicit sync barrier.

    The journal appends into a volatile buffer; {!sync} moves the
    durability watermark to the end of the buffer (modelling [fsync],
    charging its latency to the shared virtual clock).  {!crash} models
    a process/machine crash under the standard torn-write model: all
    synced bytes survive, and a {e seeded-random prefix} of the unsynced
    tail survives too — the tail may end mid-record, which is exactly
    the corruption the record framing's checksums must catch.

    Like every simulator in this repo the device is deterministic: the
    surviving-prefix length is drawn from a splitmix64 stream, so a
    crash campaign replays bit-identically from its seed. *)

type t

val create :
  ?sync_latency_ms:int ->
  ?contents:string ->
  clock:Cm_core.Clock.t ->
  seed:int ->
  unit ->
  t
(** A fresh device.  [sync_latency_ms] (default 1) is charged to
    [clock] on every effective {!sync}.  [contents] mounts an existing
    image (counted as durable) — the torn-tail tests use it to open
    the same recorded journal cut at every byte offset. *)

val append : t -> string -> unit
(** Append bytes to the volatile tail. *)

val sync : t -> unit
(** Durability barrier: everything appended so far survives any later
    {!crash}.  No-op (and free) when there is nothing unsynced. *)

val crash : t -> unit
(** Kill the device: the unsynced tail is truncated to a seeded-random
    surviving prefix (possibly empty, possibly all of it).  Synced
    bytes are never lost. *)

val truncate : t -> int -> unit
(** [truncate t n] discards bytes from offset [n] on — recovery uses
    this to drop a torn tail it has scanned past. *)

val contents : t -> string
(** Every byte currently on the device (synced or not). *)

val size : t -> int
val durable_size : t -> int

val syncs : t -> int
(** Effective sync count (no-op syncs are not counted) — the
    group-commit benchmark's denominator. *)

val crashes : t -> int
