type entry = {
  resource : string;
  template : Cm_http.Uri_template.t;
  is_item : bool;
}

let id_param name = String.lowercase_ascii name ^ "_id"

let ( let* ) r f = Result.bind r f

let derive (model : Resource_model.t) =
  let open Resource_model in
  let entry resource path is_item =
    match Cm_http.Uri_template.parse path with
    | Ok template -> Ok { resource; template; is_item }
    | Error msg -> Error (Printf.sprintf "bad path for %s: %s" resource msg)
  in
  let lookup def_name =
    match find_resource def_name model with
    | Some def -> Ok def
    | None -> Error (Printf.sprintf "unknown resource %s" def_name)
  in
  (* Walk containment from the root, accumulating path text.  [visited]
     guards against cycles in the association graph. *)
  let rec walk acc visited def_name path =
    if List.mem def_name visited then
      Error (Printf.sprintf "containment cycle through %s" def_name)
    else
      let* def = lookup def_name in
      let visited = def_name :: visited in
      match def.kind with
      | Collection ->
        (* The collection itself is addressable, and so is each item of
           every contained resource definition. *)
        let* collection_entry = entry def_name path false in
        let walk_child acc child =
          let item_path = path ^ "/{" ^ id_param child.target ^ "}" in
          walk acc visited child.target item_path
        in
        fold_children (collection_entry :: acc) walk_child
          (outgoing def_name model)
      | Normal ->
        let* item_entry = entry def_name path true in
        let walk_child acc child =
          let child_path = path ^ "/" ^ child.role in
          let* target_def = lookup child.target in
          match target_def.kind with
          | Collection -> walk acc visited child.target child_path
          | Normal ->
            if Multiplicity.is_collection child.multiplicity then begin
              (* A many-association to a normal resource is an implicit
                 sub-collection: the role URI lists it, the
                 id-parameterised URI addresses the items. *)
              let* sub_collection = entry child.target child_path false in
              let item_path =
                child_path ^ "/{" ^ id_param child.target ^ "}"
              in
              let* acc = walk acc visited child.target item_path in
              Ok (sub_collection :: acc)
            end
            else walk acc visited child.target child_path
        in
        fold_children (item_entry :: acc) walk_child
          (outgoing def_name model)
  and fold_children acc f children =
    List.fold_left
      (fun acc_result child ->
        let* acc = acc_result in
        f acc child)
      (Ok acc) children
  in
  let* entries = walk [] [] model.root model.base_path in
  Ok (List.rev entries)

(* Hashed entry lookup: the monitor and the observer resolve entries on
   every request/observation, so a linear scan over the derived table is
   hot-path work.  Keyed by (resource, is_item); first derived entry
   wins, as with [List.find_opt]. *)
type index = (string * bool, entry) Hashtbl.t

let index entries =
  let table = Hashtbl.create (2 * List.length entries + 1) in
  List.iter
    (fun entry ->
      let key = (entry.resource, entry.is_item) in
      if not (Hashtbl.mem table key) then Hashtbl.add table key entry)
    entries;
  table

let find idx ~resource ~item = Hashtbl.find_opt idx (resource, item)

let template_for model ~resource ~item =
  match derive model with
  | Error _ -> None
  | Ok entries ->
    find (index entries) ~resource ~item
    |> Option.map (fun e -> e.template)
