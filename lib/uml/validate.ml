module Lint = Cm_lint.Lint

type issue = Lint.finding

(* Rule codes for the well-formedness layer.  Severity is always Error:
   the generator refuses ill-formed input outright. *)
let c_duplicate = "VAL001"
let c_dangling = "VAL002"
let c_structure = "VAL003"
let c_unreachable = "VAL004"
let c_typecheck = "VAL005"
let c_prestate = "VAL006"

let catalogue =
  [ Lint.rule ~code:c_duplicate ~title:"duplicate model element name"
      ~severity:Lint.Error
      "Resource, attribute, role and state names must be unique within \
       their scope; duplicates make URI derivation and state lookup \
       ambiguous.";
    Lint.rule ~code:c_dangling ~title:"dangling model reference"
      ~severity:Lint.Error
      "An association endpoint, root, initial state, transition endpoint \
       or trigger resource names a model element that does not exist.";
    Lint.rule ~code:c_structure ~title:"malformed resource structure"
      ~severity:Lint.Error
      "Collections must have no attributes and contain exactly one \
       resource definition; the root must be a collection; URI templates \
       must be derivable.";
    Lint.rule ~code:c_unreachable ~title:"unreachable model element"
      ~severity:Lint.Error
      "Every resource definition must be reachable from the root and \
       every state from the initial state.";
    Lint.rule ~code:c_typecheck ~title:"expression does not typecheck"
      ~severity:Lint.Error
      "Invariants, guards and effects must typecheck as Boolean against \
       the resource-model signature.";
    Lint.rule ~code:c_prestate ~title:"illegal pre-state reference"
      ~severity:Lint.Error
      "Only effects may reference the pre-state via @pre; invariants and \
       guards are single-state predicates."
  ]

let issue ~rule ~where problem =
  Lint.finding ~rule ~severity:Lint.Error ~where problem

let pp_issue = Lint.pp_finding
(* Deprecated: use {!Cm_lint.Lint.pp_finding} (this is now an alias). *)

let duplicates names =
  let sorted = List.sort String.compare names in
  let rec loop acc = function
    | a :: (b :: _ as rest) ->
      loop (if a = b && not (List.mem a acc) then a :: acc else acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  loop [] sorted

let resource_model (model : Resource_model.t) =
  let open Resource_model in
  let issues = ref [] in
  let add ~rule where problem = issues := issue ~rule ~where problem :: !issues in
  let names = List.map (fun r -> r.def_name) model.resources in
  List.iter
    (fun name -> add ~rule:c_duplicate name "duplicate resource definition name")
    (duplicates names);
  List.iter
    (fun (r : resource_def) ->
      let attr_names = List.map (fun a -> a.attr_name) r.attributes in
      List.iter
        (fun a ->
          add ~rule:c_duplicate r.def_name
            (Printf.sprintf "duplicate attribute %S" a))
        (duplicates attr_names);
      match r.kind with
      | Collection ->
        if r.attributes <> [] then
          add ~rule:c_structure r.def_name
            "collection resource definition has attributes";
        (match outgoing r.def_name model with
         | [ _ ] -> ()
         | [] ->
           add ~rule:c_structure r.def_name
             "collection contains no resource definition"
         | _ :: _ :: _ ->
           add ~rule:c_structure r.def_name
             "collection contains more than one resource definition")
      | Normal -> ())
    model.resources;
  List.iter
    (fun (a : association) ->
      if not (List.mem a.source names) then
        add ~rule:c_dangling a.role
          (Printf.sprintf "association source %S does not exist" a.source);
      if not (List.mem a.target names) then
        add ~rule:c_dangling a.role
          (Printf.sprintf "association target %S does not exist" a.target))
    model.associations;
  (* Role names must be unique per source: they become URI segments. *)
  List.iter
    (fun (r : resource_def) ->
      let roles = List.map (fun (a : association) -> a.role) (outgoing r.def_name model) in
      List.iter
        (fun role ->
          add ~rule:c_duplicate r.def_name
            (Printf.sprintf "duplicate role name %S" role))
        (duplicates roles))
    model.resources;
  (match find_resource model.root model with
   | None ->
     add ~rule:c_dangling model.root "root resource definition does not exist"
   | Some root_def ->
     if root_def.kind <> Collection then
       add ~rule:c_structure model.root
         "root resource definition is not a collection");
  (match Paths.derive model with
   | Error msg -> add ~rule:c_structure model.model_name msg
   | Ok entries ->
     let reachable = List.map (fun (e : Paths.entry) -> e.resource) entries in
     List.iter
       (fun name ->
         if not (List.mem name reachable) then
           add ~rule:c_unreachable name
             "resource definition not reachable from the root")
       names);
  List.rev !issues

let check_expr signature where label allow_pre expr issues =
  let add ~rule problem = issues := issue ~rule ~where problem :: !issues in
  if (not allow_pre) && Cm_ocl.Ast.has_pre expr then
    add ~rule:c_prestate
      (Printf.sprintf "%s must not reference the pre-state" label);
  List.iter
    (fun err ->
      add ~rule:c_typecheck
        (Fmt.str "%s does not typecheck: %a" label Cm_ocl.Typecheck.pp_error err))
    (Cm_ocl.Typecheck.check_boolean signature expr)

let behavior_model (resources : Resource_model.t) (machine : Behavior_model.t) =
  let open Behavior_model in
  let issues = ref [] in
  let add ~rule where problem = issues := issue ~rule ~where problem :: !issues in
  let signature = Resource_model.signature resources in
  let state_names = List.map (fun s -> s.state_name) machine.states in
  List.iter
    (fun name -> add ~rule:c_duplicate name "duplicate state name")
    (duplicates state_names);
  if not (List.mem machine.initial state_names) then
    add ~rule:c_dangling machine.initial "initial state does not exist";
  List.iter
    (fun s ->
      check_expr signature s.state_name "state invariant" false s.invariant
        issues)
    machine.states;
  let resource_names =
    List.map
      (fun (r : Resource_model.resource_def) -> String.lowercase_ascii r.def_name)
      resources.resources
  in
  List.iteri
    (fun i tr ->
      let where =
        Fmt.str "transition #%d %s->%s on %a" i tr.source tr.target pp_trigger
          tr.trigger
      in
      if not (List.mem tr.source state_names) then
        add ~rule:c_dangling where "source state does not exist";
      if not (List.mem tr.target state_names) then
        add ~rule:c_dangling where "target state does not exist";
      if not (List.mem (String.lowercase_ascii tr.trigger.resource) resource_names)
      then
        add ~rule:c_dangling where
          (Printf.sprintf "trigger resource %S not in the resource model"
             tr.trigger.resource);
      (match tr.guard with
       | Some guard -> check_expr signature where "guard" false guard issues
       | None -> ());
      (match tr.effect with
       | Some effect -> check_expr signature where "effect" true effect issues
       | None -> ()))
    machine.transitions;
  (* Reachability from the initial state. *)
  let rec reach visited frontier =
    match frontier with
    | [] -> visited
    | s :: rest ->
      if List.mem s visited then reach visited rest
      else
        let next =
          List.filter_map
            (fun tr -> if tr.source = s then Some tr.target else None)
            machine.transitions
        in
        reach (s :: visited) (next @ rest)
  in
  let reachable = reach [] [ machine.initial ] in
  List.iter
    (fun name ->
      if not (List.mem name reachable) then
        add ~rule:c_unreachable name "state not reachable from the initial state")
    state_names;
  List.rev !issues

let all resources machines =
  resource_model resources
  @ List.concat_map (behavior_model resources) machines
