(* The cross-service model: one machine spanning block storage, compute
   and the image service, so contracts can state invariants no single
   service can check — an attachment must reference a live server and an
   available volume, an image-backed volume must name an active image,
   and a backing image must outlive its volumes.

   The resource tree extends the Cinder model with the compute and image
   surfaces of the same project:

     project -- volumes  --> Volumes  --> volume
             -- servers  --> Servers  --> server -- attach --> Attachments --> attachment
             |                                  -- detach --> Detachments --> detachment
             -- images   --> Images   --> image
             -- quota_sets

   POST on the [Attachments] collection URI
   ([/v3/{project_id}/servers/{server_id}/attach]) is the attach
   request; its trigger resolves to the contained item, [attachment].
   Guards navigate the request body ([request.volume_id],
   [request.volume.imageRef]) — the monitor binds [request] to the
   intercepted body, so cross-service references are checked against
   the observed state of the *other* service. *)

let ocl = Cm_ocl.Ocl_parser.parse_exn

let resources : Resource_model.t =
  let open Resource_model in
  { model_name = "CrossServiceResourceModel";
    base_path = "/v3";
    root = "Projects";
    resources =
      [ collection "Projects";
        normal "project" [ ("id", A_string); ("name", A_string) ];
        collection "Volumes";
        normal "volume"
          [ ("id", A_string);
            ("name", A_string);
            ("status", A_string);
            ("size", A_int);
            ("source_image", A_string);
            ("attached_server", A_string)
          ];
        collection "Servers";
        normal "server"
          [ ("id", A_string); ("name", A_string); ("status", A_string) ];
        collection "Attachments";
        normal "attachment"
          [ ("id", A_string); ("server_id", A_string) ];
        collection "Detachments";
        normal "detachment"
          [ ("id", A_string); ("server_id", A_string) ];
        collection "Images";
        normal "image"
          [ ("id", A_string);
            ("name", A_string);
            ("status", A_string);
            ("visibility", A_string);
            ("size", A_int)
          ];
        normal "quota_sets"
          [ ("id", A_string);
            ("volumes", A_int);
            ("gigabytes", A_int);
            ("images", A_int)
          ]
      ];
    associations =
      [ assoc ~role:"projects" "Projects" "project";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"volumes" "project"
          "Volumes";
        assoc ~role:"volume" "Volumes" "volume";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"servers" "project"
          "Servers";
        assoc ~role:"server" "Servers" "server";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"attach" "server"
          "Attachments";
        assoc ~role:"attachment" "Attachments" "attachment";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"detach" "server"
          "Detachments";
        assoc ~role:"detachment" "Detachments" "detachment";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"images" "project"
          "Images";
        assoc ~role:"image" "Images" "image";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"quota_sets"
          "project" "quota_sets"
      ]
  }

let signature = Resource_model.signature resources

(* Same project states as the Cinder machine: the cross-service triggers
   never change the volume count, so each appears as self-loops. *)
let s_no_volume = "project_with_no_volume"
let s_not_full = "project_with_volume_and_not_full_quota"
let s_full = "project_with_volume_and_full_quota"

let inv_no_volume = ocl "project.id->size() = 1 and project.volumes->size() = 0"

let inv_not_full =
  ocl
    "project.id->size() = 1 and project.volumes->size() >= 1 and \
     project.volumes->size() < quota_sets.volumes"

let inv_full =
  ocl
    "project.id->size() = 1 and project.volumes->size() >= 1 and \
     project.volumes->size() = quota_sets.volumes"

(* POST(volume) must also respect image backing: absent imageRef is an
   ordinary create; a present one must name an active image of this
   project (req 3.3). *)
let image_backing_guard =
  "(request.volume.imageRef->size() = 0 or \
   project.images->select(i | i.id = request.volume.imageRef and \
   i.status = 'active')->size() = 1)"

(* POST(attachment): the addressed server must be alive and the
   referenced volume available in this project (req 3.1). *)
let attach_guard =
  ocl
    ("server.id->size() = 1 and \
      project.volumes->select(v | v.id = request.volume_id and \
      v.status = 'available')->size() = 1")

let attach_effect =
  ocl
    ("project.volumes->select(v | v.id = request.volume_id and \
      v.status = 'in-use' and v.attached_server = server.id)->size() = 1")

(* POST(detachment): the referenced volume must currently be attached to
   the addressed server (req 3.2). *)
let detach_guard =
  ocl
    ("server.id->size() = 1 and \
      project.volumes->select(v | v.id = request.volume_id and \
      v.status = 'in-use' and v.attached_server = server.id)->size() = 1")

let detach_effect =
  ocl
    ("project.volumes->select(v | v.id = request.volume_id and \
      v.status = 'available')->size() = 1")

(* DELETE(image): only non-active images that back no volume may go
   (req 3.4). *)
let image_delete_guard =
  ocl
    ("image.id->size() = 1 and image.status <> 'active' and \
      project.volumes->select(v | v.source_image = image.id)->size() = 0")

(* DELETE(server): deletion must release every attachment — afterwards
   no volume may still name the deleted server (req 3.6). *)
let server_delete_effect =
  ocl
    ("project.servers->size() = pre(project.servers->size()) - 1 and \
      project.volumes->select(v | v.attached_server = \
      pre(server.id))->size() = 0")

let behavior : Behavior_model.t =
  let open Behavior_model in
  let post = Cm_http.Meth.POST
  and delete = Cm_http.Meth.DELETE
  and get = Cm_http.Meth.GET
  and put = Cm_http.Meth.PUT in
  (* a self-loop on every state, for triggers orthogonal to the
     volume-count machine *)
  let everywhere ?guard ~effect ~requirements meth resource =
    List.map
      (fun s ->
        transition ~source:s ~target:s ?guard ~effect ~requirements meth
          resource)
      [ s_no_volume; s_not_full; s_full ]
  in
  (* volumes exist in these states only *)
  let with_volumes ?guard ~effect ~requirements meth resource =
    List.map
      (fun s ->
        transition ~source:s ~target:s ?guard ~effect ~requirements meth
          resource)
      [ s_not_full; s_full ]
  in
  { machine_name = "CrossServiceProtocol";
    context = "project";
    initial = s_no_volume;
    states =
      [ state s_no_volume inv_no_volume;
        state s_not_full inv_not_full;
        state s_full inv_full
      ];
    transitions =
      (* ---- block storage: the Cinder machine, with the image-backing
         conjunct on creation ---- *)
      [ transition ~source:s_no_volume ~target:s_not_full
          ~guard:(ocl ("quota_sets.volumes > 1 and " ^ image_backing_guard))
          ~effect:(ocl "project.volumes->size() = 1")
          ~requirements:[ "1.3"; "3.3" ] post "volume";
        transition ~source:s_no_volume ~target:s_full
          ~guard:(ocl ("quota_sets.volumes = 1 and " ^ image_backing_guard))
          ~effect:(ocl "project.volumes->size() = 1")
          ~requirements:[ "1.3"; "3.3" ] post "volume";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:
            (ocl
               ("project.volumes->size() + 1 < quota_sets.volumes and "
               ^ image_backing_guard))
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) + 1")
          ~requirements:[ "1.3"; "3.3" ] post "volume";
        transition ~source:s_not_full ~target:s_full
          ~guard:
            (ocl
               ("project.volumes->size() + 1 = quota_sets.volumes and "
               ^ image_backing_guard))
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) + 1")
          ~requirements:[ "1.3"; "3.3" ] post "volume";
        transition ~source:s_full ~target:s_not_full
          ~guard:(ocl "volume.id->size() = 1 and volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) - 1")
          ~requirements:[ "1.4" ] delete "volume";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:
            (ocl
               "volume.id->size() = 1 and project.volumes->size() > 1 and \
                volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) - 1")
          ~requirements:[ "1.4" ] delete "volume";
        transition ~source:s_not_full ~target:s_no_volume
          ~guard:
            (ocl
               "volume.id->size() = 1 and project.volumes->size() = 1 and \
                volume.status <> 'in-use'")
          ~effect:(ocl "project.volumes->size() = 0")
          ~requirements:[ "1.4" ] delete "volume";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "volume.id->size() = 1")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "volume";
        transition ~source:s_full ~target:s_full
          ~guard:(ocl "volume.id->size() = 1")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "volume";
        transition ~source:s_no_volume ~target:s_no_volume
          ~effect:(ocl "project.volumes->size() = 0")
          ~requirements:[ "1.1" ] get "Volumes";
        transition ~source:s_not_full ~target:s_not_full
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "Volumes";
        transition ~source:s_full ~target:s_full
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "Volumes";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "volume.id->size() = 1 and volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.2" ] put "volume";
        transition ~source:s_full ~target:s_full
          ~guard:(ocl "volume.id->size() = 1 and volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.2" ] put "volume"
      ]
      (* ---- compute: attachments need volumes to exist ---- *)
      @ with_volumes ~guard:attach_guard ~effect:attach_effect
          ~requirements:[ "3.1" ] post "attachment"
      @ with_volumes ~guard:detach_guard ~effect:detach_effect
          ~requirements:[ "3.2" ] post "detachment"
      (* ---- compute: server lifecycle ---- *)
      @ everywhere
          ~effect:(ocl "project.servers->size() = pre(project.servers->size())")
          ~requirements:[ "3.5" ] get "Servers"
      @ everywhere
          ~effect:
            (ocl "project.servers->size() = pre(project.servers->size()) + 1")
          ~requirements:[ "3.5" ] post "server"
      @ everywhere ~guard:(ocl "server.id->size() = 1")
          ~effect:(ocl "project.servers->size() = pre(project.servers->size())")
          ~requirements:[ "3.5" ] get "server"
      @ everywhere ~guard:(ocl "server.id->size() = 1")
          ~effect:server_delete_effect ~requirements:[ "3.6" ] delete "server"
      (* ---- image service ---- *)
      @ everywhere
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.1" ] get "Images"
      @ everywhere ~guard:(ocl "project.images->size() < quota_sets.images")
          ~effect:
            (ocl "project.images->size() = pre(project.images->size()) + 1")
          ~requirements:[ "2.3" ] post "image"
      @ everywhere ~guard:(ocl "image.id->size() = 1")
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.1" ] get "image"
      @ everywhere ~guard:(ocl "image.id->size() = 1")
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.2" ] put "image"
      @ everywhere ~guard:image_delete_guard
          ~effect:
            (ocl "project.images->size() = pre(project.images->size()) - 1")
          ~requirements:[ "2.4"; "3.4" ] delete "image"
  }
