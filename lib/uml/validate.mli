(** Well-formedness checks for design models.

    The paper's workflow has a security analyst drawing the models by
    hand; the generator refuses ill-formed input with a full list of
    problems rather than producing a broken monitor.

    Findings are reported through the unified lint framework
    ({!Cm_lint.Lint}) under stable [VAL00x] rule codes, so `cmonitor
    validate` and `cmonitor analyze` share one reporter. *)

type issue = Cm_lint.Lint.finding
(** An issue is a lint finding: [rule] is a [VAL00x] code, [severity]
    is always {!Cm_lint.Lint.Error} for well-formedness problems,
    [where] names the offending model element and [message] describes
    the problem. *)

val catalogue : Cm_lint.Lint.rule list
(** Metadata for the VAL001..VAL006 well-formedness rules. *)

val pp_issue : Format.formatter -> issue -> unit
[@@ocaml.deprecated "Use Cm_lint.Lint.pp_finding instead."]
(** Deprecated alias of {!Cm_lint.Lint.pp_finding}. *)

val resource_model : Resource_model.t -> issue list
(** Checks: unique resource names; association endpoints exist; role
    names unique per source; collections have no attributes and exactly
    one outgoing containment; every resource reachable from the root;
    the root exists and is a collection; attribute names unique;
    derivable URI templates. *)

val behavior_model :
  Resource_model.t -> Behavior_model.t -> issue list
(** Checks: initial state exists; transition endpoints exist; state
    names unique; trigger resources exist in the resource model; every
    state reachable from the initial one; invariants, guards and effects
    typecheck against the resource-model signature; effects may use
    [pre()], invariants and guards may not. *)

val all : Resource_model.t -> Behavior_model.t list -> issue list
