(** The cross-service model: block storage, compute and the image
    service of one project in a single machine, so generated contracts
    can state invariants no per-service contract can check
    (ROADMAP "scenario diversity"):

    - {b attachment integrity} (req 3.1/3.2): POST on
      [/v3/{project_id}/servers/{server_id}/attach] must address a live
      server and an [available] volume of the same project, and leave
      that volume [in-use] and attached to that server; detach is the
      converse.
    - {b image-backed creation} (req 3.3): a volume created with an
      [imageRef] must name an [active] image of the project; a missing
      [imageRef] is an ordinary create.
    - {b backing-image protection} (req 3.4): an image still named by
      some volume's [source_image] cannot be deleted.
    - {b server-delete release} (req 3.6): deleting a server must
      release all its attachments.

    Guards reference the intercepted request body through the [request]
    binding ([request.volume_id], [request.volume.imageRef]) — see
    {!Cm_uml.Resource_model.signature}.

    The project states are the Cinder machine's three quota states; all
    cross-service triggers are self-loops on them. *)

val resources : Resource_model.t
val behavior : Behavior_model.t

val signature : Cm_ocl.Ty.signature
(** [Resource_model.signature resources]. *)

(** State names (shared with {!Cinder_model}). *)

val s_no_volume : string
val s_not_full : string
val s_full : string
