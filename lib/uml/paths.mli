(** URI derivation from the resource model (§VI: "by traversing the tags
    on the associations between the resources, we compose the paths of
    each resource — always starting from the corresponding collection").

    Rules, applied along the containment chain from the root:
    - the root collection lives at the model's [base_path];
    - an item of a collection [C] is addressed by appending
      [/{<item>_id}] where [<item>] is the contained definition's name;
    - a child reached through an association with role [r] appends [/r];
      if the child is a normal resource with a many-multiplicity it is a
      sub-collection and its items get [/{<child>_id}] as above. *)

type entry = {
  resource : string;  (** resource definition name *)
  template : Cm_http.Uri_template.t;
  is_item : bool;
      (** [true] when the template addresses one element of a collection
          (it ends in a parameter), [false] for collection URIs *)
}

val derive : Resource_model.t -> (entry list, string) result
(** Every addressable resource reachable from the root.  A resource
    contained in a collection yields two entries: the collection URI and
    the item URI.  Errors on unreachable resources or on a cycle along
    containment. *)

type index
(** Hashed [(resource, is_item)] lookup over a derived entry list — the
    per-request replacement for scanning the table.  Equivalent to
    [List.find_opt] on the same list (first entry wins), asserted in
    [test/test_uml.ml]. *)

val index : entry list -> index
val find : index -> resource:string -> item:bool -> entry option

val template_for :
  Resource_model.t -> resource:string -> item:bool -> Cm_http.Uri_template.t option
(** Convenience lookup over {!derive}. *)

val id_param : string -> string
(** Parameter name for an item of the given resource definition:
    ["volume" -> "volume_id"]. *)
