type attr_type = A_string | A_int | A_bool | A_real
type attribute = { attr_name : string; attr_type : attr_type }
type kind = Collection | Normal

type resource_def = {
  def_name : string;
  kind : kind;
  attributes : attribute list;
}

type association = {
  role : string;
  source : string;
  target : string;
  multiplicity : Multiplicity.t;
}

type t = {
  model_name : string;
  base_path : string;
  root : string;
  resources : resource_def list;
  associations : association list;
}

let collection name = { def_name = name; kind = Collection; attributes = [] }

let normal name attrs =
  { def_name = name;
    kind = Normal;
    attributes =
      List.map (fun (attr_name, attr_type) -> { attr_name; attr_type }) attrs
  }

let assoc ?(multiplicity = Multiplicity.many) ~role source target =
  { role; source; target; multiplicity }

let find_resource name model =
  List.find_opt (fun r -> r.def_name = name) model.resources

let outgoing name model =
  List.filter (fun a -> a.source = name) model.associations

let incoming name model =
  List.filter (fun a -> a.target = name) model.associations

let contained_by name model =
  match incoming name model with
  | first :: _ -> Some first
  | [] -> None

let attr_ty = function
  | A_string -> Cm_ocl.Ty.String
  | A_int -> Cm_ocl.Ty.Int
  | A_bool -> Cm_ocl.Ty.Bool
  | A_real -> Cm_ocl.Ty.Real

(* Types follow associations to a bounded depth: resource graphs are
   cyclic (volume -> project -> volumes) but signatures must be finite. *)
let rec def_type model depth def =
  match def.kind with
  | Collection ->
    let element =
      match
        List.find_opt (fun a -> a.source = def.def_name) model.associations
      with
      | Some a when depth > 0 ->
        (match find_resource a.target model with
         | Some target -> def_type model (depth - 1) target
         | None -> Cm_ocl.Ty.Any)
      | Some _ | None -> Cm_ocl.Ty.Any
    in
    Cm_ocl.Ty.Collection element
  | Normal ->
    let attr_props =
      List.map (fun a -> (a.attr_name, attr_ty a.attr_type)) def.attributes
    in
    let assoc_props =
      if depth <= 0 then []
      else
        List.filter_map
          (fun a ->
            if a.source <> def.def_name then None
            else
              match find_resource a.target model with
              | None -> None
              | Some target ->
                let target_ty = def_type model (depth - 1) target in
                let prop_ty =
                  match target.kind with
                  | Collection -> target_ty
                  | Normal ->
                    if Multiplicity.is_collection a.multiplicity then
                      Cm_ocl.Ty.Collection target_ty
                    else target_ty
                in
                Some (a.role, prop_ty))
          model.associations
    in
    Cm_ocl.Ty.Object (attr_props @ assoc_props)

let resource_type model name =
  match find_resource name model with
  | Some def -> def_type model 3 def
  | None -> Cm_ocl.Ty.Any

let user_type =
  Cm_ocl.Ty.Object
    [ ("id", Cm_ocl.Ty.Object
               [ ("groups", Cm_ocl.Ty.String) ]);
      ("name", Cm_ocl.Ty.String);
      ("groups", Cm_ocl.Ty.Collection Cm_ocl.Ty.String);
      ("role", Cm_ocl.Ty.String)
    ]

let signature model =
  let resource_bindings =
    List.map
      (fun def ->
        (String.lowercase_ascii def.def_name, def_type model 3 def))
      model.resources
  in
  (* [user] is the authorization subject appearing in guards such as
     [user.id.groups = 'admin'] (Listing 1).  [request] is the JSON body
     of the intercepted request — cross-service guards navigate into it
     (e.g. [request.volume_id]) and its shape is request-specific, so it
     types as [Any]. *)
  resource_bindings @ [ ("user", user_type); ("request", Cm_ocl.Ty.Any) ]

let attr_type_to_string = function
  | A_string -> "String"
  | A_int -> "Integer"
  | A_bool -> "Boolean"
  | A_real -> "Real"

let attr_type_of_string = function
  | "String" | "string" -> Some A_string
  | "Integer" | "Int" | "int" -> Some A_int
  | "Boolean" | "Bool" | "bool" -> Some A_bool
  | "Real" | "Float" | "real" -> Some A_real
  | _ -> None

let pp ppf model =
  Fmt.pf ppf "resource model %S (root %s, base %s): %d resources, %d associations"
    model.model_name model.root model.base_path
    (List.length model.resources)
    (List.length model.associations)
