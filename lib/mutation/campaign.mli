(** Mutation campaigns: run the standard workload against each mutant
    and record whether the monitor killed it.

    "During validation, we were able to kill all three mutants (errors)
    systematically introduced in the cloud implementation" (§VI-D) —
    [run] with {!Mutant.paper_mutants} reproduces exactly that; the
    extended catalog widens the experiment. *)

type result = {
  mutant : Mutant.t option;  (** [None] for the fault-free baseline *)
  killed : bool;  (** at least one violation verdict was raised *)
  exchanges : int;
  violations : Cm_monitor.Outcome.t list;
  first_violation : string option;  (** verdict name of the first kill *)
}

val run_one : Mutant.t option -> (result, string list) Stdlib.result
(** Fresh cloud + monitor, standard workload, collect. *)

val run_cross_one :
  ?eval:Cm_contracts.Runtime.eval_mode ->
  Mutant.t option ->
  (result, string list) Stdlib.result
(** Fresh cloud + cross-service monitor ({!Scenario.setup_cross}),
    cross workload, collect.  [eval] selects full or incremental
    contract evaluation so the kill matrix can be checked under both. *)

val run : ?domains:int -> Mutant.t list -> (result list, string list) Stdlib.result
(** Baseline first (it must be violation-free), then each mutant.
    Every entry runs in a fresh cloud + monitor, so with [domains > 1]
    (default 1) entries fan out over OCaml domains; results keep the
    job order and are identical at any domain count. *)

val run_cross :
  ?domains:int ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  Mutant.t list ->
  (result list, string list) Stdlib.result
(** The cross-service campaign: baseline + each mutant under the cross
    workload and models.  Run it over {!Mutant.all_extended} for the
    full kill matrix (M1..M10 still killed by the shared standard
    prefix, X1..X8 by the cross-service phases). *)

val to_json : result list -> Cm_json.Json.t
(** Machine-readable kill matrix for CI gates. *)

val kill_matrix : result list -> string
(** Printable matrix: mutant, killed?, exchanges, first killing
    verdict. *)

val all_killed : result list -> bool
(** Every mutant killed {e and} the baseline clean. *)

(** {1 Chaos campaigns}

    The same mutants, but with an unreliable transport between monitor
    and cloud and the monitor forwarding through its resilience layer.
    Each mutant runs twice — once fault-free as the reference, once
    under chaos — and the two verdict sequences are compared step by
    step.  Detection power must survive (every mutant still killed) and
    verdict integrity must hold (no {e flip} between definite verdicts;
    degrading to [Undefined]/[Degraded] is allowed). *)

val chaos_policy : Cm_monitor.Resilience.policy
(** {!Cm_monitor.Resilience.default} with [verified_reads] on — the
    double-read defense against stale observation caches. *)

type chaos_run = {
  cr_mutant : Mutant.t option;
  cr_profile : string;
  cr_killed : bool;
  cr_exchanges : int;
  cr_comparable : int;
      (** steps where chaos and reference issued the same request *)
  cr_flips : (int * string * string) list;
      (** (step, fault-free verdict, chaos verdict) definite
          disagreements — must be empty *)
  cr_indefinite : int;
      (** chaos outcomes that degraded to a non-definite verdict *)
  cr_injected : (string * int) list;  (** chaos fault counters *)
}

val run_chaos :
  ?seed:int ->
  ?domains:int ->
  Cm_cloudsim.Chaos.profile ->
  Mutant.t list ->
  (chaos_run list, string list) Stdlib.result
(** Baseline + each mutant under the profile.  [seed] (default 42)
    derives a distinct chaos seed per run — from the job {e index}, not
    the schedule — so campaigns are reproducible end to end at any
    [domains] count (default 1). *)

val run_chaos_cross :
  ?seed:int ->
  ?domains:int ->
  Cm_cloudsim.Chaos.profile ->
  Mutant.t list ->
  (chaos_run list, string list) Stdlib.result
(** {!run_chaos} over the cross-service models and workload — verdict
    integrity for the cross-service contracts under unreliable
    transport. *)

val chaos_ok : chaos_run list -> bool
(** No flips anywhere, the baseline clean, every mutant killed. *)

val chaos_matrix : chaos_run list -> string
(** Printable matrix, flips spelled out per run. *)

val chaos_to_json : chaos_run list -> Cm_json.Json.t
