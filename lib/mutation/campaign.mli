(** Mutation campaigns: run the standard workload against each mutant
    and record whether the monitor killed it.

    "During validation, we were able to kill all three mutants (errors)
    systematically introduced in the cloud implementation" (§VI-D) —
    [run] with {!Mutant.paper_mutants} reproduces exactly that; the
    extended catalog widens the experiment. *)

type result = {
  mutant : Mutant.t option;  (** [None] for the fault-free baseline *)
  killed : bool;  (** at least one violation verdict was raised *)
  exchanges : int;
  violations : Cm_monitor.Outcome.t list;
  first_violation : string option;  (** verdict name of the first kill *)
}

val run_one : Mutant.t option -> (result, string list) Stdlib.result
(** Fresh cloud + monitor, standard workload, collect. *)

val run_cross_one :
  ?eval:Cm_contracts.Runtime.eval_mode ->
  Mutant.t option ->
  (result, string list) Stdlib.result
(** Fresh cloud + cross-service monitor ({!Scenario.setup_cross}),
    cross workload, collect.  [eval] selects full or incremental
    contract evaluation so the kill matrix can be checked under both. *)

val run : ?domains:int -> Mutant.t list -> (result list, string list) Stdlib.result
(** Baseline first (it must be violation-free), then each mutant.
    Every entry runs in a fresh cloud + monitor, so with [domains > 1]
    (default 1) entries fan out over OCaml domains; results keep the
    job order and are identical at any domain count. *)

val run_cross :
  ?domains:int ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  Mutant.t list ->
  (result list, string list) Stdlib.result
(** The cross-service campaign: baseline + each mutant under the cross
    workload and models.  Run it over {!Mutant.all_extended} for the
    full kill matrix (M1..M10 still killed by the shared standard
    prefix, X1..X8 by the cross-service phases). *)

val to_json : result list -> Cm_json.Json.t
(** Machine-readable kill matrix for CI gates. *)

val kill_matrix : result list -> string
(** Printable matrix: mutant, killed?, exchanges, first killing
    verdict. *)

val all_killed : result list -> bool
(** Every mutant killed {e and} the baseline clean. *)

(** {1 Chaos campaigns}

    The same mutants, but with an unreliable transport between monitor
    and cloud and the monitor forwarding through its resilience layer.
    Each mutant runs twice — once fault-free as the reference, once
    under chaos — and the two verdict sequences are compared step by
    step.  Detection power must survive (every mutant still killed) and
    verdict integrity must hold (no {e flip} between definite verdicts;
    degrading to [Undefined]/[Degraded] is allowed). *)

val chaos_policy : Cm_monitor.Resilience.policy
(** {!Cm_monitor.Resilience.default} with [verified_reads] on — the
    double-read defense against stale observation caches. *)

type chaos_run = {
  cr_mutant : Mutant.t option;
  cr_profile : string;
  cr_killed : bool;
  cr_exchanges : int;
  cr_comparable : int;
      (** steps where chaos and reference issued the same request *)
  cr_flips : (int * string * string) list;
      (** (step, fault-free verdict, chaos verdict) definite
          disagreements — must be empty *)
  cr_indefinite : int;
      (** chaos outcomes that degraded to a non-definite verdict *)
  cr_injected : (string * int) list;  (** chaos fault counters *)
}

val run_chaos :
  ?seed:int ->
  ?domains:int ->
  Cm_cloudsim.Chaos.profile ->
  Mutant.t list ->
  (chaos_run list, string list) Stdlib.result
(** Baseline + each mutant under the profile.  [seed] (default 42)
    derives a distinct chaos seed per run — from the job {e index}, not
    the schedule — so campaigns are reproducible end to end at any
    [domains] count (default 1). *)

val run_chaos_cross :
  ?seed:int ->
  ?domains:int ->
  Cm_cloudsim.Chaos.profile ->
  Mutant.t list ->
  (chaos_run list, string list) Stdlib.result
(** {!run_chaos} over the cross-service models and workload — verdict
    integrity for the cross-service contracts under unreliable
    transport. *)

val chaos_ok : chaos_run list -> bool
(** No flips anywhere, the baseline clean, every mutant killed. *)

val chaos_matrix : chaos_run list -> string
(** Printable matrix, flips spelled out per run. *)

val chaos_to_json : chaos_run list -> Cm_json.Json.t

(** {1 Crash campaigns}

    Detection power must also survive the monitor {e dying} mid-kill:
    each cell of the crash matrix arms one deterministic crash point,
    runs the workload until the crash fires, tears the journal tail
    ({!Cm_journal.Device.crash}), recovers, and re-runs the trace (steps
    that already concluded are served from the journal — see
    {!Scenario.jexec_env}).  The final journal is then audited for
    exactly-once verdicts and preserved kills. *)

val crash_sites : string list
(** The ten injection sites threaded through the journaled pipeline:
    eight [journal.*] sites around the append/sync points and two
    [monitor.*] sites after the forward and after cache
    invalidation. *)

type crash_run = {
  xr_mutant : Mutant.t option;
  xr_profile : string;  (** chaos profile name, or ["fault-free"] *)
  xr_site : string;
  xr_fired : bool;
      (** whether the armed crash actually fired (a site the workload
          does not reach [nth] times yields a vacuous pass) *)
  xr_killed : bool;
  xr_verdicts : int;
  xr_duplicates : string list;
      (** idempotency keys with more than one journaled verdict — must
          be empty (exactly-once) *)
  xr_lost : string list;
      (** keys the crash-free reference concluded but the crashed run
          never did — must be empty *)
  xr_mismatches : (string * string * string) list;
      (** (key, reference verdict, post-recovery verdict) — compared
          only without chaos, where the transport stream is
          deterministic across the recovery *)
  xr_resumed : int;  (** in-flight exchanges finished via [resume] *)
  xr_rehandled : int;
  xr_discarded_bytes : int;  (** torn tail recovery dropped *)
}

val run_crash_one :
  ?cross:bool ->
  ?seed:int ->
  index:int ->
  site:string ->
  nth:int ->
  Cm_cloudsim.Chaos.profile option ->
  Mutant.t option ->
  (crash_run, string list) Stdlib.result
(** One cell: reference run, crashed+recovered run, audit.  [cross]
    (default true) uses the cross-service models and workload — the
    extended mutants X1..X8 need them. *)

val run_crash_matrix :
  ?cross:bool ->
  ?seed:int ->
  ?domains:int ->
  ?nth:int ->
  ?sites:string list ->
  Cm_cloudsim.Chaos.profile option list ->
  Mutant.t list ->
  (crash_run list, string list) Stdlib.result
(** The full matrix: every profile x site x (baseline + mutants), each
    cell independent (fresh cloud + journal) and fanned out over
    [domains].  [nth] (default 3) picks which occurrence of the site
    crashes. *)

val crash_ok : crash_run list -> bool
(** Zero duplicates, zero losses, zero mismatches, baseline clean,
    every mutant killed — across every cell. *)

val crash_matrix : crash_run list -> string
val crash_to_json : crash_run list -> Cm_json.Json.t
