(** The mutant catalog.

    A mutant is a named, deliberately-injected implementation error —
    "mutants (errors) systematically introduced in the cloud
    implementation to detect wrong authorization on resources" (§VI-D).
    The paper injects three authorization mutants; the extended catalog
    adds behavioural mutants (quota, lifecycle, status codes) that
    exercise the functional half of the contracts. *)

type t = {
  name : string;
  description : string;
  faults : Cm_cloudsim.Faults.set;
  from_paper : bool;
}

val paper_mutants : t list
(** The three authorization mutants of §VI-D:
    - M1: DELETE on volume opened up to the member role (privilege
      escalation);
    - M2: the authorization check on PUT is missing entirely;
    - M3: authorized users are denied GET on volume. *)

val extended_mutants : t list
(** Behavioural mutants beyond the paper's three. *)

val cross_mutants : t list
(** Mutants X1..X8 targeting the cross-service invariants: attachment
    integrity (missing/busy volume, ghost server, no-op detach),
    image-backed volume creation and backing-image protection, token
    revocation visibility, and server-delete attachment release.  Run
    through the cross campaign ({!Campaign.run_cross}); the standard
    workload never reaches the faulty surfaces. *)

val all : t list
(** [paper_mutants @ extended_mutants] — the single-service catalog the
    standard campaign runs. *)

val all_extended : t list
(** [all @ cross_mutants] — the full catalog for the cross campaign. *)

(** Looks up across {!all_extended}. *)
val find : string -> t option
val pp : Format.formatter -> t -> unit
