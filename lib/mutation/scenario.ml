module Cloud = Cm_cloudsim.Cloud
module Monitor = Cm_monitor.Monitor
module Request = Cm_http.Request
module Json = Cm_json.Json

type ctx = {
  cloud : Cloud.t;
  monitor : Monitor.t;
  tokens : (string * string) list;
  clock : Cm_core.Clock.t;
  chaos : Cm_cloudsim.Chaos.t option;
}

let project = "myProject"

let service_subject =
  Cm_rbac.Subject.make "cmonitor-svc" [ "proj_administrator" ]

let setup ?(mode = Monitor.Oracle) ?(strategy = Cm_contracts.Runtime.Lean)
    ?(engine = Cm_contracts.Runtime.Compiled) ?eval
    ?(faults = Cm_cloudsim.Faults.none) ?chaos ?chaos_seed ?resilience
    ?(degradation = Monitor.Fail_open_logged) ?(stability_check = false)
    ?footprint_pruning ?cache () =
  let clock = Cm_core.Clock.create () in
  let cloud = Cloud.create ~clock () in
  Cloud.seed cloud Cloud.my_project;
  Cm_cloudsim.Identity.add_user (Cloud.identity cloud) ~password:"svc-pw"
    service_subject;
  let login user password =
    match Cloud.login cloud ~user ~password ~project_id:project with
    | Ok token -> token
    | Error msg -> failwith (Printf.sprintf "login %s failed: %s" user msg)
  in
  let service_token = login "cmonitor-svc" "svc-pw" in
  let tokens =
    [ ("alice", login "alice" "alice-pw");
      ("bob", login "bob" "bob-pw");
      ("carol", login "carol" "carol-pw")
    ]
  in
  Cloud.set_faults cloud faults;
  (* Chaos wraps the transport the *monitor* sees; logins above talked
     to the cloud directly, as an operator bootstrapping would. *)
  let chaos =
    Option.map
      (fun profile ->
        Cm_cloudsim.Chaos.create ?seed:chaos_seed profile clock
          (Cloud.handle cloud))
      chaos
  in
  let backend =
    match chaos with
    | Some c -> Cm_cloudsim.Chaos.backend c
    | None -> Cloud.handle cloud
  in
  let security =
    { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
      assignment = Cm_rbac.Security_table.cinder_assignment
    }
  in
  let config =
    Monitor.default_config ~mode ~strategy ~engine ?eval ~stability_check
      ?resilience
      ~degradation ~clock ?footprint_pruning ?cache ~service_token ~security
      Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior
  in
  match Monitor.create config backend with
  | Ok monitor -> Ok { cloud; monitor; tokens; clock; chaos }
  | Error msgs -> Error msgs

let token_of ctx user =
  match List.assoc_opt user ctx.tokens with
  | Some token -> token
  | None -> failwith ("no token for user " ^ user)

let request ctx ~user meth path ?body () =
  let req =
    Request.make ?body meth path |> Request.with_auth_token (token_of ctx user)
  in
  Monitor.handle ctx.monitor req

let created_volume_id (outcome : Cm_monitor.Outcome.t) =
  match outcome.cloud_response with
  | Some resp ->
    (match resp.Cm_http.Response.body with
     | Some body ->
       (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
        | Some (Json.String id) -> Some id
        | Some _ | None -> None)
     | None -> None)
  | None -> None

let volume_body name size =
  Json.obj
    [ ("volume", Json.obj [ ("name", Json.string name); ("size", Json.int size) ])
    ]

let volumes_path = "/v3/" ^ project ^ "/volumes"
let volume_path id = volumes_path ^ "/" ^ id

let standard ctx =
  let post_volume user name =
    request ctx ~user Cm_http.Meth.POST volumes_path
      ~body:(volume_body name 10) ()
  in
  (* 1. admin creates the first volume *)
  let v1 =
    Option.value ~default:"missing-v1"
      (created_volume_id (post_volume "alice" "data1"))
  in
  (* 2. member lists; 3. user reads the volume *)
  ignore (request ctx ~user:"bob" Cm_http.Meth.GET volumes_path ());
  ignore (request ctx ~user:"carol" Cm_http.Meth.GET (volume_path v1) ());
  (* 4. plain user may not create *)
  ignore (post_volume "carol" "forbidden");
  (* 5. member may not delete (kills M1 when wrongly allowed) *)
  ignore (request ctx ~user:"bob" Cm_http.Meth.DELETE (volume_path v1) ());
  (* 6. plain user may not update (kills M2 when the check is missing) *)
  ignore
    (request ctx ~user:"carol" Cm_http.Meth.PUT (volume_path v1)
       ~body:
         (Json.obj [ ("volume", Json.obj [ ("name", Json.string "hacked") ]) ])
       ());
  (* 7. user may read (kills M3 when wrongly denied) *)
  ignore (request ctx ~user:"carol" Cm_http.Meth.GET (volume_path v1) ());
  (* 8. member renames the volume *)
  ignore
    (request ctx ~user:"bob" Cm_http.Meth.PUT (volume_path v1)
       ~body:
         (Json.obj [ ("volume", Json.obj [ ("name", Json.string "data1b") ]) ])
       ());
  (* 9. fill the quota (3 volumes) *)
  ignore (post_volume "alice" "data2");
  let v3 =
    Option.value ~default:"missing-v3"
      (created_volume_id (post_volume "alice" "data3"))
  in
  (* 10. one more exceeds the quota (kills M4 when ignored) *)
  ignore (post_volume "alice" "over-quota");
  (* 11. delete one volume again (kills M6 wrong status / M8 zombie) *)
  ignore (request ctx ~user:"alice" Cm_http.Meth.DELETE (volume_path v3) ());
  (* 12. attach v1 (volume action — not a modelled URI, forwarded) *)
  ignore
    (request ctx ~user:"alice" Cm_http.Meth.POST
       (volume_path v1 ^ "/action")
       ~body:
         (Json.obj
            [ ( "os-attach",
                Json.obj [ ("instance_uuid", Json.string "srv-test") ] )
            ])
       ());
  (* 13. deleting an attached volume must fail (kills M5 when allowed) *)
  ignore (request ctx ~user:"alice" Cm_http.Meth.DELETE (volume_path v1) ());
  (* 14. detach and delete for real *)
  ignore
    (request ctx ~user:"alice" Cm_http.Meth.POST
       (volume_path v1 ^ "/action")
       ~body:(Json.obj [ ("os-detach", Json.obj []) ])
       ());
  ignore (request ctx ~user:"alice" Cm_http.Meth.DELETE (volume_path v1) ());
  (* 15. final listing by every role *)
  ignore (request ctx ~user:"alice" Cm_http.Meth.GET volumes_path ());
  ignore (request ctx ~user:"carol" Cm_http.Meth.GET volumes_path ())
