module Cloud = Cm_cloudsim.Cloud
module Store = Cm_cloudsim.Store
module Monitor = Cm_monitor.Monitor
module Request = Cm_http.Request
module Json = Cm_json.Json
module Workload = Cm_workload.Workload
module Exec = Cm_workload.Exec

type ctx = {
  cloud : Cloud.t;
  monitor : Monitor.t;
  tokens : (string * string) list;
  clock : Cm_core.Clock.t;
  chaos : Cm_cloudsim.Chaos.t option;
}

let project = "myProject"

let service_subject =
  Cm_rbac.Subject.make "cmonitor-svc" [ "proj_administrator" ]

(* Shared bootstrap: fresh clock + seeded cloud + the paper's users
   logged in.  Token values are deterministic (a login counter), which
   is what lets a journal replay on a fresh same-seed cloud reuse the
   recorded [X-Auth-Token] headers verbatim. *)
let bootstrap () =
  let clock = Cm_core.Clock.create () in
  let cloud = Cloud.create ~clock () in
  Cloud.seed cloud Cloud.my_project;
  Cm_cloudsim.Identity.add_user (Cloud.identity cloud) ~password:"svc-pw"
    service_subject;
  let login user password =
    match Cloud.login cloud ~user ~password ~project_id:project with
    | Ok token -> token
    | Error msg -> failwith (Printf.sprintf "login %s failed: %s" user msg)
  in
  let service_token = login "cmonitor-svc" "svc-pw" in
  let tokens =
    [ ("alice", login "alice" "alice-pw");
      ("bob", login "bob" "bob-pw");
      ("carol", login "carol" "carol-pw")
    ]
  in
  (clock, cloud, service_token, tokens)

(* Shared construction; [setup] instantiates it over the single-service
   Cinder models, [setup_cross] over the cross-service models and the
   extended security table. *)
let setup_gen ~resources ~behavior ~table ~mode ~strategy ~engine ~eval
    ~faults ~chaos:chaos_profile ~chaos_seed ~resilience ~degradation
    ~stability_check ~footprint_pruning ~cache () =
  let clock, cloud, service_token, tokens = bootstrap () in
  Cloud.set_faults cloud faults;
  (* Chaos wraps the transport the *monitor* sees; logins above talked
     to the cloud directly, as an operator bootstrapping would. *)
  let chaos =
    Option.map
      (fun profile ->
        Cm_cloudsim.Chaos.create ?seed:chaos_seed profile clock
          (Cloud.handle cloud))
      chaos_profile
  in
  let backend =
    match chaos with
    | Some c -> Cm_cloudsim.Chaos.backend c
    | None -> Cloud.handle cloud
  in
  let security =
    { Cm_contracts.Generate.table;
      assignment = Cm_rbac.Security_table.cinder_assignment
    }
  in
  let config =
    Monitor.default_config ~mode ~strategy ~engine ?eval ~stability_check
      ?resilience ~degradation ~clock ?footprint_pruning ?cache ~service_token
      ~security resources behavior
  in
  match Monitor.create config backend with
  | Ok monitor -> Ok { cloud; monitor; tokens; clock; chaos }
  | Error msgs -> Error msgs

let setup ?(mode = Monitor.Oracle) ?(strategy = Cm_contracts.Runtime.Lean)
    ?(engine = Cm_contracts.Runtime.Compiled) ?eval
    ?(faults = Cm_cloudsim.Faults.none) ?chaos ?chaos_seed ?resilience
    ?(degradation = Monitor.Fail_open_logged) ?(stability_check = false)
    ?footprint_pruning ?cache () =
  setup_gen ~resources:Cm_uml.Cinder_model.resources
    ~behavior:Cm_uml.Cinder_model.behavior ~table:Cm_rbac.Security_table.cinder
    ~mode ~strategy ~engine ~eval ~faults ~chaos ~chaos_seed ~resilience
    ~degradation ~stability_check ~footprint_pruning ~cache ()

let setup_cross ?(mode = Monitor.Oracle) ?(strategy = Cm_contracts.Runtime.Lean)
    ?(engine = Cm_contracts.Runtime.Compiled) ?eval
    ?(faults = Cm_cloudsim.Faults.none) ?chaos ?chaos_seed ?resilience
    ?(degradation = Monitor.Fail_open_logged) ?(stability_check = false)
    ?footprint_pruning ?cache () =
  setup_gen ~resources:Cm_uml.Cross_model.resources
    ~behavior:Cm_uml.Cross_model.behavior ~table:Cm_rbac.Security_table.cross
    ~mode ~strategy ~engine ~eval ~faults ~chaos ~chaos_seed ~resilience
    ~degradation ~stability_check ~footprint_pruning ~cache ()

let token_of ctx user =
  match List.assoc_opt user ctx.tokens with
  | Some token -> token
  | None -> failwith ("no token for user " ^ user)

let request ctx ~user meth path ?body () =
  let req =
    Request.make ?body meth path |> Request.with_auth_token (token_of ctx user)
  in
  Monitor.handle ctx.monitor req

let created_volume_id (outcome : Cm_monitor.Outcome.t) =
  match outcome.cloud_response with
  | Some resp ->
    (match resp.Cm_http.Response.body with
     | Some body ->
       (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
        | Some (Json.String id) -> Some id
        | Some _ | None -> None)
     | None -> None)
  | None -> None

let user_of_role = function
  | Workload.Admin -> ("alice", "alice-pw")
  | Workload.Member -> ("bob", "bob-pw")
  | Workload.User -> ("carol", "carol-pw")

(* Out-of-band tenant churn: a throwaway project gets a volume added
   and removed behind the monitor's back.  The monitor's caches are
   resynchronised by [Exec] calling [flush] right after. *)
let churn_project ctx k =
  let store = Cloud.store ctx.cloud in
  let pid = Printf.sprintf "churn-%d" k in
  let proj =
    match Store.find_project store pid with
    | Some p -> p
    | None ->
      Store.add_project store ~id:pid ~name:pid ~quota_volumes:2
        ~quota_gigabytes:10 ()
  in
  let volume = Store.add_volume store proj ~name:"churn-vol" ~size_gb:1 () in
  ignore (Store.remove_volume proj volume.Store.volume_id)

let exec_env ctx =
  { Exec.project;
    stable_volumes = [];
    victim_volumes = [];
    handle = (fun req -> Monitor.handle_response ctx.monitor req);
    token = (fun role -> token_of ctx (fst (user_of_role role)));
    relogin =
      Some
        (fun role ->
          let user, password = user_of_role role in
          match Cloud.login ctx.cloud ~user ~password ~project_id:project with
          | Ok token -> Some token
          | Error _ -> None);
    churn = Some (churn_project ctx);
    flush = (fun () -> Monitor.flush_cache ctx.monitor)
  }

let run_trace ctx trace = Exec.run (exec_env ctx) trace
let standard ctx = ignore (run_trace ctx Workload.standard_trace)
let cross ctx = ignore (run_trace ctx Workload.cross_trace)

(* ------------------------------------------------------------------ *)
(* Journaled contexts: the same scenario with the monitor wrapped in a
   durable event journal, for the crash-recovery campaigns. *)

module Jmonitor = Cm_journal.Jmonitor
module Device = Cm_journal.Device

type jctx = {
  jcloud : Cloud.t;
  mutable jmon : Jmonitor.t;
  jtokens : (string * string) list;
  jclock : Cm_core.Clock.t;
  jdevice : Device.t;
  jmake : Jmonitor.make;
  jbatch : int;
  jcrash : Cm_core.Crash.t option;
}

let models cross =
  if cross then
    ( Cm_uml.Cross_model.resources,
      Cm_uml.Cross_model.behavior,
      Cm_rbac.Security_table.cross )
  else
    ( Cm_uml.Cinder_model.resources,
      Cm_uml.Cinder_model.behavior,
      Cm_rbac.Security_table.cinder )

let setup_journaled ?(cross = false) ?(mode = Monitor.Oracle) ?eval
    ?(faults = Cm_cloudsim.Faults.none) ?chaos:chaos_profile ?chaos_seed
    ?resilience ?(batch = 8) ?(journal_seed = 7) ?crash () =
  let resources, behavior, table = models cross in
  let clock, cloud, service_token, tokens = bootstrap () in
  Cloud.set_faults cloud faults;
  (* The chaos transport models the *network*, which survives a monitor
     crash — it is created once and shared across recoveries, so its
     fault stream keeps advancing rather than restarting. *)
  let chaos =
    Option.map
      (fun profile ->
        Cm_cloudsim.Chaos.create ?seed:chaos_seed profile clock
          (Cloud.handle cloud))
      chaos_profile
  in
  let backend =
    match chaos with
    | Some c -> Cm_cloudsim.Chaos.backend c
    | None -> Cloud.handle cloud
  in
  let security =
    { Cm_contracts.Generate.table;
      assignment = Cm_rbac.Security_table.cinder_assignment
    }
  in
  let jmake ~journal_pre ~journal_barrier ~crash () =
    let config =
      Monitor.default_config ~mode ?eval ~clock ?resilience ~journal_pre
        ~journal_barrier ?crash ~service_token ~security resources behavior
    in
    Monitor.create config backend
  in
  let device = Device.create ~clock ~seed:journal_seed () in
  match Jmonitor.create ~batch ?crash device jmake with
  | Error msgs -> Error msgs
  | Ok jmon ->
    Ok
      { jcloud = cloud;
        jmon;
        jtokens = tokens;
        jclock = clock;
        jdevice = device;
        jmake;
        jbatch = batch;
        jcrash = crash
      }

let jrecover jctx =
  match
    Jmonitor.recover ~batch:jctx.jbatch ?crash:jctx.jcrash jctx.jdevice
      jctx.jmake
  with
  | Error msgs -> Error msgs
  | Ok (jmon, report) ->
    jctx.jmon <- jmon;
    Ok report

let jtoken_of jctx user =
  match List.assoc_opt user jctx.jtokens with
  | Some token -> token
  | None -> failwith ("no token for user " ^ user)

let jchurn jctx k =
  let store = Cloud.store jctx.jcloud in
  let pid = Printf.sprintf "churn-%d" k in
  let proj =
    match Store.find_project store pid with
    | Some p -> p
    | None ->
      Store.add_project store ~id:pid ~name:pid ~quota_volumes:2
        ~quota_gigabytes:10 ()
  in
  let volume = Store.add_volume store proj ~name:"churn-vol" ~size_gb:1 () in
  ignore (Store.remove_volume proj volume.Store.volume_id)

let response_of_verdict (v : Cm_journal.Event.verdict_record) =
  match v.Cm_journal.Event.v_body with
  | Some body -> Cm_http.Response.make ~body v.Cm_journal.Event.v_status
  | None -> Cm_http.Response.make v.Cm_journal.Event.v_status

let jexec_env jctx =
  (* Each environment numbers the monitored requests it issues and tags
     them [stp-<n>] — a deterministic idempotency key.  A driver that
     re-runs a trace after crash recovery gets the recorded response
     for every step that already concluded (exactly-once), and only the
     unconcluded tail actually reaches the monitor again. *)
  let step = ref 0 in
  { Exec.project;
    stable_volumes = [];
    victim_volumes = [];
    handle =
      (fun req ->
        incr step;
        let rid = Printf.sprintf "stp-%d" !step in
        match Jmonitor.verdict_for_rid jctx.jmon rid with
        | Some v -> response_of_verdict v
        | None ->
          let req =
            { req with
              Request.headers =
                Cm_http.Headers.replace Jmonitor.rid_header rid
                  req.Request.headers
            }
          in
          Jmonitor.handle_response jctx.jmon req);
    token = (fun role -> jtoken_of jctx (fst (user_of_role role)));
    relogin =
      Some
        (fun role ->
          let user, password = user_of_role role in
          Jmonitor.mark jctx.jmon ("relogin:" ^ user);
          match
            Cloud.login jctx.jcloud ~user ~password ~project_id:project
          with
          | Ok token -> Some token
          | Error _ -> None);
    churn =
      Some
        (fun k ->
          Jmonitor.mark jctx.jmon (Printf.sprintf "churn:%d" k);
          jchurn jctx k);
    flush = (fun () -> Monitor.flush_cache (Jmonitor.monitor jctx.jmon))
  }

let jrun_trace jctx trace = Exec.run (jexec_env jctx) trace

let journal_events jctx = fst (Cm_journal.Journal.scan jctx.jdevice)

let replay_journal ?(cross = false) ?(mode = Monitor.Oracle) ?eval events =
  match setup_journaled ~cross ~mode ?eval () with
  | Error msgs -> Error msgs
  | Ok fresh ->
    List.iter
      (fun step ->
        match step with
        | Jmonitor.Replay_request { req; _ } ->
          ignore (Jmonitor.handle fresh.jmon req)
        | Jmonitor.Replay_mark note ->
          (match String.split_on_char ':' note with
           | [ "relogin"; user ] ->
             ignore
               (Cloud.login fresh.jcloud ~user ~password:(user ^ "-pw")
                  ~project_id:project);
             (* keep the replay's mark/seq stream aligned with the
                recording's *)
             Jmonitor.mark fresh.jmon note
           | [ "churn"; k ] ->
             Jmonitor.mark fresh.jmon note;
             jchurn fresh (int_of_string k);
             Monitor.flush_cache (Jmonitor.monitor fresh.jmon)
           | _ -> Jmonitor.mark fresh.jmon note))
      (Jmonitor.replay_plan events);
    Jmonitor.sync fresh.jmon;
    Ok (Jmonitor.verdict_lines fresh.jmon)
