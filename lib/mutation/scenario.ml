module Cloud = Cm_cloudsim.Cloud
module Store = Cm_cloudsim.Store
module Monitor = Cm_monitor.Monitor
module Request = Cm_http.Request
module Json = Cm_json.Json
module Workload = Cm_workload.Workload
module Exec = Cm_workload.Exec

type ctx = {
  cloud : Cloud.t;
  monitor : Monitor.t;
  tokens : (string * string) list;
  clock : Cm_core.Clock.t;
  chaos : Cm_cloudsim.Chaos.t option;
}

let project = "myProject"

let service_subject =
  Cm_rbac.Subject.make "cmonitor-svc" [ "proj_administrator" ]

(* Shared construction; [setup] instantiates it over the single-service
   Cinder models, [setup_cross] over the cross-service models and the
   extended security table. *)
let setup_gen ~resources ~behavior ~table ~mode ~strategy ~engine ~eval
    ~faults ~chaos:chaos_profile ~chaos_seed ~resilience ~degradation
    ~stability_check ~footprint_pruning ~cache () =
  let clock = Cm_core.Clock.create () in
  let cloud = Cloud.create ~clock () in
  Cloud.seed cloud Cloud.my_project;
  Cm_cloudsim.Identity.add_user (Cloud.identity cloud) ~password:"svc-pw"
    service_subject;
  let login user password =
    match Cloud.login cloud ~user ~password ~project_id:project with
    | Ok token -> token
    | Error msg -> failwith (Printf.sprintf "login %s failed: %s" user msg)
  in
  let service_token = login "cmonitor-svc" "svc-pw" in
  let tokens =
    [ ("alice", login "alice" "alice-pw");
      ("bob", login "bob" "bob-pw");
      ("carol", login "carol" "carol-pw")
    ]
  in
  Cloud.set_faults cloud faults;
  (* Chaos wraps the transport the *monitor* sees; logins above talked
     to the cloud directly, as an operator bootstrapping would. *)
  let chaos =
    Option.map
      (fun profile ->
        Cm_cloudsim.Chaos.create ?seed:chaos_seed profile clock
          (Cloud.handle cloud))
      chaos_profile
  in
  let backend =
    match chaos with
    | Some c -> Cm_cloudsim.Chaos.backend c
    | None -> Cloud.handle cloud
  in
  let security =
    { Cm_contracts.Generate.table;
      assignment = Cm_rbac.Security_table.cinder_assignment
    }
  in
  let config =
    Monitor.default_config ~mode ~strategy ~engine ?eval ~stability_check
      ?resilience ~degradation ~clock ?footprint_pruning ?cache ~service_token
      ~security resources behavior
  in
  match Monitor.create config backend with
  | Ok monitor -> Ok { cloud; monitor; tokens; clock; chaos }
  | Error msgs -> Error msgs

let setup ?(mode = Monitor.Oracle) ?(strategy = Cm_contracts.Runtime.Lean)
    ?(engine = Cm_contracts.Runtime.Compiled) ?eval
    ?(faults = Cm_cloudsim.Faults.none) ?chaos ?chaos_seed ?resilience
    ?(degradation = Monitor.Fail_open_logged) ?(stability_check = false)
    ?footprint_pruning ?cache () =
  setup_gen ~resources:Cm_uml.Cinder_model.resources
    ~behavior:Cm_uml.Cinder_model.behavior ~table:Cm_rbac.Security_table.cinder
    ~mode ~strategy ~engine ~eval ~faults ~chaos ~chaos_seed ~resilience
    ~degradation ~stability_check ~footprint_pruning ~cache ()

let setup_cross ?(mode = Monitor.Oracle) ?(strategy = Cm_contracts.Runtime.Lean)
    ?(engine = Cm_contracts.Runtime.Compiled) ?eval
    ?(faults = Cm_cloudsim.Faults.none) ?chaos ?chaos_seed ?resilience
    ?(degradation = Monitor.Fail_open_logged) ?(stability_check = false)
    ?footprint_pruning ?cache () =
  setup_gen ~resources:Cm_uml.Cross_model.resources
    ~behavior:Cm_uml.Cross_model.behavior ~table:Cm_rbac.Security_table.cross
    ~mode ~strategy ~engine ~eval ~faults ~chaos ~chaos_seed ~resilience
    ~degradation ~stability_check ~footprint_pruning ~cache ()

let token_of ctx user =
  match List.assoc_opt user ctx.tokens with
  | Some token -> token
  | None -> failwith ("no token for user " ^ user)

let request ctx ~user meth path ?body () =
  let req =
    Request.make ?body meth path |> Request.with_auth_token (token_of ctx user)
  in
  Monitor.handle ctx.monitor req

let created_volume_id (outcome : Cm_monitor.Outcome.t) =
  match outcome.cloud_response with
  | Some resp ->
    (match resp.Cm_http.Response.body with
     | Some body ->
       (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
        | Some (Json.String id) -> Some id
        | Some _ | None -> None)
     | None -> None)
  | None -> None

let user_of_role = function
  | Workload.Admin -> ("alice", "alice-pw")
  | Workload.Member -> ("bob", "bob-pw")
  | Workload.User -> ("carol", "carol-pw")

(* Out-of-band tenant churn: a throwaway project gets a volume added
   and removed behind the monitor's back.  The monitor's caches are
   resynchronised by [Exec] calling [flush] right after. *)
let churn_project ctx k =
  let store = Cloud.store ctx.cloud in
  let pid = Printf.sprintf "churn-%d" k in
  let proj =
    match Store.find_project store pid with
    | Some p -> p
    | None ->
      Store.add_project store ~id:pid ~name:pid ~quota_volumes:2
        ~quota_gigabytes:10 ()
  in
  let volume = Store.add_volume store proj ~name:"churn-vol" ~size_gb:1 () in
  ignore (Store.remove_volume proj volume.Store.volume_id)

let exec_env ctx =
  { Exec.project;
    stable_volumes = [];
    victim_volumes = [];
    handle = (fun req -> Monitor.handle_response ctx.monitor req);
    token = (fun role -> token_of ctx (fst (user_of_role role)));
    relogin =
      Some
        (fun role ->
          let user, password = user_of_role role in
          match Cloud.login ctx.cloud ~user ~password ~project_id:project with
          | Ok token -> Some token
          | Error _ -> None);
    churn = Some (churn_project ctx);
    flush = (fun () -> Monitor.flush_cache ctx.monitor)
  }

let run_trace ctx trace = Exec.run (exec_env ctx) trace
let standard ctx = ignore (run_trace ctx Workload.standard_trace)
let cross ctx = ignore (run_trace ctx Workload.cross_trace)
