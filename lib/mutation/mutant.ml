module Faults = Cm_cloudsim.Faults
module Policy = Cm_rbac.Policy

type t = {
  name : string;
  description : string;
  faults : Faults.set;
  from_paper : bool;
}

let paper_mutants =
  [ { name = "M1-delete-privilege-escalation";
      description =
        "volume:delete wrongly allows the member role in addition to admin";
      faults =
        Faults.of_list
          [ Faults.Policy_override
              ("volume:delete", Policy.Or (Policy.Role "admin", Policy.Role "member"))
          ];
      from_paper = true
    };
    { name = "M2-update-check-missing";
      description = "the authorization check on volume:update was forgotten";
      faults = Faults.of_list [ Faults.Skip_policy_check "volume:update" ];
      from_paper = true
    };
    { name = "M3-get-wrongly-denied";
      description =
        "volume:get wrongly restricted to the admin role: authorized \
         member/user subjects are denied";
      faults =
        Faults.of_list
          [ Faults.Policy_override ("volume:get", Policy.Role "admin") ];
      from_paper = true
    }
  ]

let extended_mutants =
  [ { name = "M4-quota-ignored";
      description = "volumes can be created beyond the project quota";
      faults = Faults.of_list [ Faults.Ignore_quota ];
      from_paper = false
    };
    { name = "M5-delete-in-use-allowed";
      description = "attached (in-use) volumes can be deleted";
      faults = Faults.of_list [ Faults.Allow_delete_in_use ];
      from_paper = false
    };
    { name = "M6-wrong-delete-status";
      description = "successful DELETE answers 200 instead of 204";
      faults =
        Faults.of_list [ Faults.Wrong_success_status ("volume:delete", 200) ];
      from_paper = false
    };
    { name = "M7-phantom-create";
      description = "POST acknowledges creation but stores nothing";
      faults = Faults.of_list [ Faults.Phantom_create ];
      from_paper = false
    };
    { name = "M8-zombie-delete";
      description = "DELETE acknowledges deletion but keeps the volume";
      faults = Faults.of_list [ Faults.Zombie_delete ];
      from_paper = false
    };
    { name = "M9-create-open-to-all";
      description = "volume:create wrongly allows every authenticated user";
      faults =
        Faults.of_list [ Faults.Policy_override ("volume:create", Policy.Any) ];
      from_paper = false
    };
    { name = "M10-list-wrongly-denied";
      description = "authorized users are denied volumes:get (listing)";
      faults = Faults.of_list [ Faults.Policy_deny "volumes:get" ];
      from_paper = false
    }
  ]

(* Mutants targeting the cross-service invariants (reqs 3.x): the
   attachment integrity contracts, image-backed volume creation,
   backing-image protection, token revocation visibility and
   server-delete release.  Only the [cross] scenario exercises the
   faulty surfaces, so these are run through the cross campaign. *)
let cross_mutants =
  [ { name = "X1-attach-missing-volume-ok";
      description =
        "attaching a volume that does not exist is acknowledged instead \
         of answering 404";
      faults = Faults.of_list [ Faults.Attach_missing_volume_ok ];
      from_paper = false
    };
    { name = "X2-attach-busy-volume-ok";
      description =
        "attaching an already in-use volume succeeds instead of \
         answering 409";
      faults = Faults.of_list [ Faults.Attach_in_use_ok ];
      from_paper = false
    };
    { name = "X3-attach-ghost-server-ok";
      description =
        "attachments to servers that do not exist are accepted";
      faults = Faults.of_list [ Faults.Attach_dead_server_ok ];
      from_paper = false
    };
    { name = "X4-detach-noop";
      description =
        "detach acknowledges success but leaves the volume attached";
      faults = Faults.of_list [ Faults.Detach_noop ];
      from_paper = false
    };
    { name = "X5-image-backing-unchecked";
      description =
        "volume creation accepts an imageRef that names no active image";
      faults = Faults.of_list [ Faults.Ignore_image_backing ];
      from_paper = false
    };
    { name = "X6-image-delete-backing-allowed";
      description =
        "an image still backing volumes can be deleted";
      faults = Faults.of_list [ Faults.Allow_delete_backing_image ];
      from_paper = false
    };
    { name = "X7-zombie-token";
      description =
        "revoked tokens keep authenticating: revocation is not visible \
         to the authorization path";
      faults = Faults.of_list [ Faults.Zombie_token ];
      from_paper = false
    };
    { name = "X8-server-delete-leaks-attachments";
      description =
        "deleting a server leaves its volumes in-use and attached to \
         the dead server";
      faults = Faults.of_list [ Faults.Server_delete_leak ];
      from_paper = false
    }
  ]

let all = paper_mutants @ extended_mutants
let all_extended = all @ cross_mutants
let find name = List.find_opt (fun m -> m.name = name) all_extended

let pp ppf m =
  Fmt.pf ppf "%s%s: %s" m.name
    (if m.from_paper then " [paper]" else "")
    m.description
