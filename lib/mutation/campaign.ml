type result = {
  mutant : Mutant.t option;
  killed : bool;
  exchanges : int;
  violations : Cm_monitor.Outcome.t list;
  first_violation : string option;
}

let faults_of = function
  | Some m -> m.Mutant.faults
  | None -> Cm_cloudsim.Faults.none

(* Generic single run: [setup] builds the context for the mutant's
   faults, [workload] drives it; both campaign flavours (standard and
   cross) instantiate this. *)
let run_one_with ~setup ~workload mutant =
  match setup ~faults:(faults_of mutant) () with
  | Error msgs -> Error msgs
  | Ok ctx ->
    workload ctx;
    let outcomes = Cm_monitor.Monitor.outcomes ctx.Scenario.monitor in
    let violations = Cm_monitor.Report.violations outcomes in
    Ok
      { mutant;
        killed = violations <> [];
        exchanges = List.length outcomes;
        violations;
        first_violation =
          (match violations with
           | first :: _ ->
             Some
               (Cm_monitor.Outcome.conformance_to_string
                  first.Cm_monitor.Outcome.conformance)
           | [] -> None)
      }

let run_one mutant =
  run_one_with
    ~setup:(fun ~faults () -> Scenario.setup ~faults ())
    ~workload:Scenario.standard mutant

let run_cross_one ?eval mutant =
  run_one_with
    ~setup:(fun ~faults () -> Scenario.setup_cross ?eval ~faults ())
    ~workload:Scenario.cross mutant

let sequence results =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | Ok r :: rest -> loop (r :: acc) rest
    | (Error _ as err) :: _ -> err
  in
  loop [] results

(* Every run builds a fresh cloud + monitor, so campaign entries are
   fully independent and can fan out over domains; the result order is
   the job order regardless of domain count. *)
let run ?(domains = 1) mutants =
  sequence
    (Cm_core.Domain_pool.map_list ~domains run_one
       (None :: List.map (fun m -> Some m) mutants))

let run_cross ?(domains = 1) ?eval mutants =
  sequence
    (Cm_core.Domain_pool.map_list ~domains (run_cross_one ?eval)
       (None :: List.map (fun m -> Some m) mutants))

let kill_matrix results =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-36s %-8s %-10s %s" "mutant" "killed" "exchanges" "first killing verdict";
  line "%s" (String.make 100 '-');
  List.iter
    (fun r ->
      let name =
        match r.mutant with
        | None -> "(baseline: no fault)"
        | Some m ->
          m.Mutant.name ^ (if m.Mutant.from_paper then " [paper]" else "")
      in
      let killed_cell =
        match r.mutant with
        | None -> if r.killed then "DIRTY" else "clean"
        | Some _ -> if r.killed then "yes" else "NO"
      in
      line "%-36s %-8s %-10d %s" name killed_cell r.exchanges
        (Option.value ~default:"-" r.first_violation))
    results;
  Buffer.contents buf

let all_killed results =
  List.for_all
    (fun r ->
      match r.mutant with None -> not r.killed | Some _ -> r.killed)
    results

(* ---- chaos campaigns: verdict integrity under unreliable transport ---- *)

(* Stale observation reads are the one fault class that can manufacture
   a false [Post_violated]; the double-read defense closes it, so chaos
   campaigns run with it on. *)
let chaos_policy =
  { Cm_monitor.Resilience.default with Cm_monitor.Resilience.verified_reads = true }

type chaos_run = {
  cr_mutant : Mutant.t option;
  cr_profile : string;
  cr_killed : bool;
  cr_exchanges : int;
  cr_comparable : int;
  cr_flips : (int * string * string) list;
  cr_indefinite : int;
  cr_injected : (string * int) list;
}

(* Position-wise comparison against the fault-free run of the same
   mutant.  A step is comparable when both runs issued the same request
   (method + path — ids can diverge once a creation was absorbed
   differently); a flip is two *definite* verdicts that disagree on a
   comparable step.  Degrading to Undefined/Degraded/Monitor_error is
   the allowed escape hatch, flipping between definite verdicts is the
   integrity violation the campaign exists to catch. *)
let compare_outcomes ref_outcomes chaos_outcomes =
  let open Cm_monitor.Outcome in
  let rec walk i refs steps comparable flips indefinite =
    match refs, steps with
    | _, [] -> (comparable, List.rev flips, indefinite)
    | [], s :: stl ->
      let indefinite =
        indefinite + (if is_definite s.conformance then 0 else 1)
      in
      walk (i + 1) [] stl comparable flips indefinite
    | r :: rtl, s :: stl ->
      let indefinite =
        indefinite + (if is_definite s.conformance then 0 else 1)
      in
      let same_target =
        r.request.Cm_http.Request.meth = s.request.Cm_http.Request.meth
        && r.request.Cm_http.Request.path = s.request.Cm_http.Request.path
      in
      if same_target then begin
        let flips =
          if
            is_definite r.conformance && is_definite s.conformance
            && r.conformance <> s.conformance
          then
            ( i,
              conformance_to_string r.conformance,
              conformance_to_string s.conformance )
            :: flips
          else flips
        in
        walk (i + 1) rtl stl (comparable + 1) flips indefinite
      end
      else walk (i + 1) rtl stl comparable flips indefinite
  in
  walk 0 ref_outcomes chaos_outcomes 0 [] 0

let run_chaos_one_with ~setup ~workload ?(seed = 42) ~index profile mutant =
  let faults = faults_of mutant in
  match setup ~faults ?chaos:None ?chaos_seed:None ?resilience:None () with
  | Error msgs -> Error msgs
  | Ok ref_ctx ->
    workload ref_ctx;
    let ref_outcomes = Cm_monitor.Monitor.outcomes ref_ctx.Scenario.monitor in
    (match
       setup ~faults ?chaos:(Some profile)
         ?chaos_seed:(Some (seed + (1013 * index)))
         ?resilience:(Some chaos_policy) ()
     with
     | Error msgs -> Error msgs
     | Ok ctx ->
       workload ctx;
       let outcomes = Cm_monitor.Monitor.outcomes ctx.Scenario.monitor in
       let comparable, flips, indefinite =
         compare_outcomes ref_outcomes outcomes
       in
       Ok
         { cr_mutant = mutant;
           cr_profile = profile.Cm_cloudsim.Chaos.name;
           cr_killed = Cm_monitor.Report.violations outcomes <> [];
           cr_exchanges = List.length outcomes;
           cr_comparable = comparable;
           cr_flips = flips;
           cr_indefinite = indefinite;
           cr_injected =
             (match ctx.Scenario.chaos with
              | Some chaos -> Cm_cloudsim.Chaos.stats chaos
              | None -> [])
         })

let run_chaos_one ?seed ~index profile mutant =
  run_chaos_one_with
    ~setup:(fun ~faults ?chaos ?chaos_seed ?resilience () ->
      Scenario.setup ~faults ?chaos ?chaos_seed ?resilience ())
    ~workload:Scenario.standard ?seed ~index profile mutant

let run_chaos_cross_one ?seed ~index profile mutant =
  run_chaos_one_with
    ~setup:(fun ~faults ?chaos ?chaos_seed ?resilience () ->
      Scenario.setup_cross ~faults ?chaos ?chaos_seed ?resilience ())
    ~workload:Scenario.cross ?seed ~index profile mutant

let run_chaos ?seed ?(domains = 1) profile mutants =
  sequence
    (Cm_core.Domain_pool.map_list ~domains
       (fun (index, m) -> run_chaos_one ?seed ~index profile m)
       (List.mapi
          (fun i m -> (i, m))
          (None :: List.map (fun m -> Some m) mutants)))

let run_chaos_cross ?seed ?(domains = 1) profile mutants =
  sequence
    (Cm_core.Domain_pool.map_list ~domains
       (fun (index, m) -> run_chaos_cross_one ?seed ~index profile m)
       (List.mapi
          (fun i m -> (i, m))
          (None :: List.map (fun m -> Some m) mutants)))

let chaos_ok runs =
  List.for_all
    (fun r ->
      r.cr_flips = []
      &&
      match r.cr_mutant with
      | None -> not r.cr_killed
      | Some _ -> r.cr_killed)
    runs

let chaos_matrix runs =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "%-16s %-36s %-8s %-6s %-11s %s" "profile" "mutant" "killed" "flips"
    "indefinite" "injected faults";
  line "%s" (String.make 110 '-');
  List.iter
    (fun r ->
      let name =
        match r.cr_mutant with
        | None -> "(baseline: no fault)"
        | Some m -> m.Mutant.name
      in
      let killed_cell =
        match r.cr_mutant with
        | None -> if r.cr_killed then "DIRTY" else "clean"
        | Some _ -> if r.cr_killed then "yes" else "NO"
      in
      let injected =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) r.cr_injected)
      in
      line "%-16s %-36s %-8s %-6d %-11d %s" r.cr_profile name killed_cell
        (List.length r.cr_flips)
        r.cr_indefinite injected;
      List.iter
        (fun (i, was, now) -> line "    FLIP step %d: %s -> %s" i was now)
        r.cr_flips)
    runs;
  Buffer.contents buf

let chaos_to_json runs =
  let module Json = Cm_json.Json in
  Json.obj
    [ ( "runs",
        Json.list
          (List.map
             (fun r ->
               Json.obj
                 [ ("profile", Json.string r.cr_profile);
                   ( "mutant",
                     match r.cr_mutant with
                     | None -> Json.null
                     | Some m -> Json.string m.Mutant.name );
                   ("killed", Json.bool r.cr_killed);
                   ("exchanges", Json.int r.cr_exchanges);
                   ("comparable", Json.int r.cr_comparable);
                   ( "flips",
                     Json.list
                       (List.map
                          (fun (i, was, now) ->
                            Json.obj
                              [ ("step", Json.int i);
                                ("fault_free", Json.string was);
                                ("chaos", Json.string now)
                              ])
                          r.cr_flips) );
                   ("indefinite", Json.int r.cr_indefinite);
                   ( "injected",
                     Json.obj
                       (List.map (fun (k, v) -> (k, Json.int v)) r.cr_injected)
                   )
                 ])
             runs) );
      ("ok", Json.bool (chaos_ok runs))
    ]

(* ---- crash campaigns: exactly-once verdicts across kill+recover ---- *)

let crash_sites =
  [ "journal.before-request";
    "journal.after-request";
    "journal.before-pre";
    "journal.after-pre";
    "journal.before-sync";
    "journal.after-sync";
    "monitor.after-forward";
    "monitor.after-invalidate";
    "journal.before-verdict";
    "journal.after-verdict"
  ]

type crash_run = {
  xr_mutant : Mutant.t option;
  xr_profile : string;
  xr_site : string;
  xr_fired : bool;
  xr_killed : bool;
  xr_verdicts : int;
  xr_duplicates : string list;
  xr_lost : string list;
  xr_mismatches : (string * string * string) list;
  xr_resumed : int;
  xr_rehandled : int;
  xr_discarded_bytes : int;
}

let journal_violations verdicts =
  List.filter
    (fun v ->
      match
        Cm_monitor.Outcome.conformance_of_string
          v.Cm_journal.Event.v_conformance
      with
      | Some c -> Cm_monitor.Outcome.is_violation c
      | None -> false)
    verdicts

let rid_conformances verdicts =
  List.map
    (fun v ->
      (v.Cm_journal.Event.v_rid, v.Cm_journal.Event.v_conformance))
    verdicts

(* One cell of the matrix: run the workload with a crash armed at the
   [nth] occurrence of [site], kill the device (torn tail), recover,
   re-run the trace (concluded steps are served from the journal), and
   audit the final journal: exactly one verdict per step, mutant still
   killed, and — without chaos, where the transport stream is unshifted
   by the recovery's extra re-forward — verdicts identical to the
   crash-free reference. *)
let run_crash_one_with ~setup ~trace ?(seed = 42) ~index ~site ~nth profile
    mutant =
  let faults = faults_of mutant in
  let transport chaos_on =
    match profile with
    | None -> ((None : Cm_cloudsim.Chaos.profile option), None, None)
    | Some p ->
      if chaos_on then
        (Some p, Some (seed + (1013 * index)), Some chaos_policy)
      else (None, None, None)
  in
  let chaos, chaos_seed, resilience = transport true in
  let run_reference () =
    match setup ~faults ?chaos ?chaos_seed ?resilience ?crash:None () with
    | Error msgs -> Error msgs
    | Ok ref_ctx ->
      ignore (Scenario.jrun_trace ref_ctx trace);
      Cm_journal.Jmonitor.sync ref_ctx.Scenario.jmon;
      Ok (Cm_journal.Jmonitor.verdicts ref_ctx.Scenario.jmon)
  in
  match run_reference () with
  | Error msgs -> Error msgs
  | Ok reference -> (
    let crash_ctl = Cm_core.Crash.create () in
    match
      setup ~faults ?chaos ?chaos_seed ?resilience ?crash:(Some crash_ctl) ()
    with
    | Error msgs -> Error msgs
    | Ok ctx -> (
      Cm_core.Crash.arm crash_ctl ~site ~nth;
      let fired = ref false in
      let resumed = ref 0 and rehandled = ref 0 and discarded = ref 0 in
      let recovery_error = ref None in
      (try ignore (Scenario.jrun_trace ctx trace)
       with Cm_core.Crash.Crashed _ ->
         fired := true;
         Cm_journal.Device.crash ctx.Scenario.jdevice;
         (match Scenario.jrecover ctx with
          | Ok r ->
            resumed := r.Cm_journal.Jmonitor.resumed;
            rehandled := r.Cm_journal.Jmonitor.rehandled;
            discarded := r.Cm_journal.Jmonitor.discarded_bytes;
            ignore (Scenario.jrun_trace ctx trace)
          | Error msgs -> recovery_error := Some msgs));
      match !recovery_error with
      | Some msgs -> Error msgs
      | None ->
        Cm_journal.Jmonitor.sync ctx.Scenario.jmon;
        let verdicts = Cm_journal.Jmonitor.verdicts ctx.Scenario.jmon in
        let counts = Hashtbl.create 64 in
        List.iter
          (fun v ->
            let rid = v.Cm_journal.Event.v_rid in
            Hashtbl.replace counts rid
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts rid)))
          verdicts;
        let duplicates =
          Hashtbl.fold (fun rid n acc -> if n > 1 then rid :: acc else acc)
            counts []
          |> List.sort String.compare
        in
        let lost =
          List.filter_map
            (fun v ->
              let rid = v.Cm_journal.Event.v_rid in
              if Hashtbl.mem counts rid then None else Some rid)
            reference
          |> List.sort_uniq String.compare
        in
        let mismatches =
          (* Only meaningful without chaos: a recovery re-forward shifts
             the chaos stream, so post-crash chaos verdicts legitimately
             differ from the reference's. *)
          if Option.is_some profile then []
          else
            let ref_confs = rid_conformances reference in
            List.filter_map
              (fun v ->
                let rid = v.Cm_journal.Event.v_rid in
                match List.assoc_opt rid ref_confs with
                | Some c
                  when not (String.equal c v.Cm_journal.Event.v_conformance)
                  -> Some (rid, c, v.Cm_journal.Event.v_conformance)
                | Some _ | None -> None)
              verdicts
        in
        Ok
          { xr_mutant = mutant;
            xr_profile =
              (match profile with
               | None -> "fault-free"
               | Some p -> p.Cm_cloudsim.Chaos.name);
            xr_site = site;
            xr_fired = !fired;
            xr_killed = journal_violations verdicts <> [];
            xr_verdicts = List.length verdicts;
            xr_duplicates = duplicates;
            xr_lost = lost;
            xr_mismatches = mismatches;
            xr_resumed = !resumed;
            xr_rehandled = !rehandled;
            xr_discarded_bytes = !discarded
          }))

let run_crash_one ?(cross = true) ?seed ~index ~site ~nth profile mutant =
  run_crash_one_with
    ~setup:(fun ~faults ?chaos ?chaos_seed ?resilience ?crash () ->
      Scenario.setup_journaled ~cross ~faults ?chaos ?chaos_seed ?resilience
        ?crash ())
    ~trace:
      (if cross then Cm_workload.Workload.cross_trace
       else Cm_workload.Workload.standard_trace)
    ?seed ~index ~site ~nth profile mutant

let run_crash_matrix ?cross ?seed ?(domains = 1) ?(nth = 3) ?(sites = crash_sites)
    profiles mutants =
  let jobs =
    List.concat_map
      (fun profile ->
        List.concat_map
          (fun site ->
            List.map
              (fun m -> (profile, site, m))
              (None :: List.map (fun m -> Some m) mutants))
          sites)
      profiles
  in
  sequence
    (Cm_core.Domain_pool.map_list ~domains
       (fun (index, (profile, site, m)) ->
         run_crash_one ?cross ?seed ~index ~site ~nth profile m)
       (List.mapi (fun i j -> (i, j)) jobs))

let crash_ok runs =
  List.for_all
    (fun r ->
      r.xr_duplicates = [] && r.xr_lost = [] && r.xr_mismatches = []
      &&
      match r.xr_mutant with
      | None -> not r.xr_killed
      | Some _ -> r.xr_killed)
    runs

let crash_matrix runs =
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "%-14s %-26s %-30s %-6s %-8s %-4s %-4s %-4s %s" "profile" "site"
    "mutant" "fired" "killed" "dup" "lost" "mism" "recovery";
  line "%s" (String.make 118 '-');
  List.iter
    (fun r ->
      let name =
        match r.xr_mutant with
        | None -> "(baseline: no fault)"
        | Some m -> m.Mutant.name
      in
      let killed_cell =
        match r.xr_mutant with
        | None -> if r.xr_killed then "DIRTY" else "clean"
        | Some _ -> if r.xr_killed then "yes" else "NO"
      in
      line "%-14s %-26s %-30s %-6b %-8s %-4d %-4d %-4d res=%d reh=%d torn=%dB"
        r.xr_profile r.xr_site name r.xr_fired killed_cell
        (List.length r.xr_duplicates)
        (List.length r.xr_lost)
        (List.length r.xr_mismatches)
        r.xr_resumed r.xr_rehandled r.xr_discarded_bytes;
      List.iter
        (fun (rid, was, now) ->
          line "    MISMATCH %s: %s -> %s" rid was now)
        r.xr_mismatches)
    runs;
  Buffer.contents buf

let crash_to_json runs =
  let module Json = Cm_json.Json in
  Json.obj
    [ ( "runs",
        Json.list
          (List.map
             (fun r ->
               Json.obj
                 [ ("profile", Json.string r.xr_profile);
                   ("site", Json.string r.xr_site);
                   ( "mutant",
                     match r.xr_mutant with
                     | None -> Json.null
                     | Some m -> Json.string m.Mutant.name );
                   ("fired", Json.bool r.xr_fired);
                   ("killed", Json.bool r.xr_killed);
                   ("verdicts", Json.int r.xr_verdicts);
                   ( "duplicates",
                     Json.list (List.map Json.string r.xr_duplicates) );
                   ("lost", Json.list (List.map Json.string r.xr_lost));
                   ("mismatches", Json.int (List.length r.xr_mismatches));
                   ("resumed", Json.int r.xr_resumed);
                   ("rehandled", Json.int r.xr_rehandled);
                   ("discarded_bytes", Json.int r.xr_discarded_bytes)
                 ])
             runs) );
      ("ok", Json.bool (crash_ok runs))
    ]

let to_json results =
  let module Json = Cm_json.Json in
  Json.obj
    [ ( "runs",
        Json.list
          (List.map
             (fun r ->
               Json.obj
                 [ ( "mutant",
                     match r.mutant with
                     | None -> Json.null
                     | Some m -> Json.string m.Mutant.name );
                   ("killed", Json.bool r.killed);
                   ("exchanges", Json.int r.exchanges);
                   ("violations", Json.int (List.length r.violations));
                   ( "first_violation",
                     match r.first_violation with
                     | Some v -> Json.string v
                     | None -> Json.null )
                 ])
             results) );
      ("all_killed", Json.bool (all_killed results))
    ]
