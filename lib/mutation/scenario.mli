(** The validation workloads.

    Deterministic request sequences by the three users of the paper's
    setup (admin alice, member bob, plain-user carol), defined
    symbolically in {!Cm_workload.Workload} and executed here through
    {!Cm_workload.Exec} against a fresh simulated cloud.  The standard
    workload covers every security requirement of Table I and every
    behavioural edge of the Cinder state machine; the cross workload
    extends it over the compute and image services (attachment
    integrity, image-backed volumes, token revocation).  Run against a
    correct cloud they produce no violations; run against a mutant they
    produce the violation that kills it. *)

type ctx = {
  cloud : Cm_cloudsim.Cloud.t;
  monitor : Cm_monitor.Monitor.t;
  tokens : (string * string) list;  (** user name -> token *)
  clock : Cm_core.Clock.t;
      (** the virtual clock shared by cloud, chaos layer and monitor *)
  chaos : Cm_cloudsim.Chaos.t option;  (** the transport wrapper, if any *)
}

val setup :
  ?mode:Cm_monitor.Monitor.mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  ?engine:Cm_contracts.Runtime.engine ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  ?faults:Cm_cloudsim.Faults.set ->
  ?chaos:Cm_cloudsim.Chaos.profile ->
  ?chaos_seed:int ->
  ?resilience:Cm_monitor.Resilience.policy ->
  ?degradation:Cm_monitor.Monitor.degradation ->
  ?stability_check:bool ->
  ?footprint_pruning:bool ->
  ?cache:Cm_monitor.Obs_cache.scope ->
  unit ->
  (ctx, string list) result
(** Fresh simulated cloud seeded with the paper's [myProject] (three
    users, quota of 3 volumes), a service account for the monitor, the
    given faults activated, and a monitor over the Cinder models in the
    given mode (default [Oracle]) with the given contract engine
    (default [Compiled] — the fuzzer's differential oracle runs the
    same trace under both engines).

    [chaos] interposes an unreliable transport between monitor and
    cloud (seeded by [chaos_seed]); [resilience] makes the monitor
    forward through the retry/timeout/breaker layer; all three share
    one virtual clock.  Logins during setup bypass the chaos layer. *)

val setup_cross :
  ?mode:Cm_monitor.Monitor.mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  ?engine:Cm_contracts.Runtime.engine ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  ?faults:Cm_cloudsim.Faults.set ->
  ?chaos:Cm_cloudsim.Chaos.profile ->
  ?chaos_seed:int ->
  ?resilience:Cm_monitor.Resilience.policy ->
  ?degradation:Cm_monitor.Monitor.degradation ->
  ?stability_check:bool ->
  ?footprint_pruning:bool ->
  ?cache:Cm_monitor.Obs_cache.scope ->
  unit ->
  (ctx, string list) result
(** Like {!setup} but monitoring over the cross-service models
    ({!Cm_uml.Cross_model}) and the extended security table
    ({!Cm_rbac.Security_table.cross}) — volumes, servers, attachments
    and images in one specification. *)

val request :
  ctx ->
  user:string ->
  Cm_http.Meth.t ->
  string ->
  ?body:Cm_json.Json.t ->
  unit ->
  Cm_monitor.Outcome.t
(** One request through the monitor, authenticated as the user. *)

val created_volume_id : Cm_monitor.Outcome.t -> string option
(** Extract the new volume's id from a creation outcome. *)

val exec_env : ctx -> Cm_workload.Exec.env
(** The execution environment binding the workload DSL's roles to the
    paper's users (admin alice, member bob, user carol), resolving
    requests through the monitor, re-authenticating on
    [Relogin] steps and churning throwaway projects out-of-band on
    [Churn_project] steps (with a cache flush after). *)

val run_trace : ctx -> Cm_workload.Workload.trace -> int
(** Execute a workload trace through the monitor; returns the number
    of monitored requests issued.  Outcomes accumulate in the
    monitor's log. *)

val standard : ctx -> unit
(** Run the standard 16-step workload ({!Cm_workload.Workload.standard_trace});
    outcomes accumulate in the monitor's log. *)

val cross : ctx -> unit
(** Run the cross-service workload ({!Cm_workload.Workload.cross_trace});
    requires a {!setup_cross} context — under {!setup}'s single-service
    models the compute/image steps are merely unclassified. *)
