(** The validation workload.

    A fixed, deterministic sequence of requests by the three users of
    the paper's setup (admin alice, member bob, plain-user carol)
    covering every security requirement of Table I and every behavioural
    edge of the Cinder state machine: creation to quota, denied
    escalations, updates, attachment, and deletion.  Run against a
    correct cloud it produces no violations; run against a mutant it
    produces the violation that kills it. *)

type ctx = {
  cloud : Cm_cloudsim.Cloud.t;
  monitor : Cm_monitor.Monitor.t;
  tokens : (string * string) list;  (** user name -> token *)
  clock : Cm_core.Clock.t;
      (** the virtual clock shared by cloud, chaos layer and monitor *)
  chaos : Cm_cloudsim.Chaos.t option;  (** the transport wrapper, if any *)
}

val setup :
  ?mode:Cm_monitor.Monitor.mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  ?engine:Cm_contracts.Runtime.engine ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  ?faults:Cm_cloudsim.Faults.set ->
  ?chaos:Cm_cloudsim.Chaos.profile ->
  ?chaos_seed:int ->
  ?resilience:Cm_monitor.Resilience.policy ->
  ?degradation:Cm_monitor.Monitor.degradation ->
  ?stability_check:bool ->
  ?footprint_pruning:bool ->
  ?cache:Cm_monitor.Obs_cache.scope ->
  unit ->
  (ctx, string list) result
(** Fresh simulated cloud seeded with the paper's [myProject] (three
    users, quota of 3 volumes), a service account for the monitor, the
    given faults activated, and a monitor over the Cinder models in the
    given mode (default [Oracle]) with the given contract engine
    (default [Compiled] — the fuzzer's differential oracle runs the
    same trace under both engines).

    [chaos] interposes an unreliable transport between monitor and
    cloud (seeded by [chaos_seed]); [resilience] makes the monitor
    forward through the retry/timeout/breaker layer; all three share
    one virtual clock.  Logins during setup bypass the chaos layer. *)

val request :
  ctx ->
  user:string ->
  Cm_http.Meth.t ->
  string ->
  ?body:Cm_json.Json.t ->
  unit ->
  Cm_monitor.Outcome.t
(** One request through the monitor, authenticated as the user. *)

val created_volume_id : Cm_monitor.Outcome.t -> string option
(** Extract the new volume's id from a creation outcome. *)

val standard : ctx -> unit
(** Run the standard 16-step workload; outcomes accumulate in the
    monitor's log. *)
