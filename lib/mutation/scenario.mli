(** The validation workloads.

    Deterministic request sequences by the three users of the paper's
    setup (admin alice, member bob, plain-user carol), defined
    symbolically in {!Cm_workload.Workload} and executed here through
    {!Cm_workload.Exec} against a fresh simulated cloud.  The standard
    workload covers every security requirement of Table I and every
    behavioural edge of the Cinder state machine; the cross workload
    extends it over the compute and image services (attachment
    integrity, image-backed volumes, token revocation).  Run against a
    correct cloud they produce no violations; run against a mutant they
    produce the violation that kills it. *)

type ctx = {
  cloud : Cm_cloudsim.Cloud.t;
  monitor : Cm_monitor.Monitor.t;
  tokens : (string * string) list;  (** user name -> token *)
  clock : Cm_core.Clock.t;
      (** the virtual clock shared by cloud, chaos layer and monitor *)
  chaos : Cm_cloudsim.Chaos.t option;  (** the transport wrapper, if any *)
}

val setup :
  ?mode:Cm_monitor.Monitor.mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  ?engine:Cm_contracts.Runtime.engine ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  ?faults:Cm_cloudsim.Faults.set ->
  ?chaos:Cm_cloudsim.Chaos.profile ->
  ?chaos_seed:int ->
  ?resilience:Cm_monitor.Resilience.policy ->
  ?degradation:Cm_monitor.Monitor.degradation ->
  ?stability_check:bool ->
  ?footprint_pruning:bool ->
  ?cache:Cm_monitor.Obs_cache.scope ->
  unit ->
  (ctx, string list) result
(** Fresh simulated cloud seeded with the paper's [myProject] (three
    users, quota of 3 volumes), a service account for the monitor, the
    given faults activated, and a monitor over the Cinder models in the
    given mode (default [Oracle]) with the given contract engine
    (default [Compiled] — the fuzzer's differential oracle runs the
    same trace under both engines).

    [chaos] interposes an unreliable transport between monitor and
    cloud (seeded by [chaos_seed]); [resilience] makes the monitor
    forward through the retry/timeout/breaker layer; all three share
    one virtual clock.  Logins during setup bypass the chaos layer. *)

val setup_cross :
  ?mode:Cm_monitor.Monitor.mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  ?engine:Cm_contracts.Runtime.engine ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  ?faults:Cm_cloudsim.Faults.set ->
  ?chaos:Cm_cloudsim.Chaos.profile ->
  ?chaos_seed:int ->
  ?resilience:Cm_monitor.Resilience.policy ->
  ?degradation:Cm_monitor.Monitor.degradation ->
  ?stability_check:bool ->
  ?footprint_pruning:bool ->
  ?cache:Cm_monitor.Obs_cache.scope ->
  unit ->
  (ctx, string list) result
(** Like {!setup} but monitoring over the cross-service models
    ({!Cm_uml.Cross_model}) and the extended security table
    ({!Cm_rbac.Security_table.cross}) — volumes, servers, attachments
    and images in one specification. *)

val request :
  ctx ->
  user:string ->
  Cm_http.Meth.t ->
  string ->
  ?body:Cm_json.Json.t ->
  unit ->
  Cm_monitor.Outcome.t
(** One request through the monitor, authenticated as the user. *)

val created_volume_id : Cm_monitor.Outcome.t -> string option
(** Extract the new volume's id from a creation outcome. *)

val exec_env : ctx -> Cm_workload.Exec.env
(** The execution environment binding the workload DSL's roles to the
    paper's users (admin alice, member bob, user carol), resolving
    requests through the monitor, re-authenticating on
    [Relogin] steps and churning throwaway projects out-of-band on
    [Churn_project] steps (with a cache flush after). *)

val run_trace : ctx -> Cm_workload.Workload.trace -> int
(** Execute a workload trace through the monitor; returns the number
    of monitored requests issued.  Outcomes accumulate in the
    monitor's log. *)

val standard : ctx -> unit
(** Run the standard 16-step workload ({!Cm_workload.Workload.standard_trace});
    outcomes accumulate in the monitor's log. *)

val cross : ctx -> unit
(** Run the cross-service workload ({!Cm_workload.Workload.cross_trace});
    requires a {!setup_cross} context — under {!setup}'s single-service
    models the compute/image steps are merely unclassified. *)

(** {2 Journaled contexts}

    The same scenario with the monitor wrapped in
    {!Cm_journal.Jmonitor}: every exchange goes through the durable
    write-ahead journal, crash points can be armed, and the context can
    be crashed and recovered mid-trace.  The cloud, clock and chaos
    transport survive a recovery (only the monitor process "dies"). *)

type jctx = {
  jcloud : Cm_cloudsim.Cloud.t;
  mutable jmon : Cm_journal.Jmonitor.t;
      (** replaced in place by {!jrecover} *)
  jtokens : (string * string) list;
  jclock : Cm_core.Clock.t;
  jdevice : Cm_journal.Device.t;
  jmake : Cm_journal.Jmonitor.make;
  jbatch : int;
  jcrash : Cm_core.Crash.t option;
}

val setup_journaled :
  ?cross:bool ->
  ?mode:Cm_monitor.Monitor.mode ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  ?faults:Cm_cloudsim.Faults.set ->
  ?chaos:Cm_cloudsim.Chaos.profile ->
  ?chaos_seed:int ->
  ?resilience:Cm_monitor.Resilience.policy ->
  ?batch:int ->
  ?journal_seed:int ->
  ?crash:Cm_core.Crash.t ->
  unit ->
  (jctx, string list) result
(** {!setup} (or {!setup_cross} with [~cross:true]) plus a journal
    device on the shared clock and a journaled monitor over it.
    [journal_seed] seeds the device's torn-tail draw; [crash] arms
    deterministic crash-point injection. *)

val jrecover : jctx -> (Cm_journal.Jmonitor.recovery, string list) result
(** Restart the monitor after {!Cm_journal.Device.crash}: scans the
    journal, finishes the in-flight exchange, and installs the new
    instance into [jctx.jmon]. *)

val jexec_env : jctx -> Cm_workload.Exec.env
(** Like {!exec_env} over the journaled monitor, with two twists: each
    monitored request is tagged with the deterministic idempotency key
    [stp-<n>], and a request whose key already has a journaled verdict
    returns the {e recorded} response without re-issuing — which is
    what makes "re-run the trace after recovery" exactly-once. *)

val jrun_trace : jctx -> Cm_workload.Workload.trace -> int

val journal_events : jctx -> Cm_journal.Event.t list
(** The clean events currently on the context's device. *)

val replay_journal :
  ?cross:bool ->
  ?mode:Cm_monitor.Monitor.mode ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  Cm_journal.Event.t list ->
  (string list, string list) result
(** Re-execute a recorded journal against a {e fresh} same-seed cloud:
    requests verbatim (tokens and ids are deterministic), marks
    re-performed out-of-band.  Returns the replayed verdict lines,
    which must be bit-identical to
    [Cm_journal.Jmonitor.journaled_verdict_lines] of the recording. *)
