(* Synthetic workload builders for the scaling benches: resource models
   of parametric width and protocol machines of parametric depth, plus a
   ready-to-use monitored cloud fixture.

   Determinism contract: every builder here is a pure function of its
   parameters — [wide_resources] and [deep_behavior] of their size,
   [request_stream] of its (mix, seed).  Same arguments, same artifact,
   bit for bit, so bench runs are reproducible and comparable across
   hosts and commits.  Request streams come from the workload DSL
   ({!Cm_workload.Workload}); seeds are always explicit — no builder
   draws from implicit global randomness. *)

module RM = Cm_uml.Resource_model
module BM = Cm_uml.Behavior_model
module Meth = Cm_http.Meth
module Json = Cm_json.Json

let ocl = Cm_ocl.Ocl_parser.parse_exn

(* A resource model with [n] item kinds, each under its own collection
   below the root project: /v1/{project_id}/r0/{r0_id}, ... *)
let wide_resources n : RM.t =
  let kinds = List.init n (fun i -> Printf.sprintf "r%d" i) in
  { RM.model_name = Printf.sprintf "wide%d" n;
    base_path = "/v1";
    root = "Projects";
    resources =
      (RM.collection "Projects"
      :: RM.normal "project" [ ("id", RM.A_string) ]
      :: List.concat_map
           (fun kind ->
             [ RM.collection ("C_" ^ kind);
               RM.normal kind [ ("id", RM.A_string); ("status", RM.A_string) ]
             ])
           kinds);
    associations =
      (RM.assoc ~role:"projects" "Projects" "project"
      :: List.concat_map
           (fun kind ->
             [ RM.assoc
                 ~multiplicity:Cm_uml.Multiplicity.exactly_one
                 ~role:kind "project" ("C_" ^ kind);
               RM.assoc ~role:("item_" ^ kind) ("C_" ^ kind) kind
             ])
           kinds)
  }

(* A protocol machine over the first item kind with [n] counting states:
   state s_i means "i items exist"; POST moves up, DELETE moves down. *)
let deep_behavior n : BM.t =
  let state_name i = Printf.sprintf "s%d" i in
  let invariant i = ocl (Printf.sprintf "project.r0->size() = %d" i) in
  let states =
    List.init (n + 1) (fun i -> BM.state (state_name i) (invariant i))
  in
  let ups =
    List.init n (fun i ->
        BM.transition
          ~effect:(ocl (Printf.sprintf "project.r0->size() = %d" (i + 1)))
          ~requirements:[ "up" ]
          ~source:(state_name i) ~target:(state_name (i + 1)) Meth.POST "r0")
  in
  let downs =
    List.init n (fun i ->
        BM.transition
          ~guard:(ocl "r0.status <> 'busy'")
          ~effect:(ocl (Printf.sprintf "project.r0->size() = %d" i))
          ~requirements:[ "down" ]
          ~source:(state_name (i + 1)) ~target:(state_name i) Meth.DELETE "r0")
  in
  { BM.machine_name = Printf.sprintf "deep%d" n;
    context = "project";
    initial = state_name 0;
    states;
    transitions = ups @ downs
  }

(* Monitored-cloud fixture shared by the latency benches. *)
type fixture = {
  cloud : Cm_cloudsim.Cloud.t;
  monitor_oracle : Cm_monitor.Monitor.t;
  monitor_enforce : Cm_monitor.Monitor.t;
  alice : string;
  volume_id : string;
}

let security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let make_fixture ?engine () =
  let module Cloud = Cm_cloudsim.Cloud in
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  Cm_cloudsim.Identity.add_user (Cloud.identity cloud) ~password:"svc"
    (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service = login "svc" "svc" in
  let make mode =
    match
      Cm_monitor.Monitor.create
        (Cm_monitor.Monitor.default_config ~mode ?engine ~service_token:service
           ~security Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior)
        (Cloud.handle cloud)
    with
    | Ok m -> m
    | Error msgs -> failwith (String.concat "; " msgs)
  in
  let alice = login "alice" "alice-pw" in
  (* one volume to GET against *)
  let create =
    Cm_http.Request.make Cm_http.Meth.POST "/v3/myProject/volumes"
      ~body:
        (Json.obj
           [ ( "volume",
               Json.obj [ ("name", Json.string "bench"); ("size", Json.int 1) ]
             )
           ])
    |> Cm_http.Request.with_auth_token alice
  in
  let resp = Cloud.handle cloud create in
  let volume_id =
    match resp.Cm_http.Response.body with
    | Some body ->
      (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
       | Some (Json.String id) -> id
       | _ -> failwith "no volume id")
    | None -> failwith "no create body"
  in
  { cloud;
    monitor_oracle = make Cm_monitor.Monitor.Oracle;
    monitor_enforce = make Cm_monitor.Monitor.Enforce;
    alice;
    volume_id
  }

let get_volume_request fx =
  Cm_http.Request.make Cm_http.Meth.GET
    ("/v3/myProject/volumes/" ^ fx.volume_id)
  |> Cm_http.Request.with_auth_token fx.alice

(* A seeded request stream over the fixture's project, compiled from a
   workload-DSL mix (default: the serving benchmark's read-heavy mix).
   All three DSL roles resolve to alice's token — the benches measure
   monitoring cost, not authorization outcomes, and admin passes every
   check the contracts make. *)
let request_stream ?(mix = Cm_workload.Workload.read_heavy) ~seed fx =
  let st =
    { Cm_workload.Exec.st_project = "myProject";
      st_token = (fun _ -> fx.alice);
      st_stable_volumes = [ fx.volume_id ];
      st_victim_volumes = []
    }
  in
  Cm_workload.Exec.requests st (mix.Cm_workload.Workload.compile ~seed)

(* The second worked example, for cross-service fastpath numbers. *)
type glance_fixture = {
  g_cloud : Cm_cloudsim.Cloud.t;
  g_monitor : Cm_monitor.Monitor.t;
  g_alice : string;
  image_id : string;
}

let glance_security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.glance;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let make_glance_fixture ?engine () =
  let module Cloud = Cm_cloudsim.Cloud in
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  Cm_cloudsim.Identity.add_user (Cloud.identity cloud) ~password:"svc"
    (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service = login "svc" "svc" in
  let monitor =
    match
      Cm_monitor.Monitor.create
        (Cm_monitor.Monitor.default_config ?engine ~service_token:service
           ~security:glance_security Cm_uml.Glance_model.resources
           Cm_uml.Glance_model.behavior)
        (Cloud.handle cloud)
    with
    | Ok m -> m
    | Error msgs -> failwith (String.concat "; " msgs)
  in
  let alice = login "alice" "alice-pw" in
  let create =
    Cm_http.Request.make Cm_http.Meth.POST "/v3/myProject/images"
      ~body:
        (Json.obj
           [ ( "image",
               Json.obj [ ("name", Json.string "bench"); ("size", Json.int 512) ]
             )
           ])
    |> Cm_http.Request.with_auth_token alice
  in
  let resp = Cm_cloudsim.Cloud.handle cloud create in
  let image_id =
    match resp.Cm_http.Response.body with
    | Some body ->
      (match Cm_json.Pointer.get [ Key "image"; Key "id" ] body with
       | Some (Json.String id) -> id
       | _ -> failwith "no image id")
    | None -> failwith "no create body"
  in
  { g_cloud = cloud; g_monitor = monitor; g_alice = alice; image_id }

let get_image_request fx =
  Cm_http.Request.make Cm_http.Meth.GET
    ("/v3/myProject/images/" ^ fx.image_id)
  |> Cm_http.Request.with_auth_token fx.g_alice
