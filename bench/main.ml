(* Benchmark & reproduction harness.

   One section per artifact of the paper's evaluation (see DESIGN.md §4):
   T1 (Table I), L1 (Listing 1), L2/L3 (Listings 2-3), F2 (workflow),
   F3 (models), F4 (pipeline), E1 (mutation experiment), plus the
   quantitative benches B1 (monitoring overhead), B2 (generation
   scaling), B3 (OCL evaluation), B4 (compiled fast path), B5 (sharded
   multicore serving) and A1 (snapshot ablation).

   `dune exec bench/main.exe` runs everything;
   `dune exec bench/main.exe -- SECTION...` runs selected sections
   (table1 listing1 listing23 fig2 fig3 fig4 mutants overhead scaling
   ocl ablation fastpath throughput ...).  Flags: `--quick` shrinks
   bench quotas, `--json` makes `fastpath` write BENCH_fastpath.json
   and `throughput` write BENCH_throughput.json. *)

let banner title = Printf.printf "\n=== %s ===\n%!" title

(* --quick shrinks every bechamel quota (CI smoke runs); --json makes
   the fastpath section write BENCH_fastpath.json *)
let quick = ref false
let json_output = ref false

(* ---------- bechamel helpers ---------- *)

let run_group_rows ~quota_s tests =
  let open Bechamel in
  let quota_s = if !quick then Float.min quota_s 0.05 else quota_s in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~stabilize:true ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | Some [] | None -> Float.nan
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> r
          | None -> Float.nan
        in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  Printf.printf "%-46s %14s %8s\n" "benchmark" "time/run" "r2";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun (name, ns, r2) ->
      let time_text =
        if Float.is_nan ns then "n/a"
        else if ns > 1_000_000. then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns > 1_000. then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.1f ns" ns
      in
      Printf.printf "%-46s %14s %8.4f\n" name time_text r2)
    rows;
  rows

let run_group ~quota_s tests = ignore (run_group_rows ~quota_s tests)

let staged = Bechamel.Staged.stage

(* ---------- sections ---------- *)

let section_table1 () =
  banner "T1: security requirements for the Cinder API (Table I)";
  print_string
    (Cm_rbac.Security_table.render ~resources:[ "volume" ]
       Cm_rbac.Security_table.cinder Cm_rbac.Security_table.cinder_assignment);
  print_endline "\n(asserted equal to the paper's rows in test/test_rbac.ml)"

let security = Workloads.security

let section_listing1 () =
  banner "L1: generated contract for DELETE(volume) (Listing 1)";
  match
    Cm_contracts.Generate.contract_for ~security Cm_uml.Cinder_model.behavior
      { Cm_uml.Behavior_model.meth = Cm_http.Meth.DELETE; resource = "volume" }
  with
  | Error msg -> print_endline ("ERROR: " ^ msg)
  | Ok contract ->
    Fmt.pr "%a@." Cm_contracts.Contract.pp contract;
    Printf.printf
      "\nshape: %d disjuncts in Pre, %d implications in Post, pre() slots: %d\n"
      (List.length (Cm_ocl.Simplify.disjuncts contract.Cm_contracts.Contract.pre))
      (List.length (Cm_ocl.Simplify.conjuncts contract.Cm_contracts.Contract.post))
      (List.length
         (Cm_contracts.Snapshot.compile contract.Cm_contracts.Contract.post)
           .Cm_contracts.Snapshot.slots)

let section_listing23 () =
  banner "L2/L3: generated Django urls.py and views.py (Listings 2-3)";
  match
    Cm_codegen.Django_project.generate ~project_name:"cmonitor" ~security
      Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior
  with
  | Error msg -> print_endline ("ERROR: " ^ msg)
  | Ok files ->
    List.iter
      (fun (f : Cm_codegen.Django_project.file) ->
        if f.path = "cmonitor/urls.py" then begin
          print_endline "--- urls.py ---";
          print_string f.content
        end)
      files;
    List.iter
      (fun (f : Cm_codegen.Django_project.file) ->
        if f.path = "cmonitor/views.py" then begin
          print_endline "--- views.py (volume dispatcher + DELETE view) ---";
          let lines = String.split_on_char '\n' f.content in
          let in_section = ref false in
          List.iter
            (fun line ->
              let starts prefix =
                String.length line >= String.length prefix
                && String.sub line 0 (String.length prefix) = prefix
              in
              if starts "def volume(request" then in_section := true
              else if starts "def volume_get" || starts "def volume_put" then
                in_section := false
              else if starts "def volume_delete" then in_section := true;
              if !in_section then print_endline line)
            lines
        end)
      files

let run_lifecycle mode =
  match Cm_mutation.Scenario.setup ~mode () with
  | Error msgs -> failwith (String.concat "; " msgs)
  | Ok ctx ->
    Cm_mutation.Scenario.standard ctx;
    ctx

let section_fig2 () =
  banner "F2: monitor workflow verdicts over the standard lifecycle (Fig. 2)";
  let ctx = run_lifecycle Cm_monitor.Monitor.Oracle in
  let outcomes = Cm_monitor.Monitor.outcomes ctx.Cm_mutation.Scenario.monitor in
  List.iter (fun o -> Fmt.pr "%a@." Cm_monitor.Outcome.pp o) outcomes;
  print_newline ();
  print_string
    (Cm_monitor.Report.render
       (Cm_monitor.Report.summarize outcomes)
       ~coverage:(Cm_monitor.Monitor.coverage ctx.Cm_mutation.Scenario.monitor))

let section_fig3 () =
  banner "F3: the Cinder design models (Fig. 3) and their XMI round-trip";
  Fmt.pr "%a@." Cm_uml.Resource_model.pp Cm_uml.Cinder_model.resources;
  Fmt.pr "%a@." Cm_uml.Behavior_model.pp Cm_uml.Cinder_model.behavior;
  (match Cm_uml.Paths.derive Cm_uml.Cinder_model.resources with
   | Error msg -> print_endline ("ERROR: " ^ msg)
   | Ok entries ->
     print_endline "derived URI table:";
     List.iter
       (fun (e : Cm_uml.Paths.entry) ->
         Printf.printf "  %-12s %-10s %s\n" e.resource
           (if e.is_item then "item" else "collection")
           (Cm_http.Uri_template.to_string e.template))
       entries);
  let doc =
    { Cm_uml.Xmi.resource_model = Cm_uml.Cinder_model.resources;
      behavior_models = [ Cm_uml.Cinder_model.behavior ]
    }
  in
  let text = Cm_uml.Xmi.write doc in
  (match Cm_uml.Xmi.read text with
   | Ok parsed
     when parsed.Cm_uml.Xmi.resource_model = Cm_uml.Cinder_model.resources ->
     Printf.printf "XMI round-trip: OK (%d bytes of XMI)\n" (String.length text)
   | Ok _ -> print_endline "XMI round-trip: MISMATCH"
   | Error msg -> print_endline ("XMI round-trip FAILED: " ^ msg));
  print_endline "\nresource model (Fig. 3 left, as Mermaid):";
  print_string (Cm_uml.Mermaid.class_diagram Cm_uml.Cinder_model.resources);
  print_endline "\nbehavioral model (Fig. 3 right, as Mermaid):";
  print_string (Cm_uml.Mermaid.state_diagram Cm_uml.Cinder_model.behavior)

let section_fig4 () =
  banner "F4: end-to-end pipeline XMI -> contracts -> Django project (Fig. 4)";
  let doc =
    { Cm_uml.Xmi.resource_model = Cm_uml.Cinder_model.resources;
      behavior_models = [ Cm_uml.Cinder_model.behavior ]
    }
  in
  let xmi_text = Cm_uml.Xmi.write doc in
  let pipeline () =
    let parsed = Cm_uml.Xmi.read_exn xmi_text in
    match parsed.Cm_uml.Xmi.behavior_models with
    | behavior :: _ ->
      (match
         Cm_codegen.Django_project.generate ~project_name:"cmonitor" ~security
           parsed.Cm_uml.Xmi.resource_model behavior
       with
       | Ok files ->
         List.fold_left
           (fun acc (f : Cm_codegen.Django_project.file) ->
             acc + String.length f.content)
           0 files
       | Error msg -> failwith msg)
    | [] -> failwith "no machine"
  in
  let bytes = pipeline () in
  let t0 = Unix.gettimeofday () in
  let iterations = 50 in
  for _ = 1 to iterations do
    ignore (pipeline ())
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "pipeline run: %d bytes of generated code, %.2f ms per run (%d runs)\n"
    bytes
    (elapsed /. float_of_int iterations *. 1000.)
    iterations

let section_mutants () =
  banner "E1: the mutation experiment (SVI-D)";
  match Cloudmon.validate_cloud ~mutants:Cm_mutation.Mutant.all () with
  | Error msgs -> List.iter print_endline msgs
  | Ok results ->
    print_string (Cm_mutation.Campaign.kill_matrix results);
    let paper =
      List.filter
        (fun (r : Cm_mutation.Campaign.result) ->
          match r.mutant with
          | None -> true
          | Some m -> m.Cm_mutation.Mutant.from_paper)
        results
    in
    Printf.printf "\npaper's result (3/3 mutants killed, baseline clean): %s\n"
      (if Cm_mutation.Campaign.all_killed paper then "REPRODUCED"
       else "NOT reproduced");
    Printf.printf "extended catalog (%d further mutants): %s\n"
      (List.length Cm_mutation.Mutant.extended_mutants)
      (if Cm_mutation.Campaign.all_killed results then "all killed"
       else "some survived")

let section_overhead () =
  banner "B1: monitoring overhead per request (direct vs proxied)";
  let fx = Workloads.make_fixture () in
  let request = Workloads.get_volume_request fx in
  let tests =
    Bechamel.Test.make_grouped ~name:"overhead"
      [ Bechamel.Test.make ~name:"direct-cloud-GET"
          (staged (fun () ->
               ignore (Cm_cloudsim.Cloud.handle fx.Workloads.cloud request)));
        Bechamel.Test.make ~name:"monitored-GET-oracle"
          (staged (fun () ->
               ignore
                 (Cm_monitor.Monitor.handle fx.Workloads.monitor_oracle request)));
        Bechamel.Test.make ~name:"monitored-GET-enforce"
          (staged (fun () ->
               ignore
                 (Cm_monitor.Monitor.handle fx.Workloads.monitor_enforce request)))
      ]
  in
  run_group ~quota_s:0.5 tests;
  print_endline
    "(the monitor's multiple = the observation GETs + two contract \
     evaluations per exchange)"

let section_scaling () =
  banner "B2: generation scaling (contracts and Django code)";
  let contract_test n =
    let behavior = Workloads.deep_behavior n in
    Bechamel.Test.make
      ~name:(Printf.sprintf "contracts-%03d-transitions" (2 * n))
      (staged (fun () ->
           match Cm_contracts.Generate.all behavior with
           | Ok cs -> ignore (List.length cs)
           | Error msg -> failwith msg))
  in
  let django_test n =
    let resources = Workloads.wide_resources n in
    let behavior = Workloads.deep_behavior 2 in
    Bechamel.Test.make
      ~name:(Printf.sprintf "django-%03d-resources" (2 * n + 2))
      (staged (fun () ->
           match
             Cm_codegen.Django_project.generate ~project_name:"g" resources
               behavior
           with
           | Ok files -> ignore (List.length files)
           | Error msg -> failwith msg))
  in
  let tests =
    Bechamel.Test.make_grouped ~name:"scaling"
      [ contract_test 2;
        contract_test 8;
        contract_test 32;
        django_test 2;
        django_test 8;
        django_test 16
      ]
  in
  run_group ~quota_s:0.4 tests

let section_ocl () =
  banner "B3: OCL parsing / evaluation / typechecking throughput";
  let invariant_text =
    "project.id->size() = 1 and project.volumes->size() >= 1 and \
     project.volumes->size() < quota_sets.volumes and volume.status <> \
     'in-use' and user.groups->includes('proj_administrator')"
  in
  let expr = Cm_ocl.Ocl_parser.parse_exn invariant_text in
  let env =
    Cm_ocl.Eval.env_of_bindings
      [ ( "project",
          Cm_json.Json.obj
            [ ("id", Cm_json.Json.string "p");
              ( "volumes",
                Cm_json.Json.list
                  [ Cm_json.Json.obj
                      [ ("status", Cm_json.Json.string "available") ]
                  ] )
            ] );
        ("quota_sets", Cm_json.Json.obj [ ("volumes", Cm_json.Json.int 3) ]);
        ( "volume",
          Cm_json.Json.obj [ ("status", Cm_json.Json.string "available") ] );
        ( "user",
          Cm_json.Json.obj
            [ ( "groups",
                Cm_json.Json.list [ Cm_json.Json.string "proj_administrator" ]
              )
            ] )
      ]
  in
  let signature = Cm_uml.Cinder_model.signature in
  let tests =
    Bechamel.Test.make_grouped ~name:"ocl"
      [ Bechamel.Test.make ~name:"parse-branch-precondition"
          (staged (fun () -> ignore (Cm_ocl.Ocl_parser.parse_exn invariant_text)));
        Bechamel.Test.make ~name:"eval-branch-precondition"
          (staged (fun () -> ignore (Cm_ocl.Eval.check env expr)));
        Bechamel.Test.make ~name:"typecheck-branch-precondition"
          (staged (fun () ->
               ignore (Cm_ocl.Typecheck.check_boolean signature expr)));
        Bechamel.Test.make ~name:"simplify-branch-precondition"
          (staged (fun () -> ignore (Cm_ocl.Simplify.simplify expr)));
        Bechamel.Test.make ~name:"pretty-print"
          (staged (fun () -> ignore (Cm_ocl.Pretty.to_string expr)))
      ]
  in
  run_group ~quota_s:0.4 tests

let section_ablation () =
  banner "A1: snapshot-strategy ablation (lean values vs full copies)";
  let contract =
    match
      Cm_contracts.Generate.contract_for ~security Cm_uml.Cinder_model.behavior
        { Cm_uml.Behavior_model.meth = Cm_http.Meth.DELETE; resource = "volume" }
    with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let volumes n =
    Cm_json.Json.list
      (List.init n (fun i ->
           Cm_json.Json.obj
             [ ("id", Cm_json.Json.string (Printf.sprintf "vol-%d" i));
               ("name", Cm_json.Json.string (Printf.sprintf "volume-%d" i));
               ("status", Cm_json.Json.string "available");
               ("size", Cm_json.Json.int 10)
             ]))
  in
  let env n =
    Cm_ocl.Eval.env_of_bindings
      [ ( "project",
          Cm_json.Json.obj
            [ ("id", Cm_json.Json.string "p"); ("volumes", volumes n) ] );
        ( "quota_sets",
          Cm_json.Json.obj [ ("volumes", Cm_json.Json.int (n + 1)) ] );
        ( "volume",
          Cm_json.Json.obj [ ("status", Cm_json.Json.string "available") ] );
        ( "user",
          Cm_json.Json.obj
            [ ( "groups",
                Cm_json.Json.list [ Cm_json.Json.string "proj_administrator" ]
              )
            ] )
      ]
  in
  (* the paper's claim: a few bytes per call regardless of state size *)
  Printf.printf "%-12s %18s %18s\n" "#volumes" "lean snapshot" "full snapshot";
  let lean =
    Cm_contracts.Runtime.prepare ~strategy:Cm_contracts.Runtime.Lean contract
  in
  let full =
    Cm_contracts.Runtime.prepare ~strategy:Cm_contracts.Runtime.Full contract
  in
  List.iter
    (fun n ->
      let e = env n in
      Printf.printf "%-12d %15d B %15d B\n" n
        (Cm_contracts.Runtime.snapshot_bytes
           (Cm_contracts.Runtime.take_snapshot lean e))
        (Cm_contracts.Runtime.snapshot_bytes
           (Cm_contracts.Runtime.take_snapshot full e)))
    [ 1; 10; 100; 1000 ];
  print_newline ();
  let pre_env = env 100 in
  let post_env = env 99 in
  let tests =
    Bechamel.Test.make_grouped ~name:"snapshot"
      [ Bechamel.Test.make ~name:"lean-snapshot+post-check-100-volumes"
          (staged (fun () ->
               let s = Cm_contracts.Runtime.take_snapshot lean pre_env in
               ignore (Cm_contracts.Runtime.check_post lean s post_env)));
        Bechamel.Test.make ~name:"full-snapshot+post-check-100-volumes"
          (staged (fun () ->
               let s = Cm_contracts.Runtime.take_snapshot full pre_env in
               ignore (Cm_contracts.Runtime.check_post full s post_env)))
      ]
  in
  run_group ~quota_s:0.4 tests

let section_fastpath () =
  banner "B4: compiled contract fast path (staged closures vs AST interpreter)";
  let module Runtime = Cm_contracts.Runtime in
  let module Json = Cm_json.Json in
  let contract_of ~security behavior trigger =
    match Cm_contracts.Generate.contract_for ~security behavior trigger with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let cinder_contract =
    contract_of ~security Cm_uml.Cinder_model.behavior
      { Cm_uml.Behavior_model.meth = Cm_http.Meth.DELETE; resource = "volume" }
  in
  let glance_contract =
    contract_of
      ~security:
        { Cm_contracts.Generate.table = Cm_rbac.Security_table.glance;
          assignment = Cm_rbac.Security_table.cinder_assignment
        }
      Cm_uml.Glance_model.behavior
      { Cm_uml.Behavior_model.meth = Cm_http.Meth.DELETE; resource = "image" }
  in
  let listing n =
    Json.list
      (List.init n (fun i ->
           Json.obj
             [ ("id", Json.string (Printf.sprintf "i-%d" i));
               ("name", Json.string (Printf.sprintf "item-%d" i));
               ("status", Json.string "available");
               ("size", Json.int 8)
             ]))
  in
  let admin =
    Json.obj
      [ ("groups", Json.list [ Json.string "proj_administrator" ]) ]
  in
  let cinder_env =
    Cm_ocl.Eval.env_of_bindings
      [ ( "project",
          Json.obj [ ("id", Json.string "p"); ("volumes", listing 10) ] );
        ("quota_sets", Json.obj [ ("volumes", Json.int 20) ]);
        ("volume", Json.obj [ ("status", Json.string "available") ]);
        ("user", admin)
      ]
  in
  let glance_env =
    Cm_ocl.Eval.env_of_bindings
      [ ( "project",
          Json.obj [ ("id", Json.string "p"); ("images", listing 10) ] );
        ("quota_sets", Json.obj [ ("images", Json.int 20) ]);
        ("image", Json.obj [ ("status", Json.string "queued") ]);
        ("user", admin)
      ]
  in
  (* a full per-request check cycle — exactly the calls Monitor.handle
     makes in Oracle mode, minus the observation GETs: one observed
     state per side, all checks against it *)
  let check_cycle prepared env () =
    let pre = Runtime.observe prepared env in
    ignore (Runtime.check_pre_observed prepared pre);
    ignore (Runtime.covered_requirements_observed prepared pre);
    ignore (Runtime.auth_guard_tri prepared pre);
    ignore (Runtime.functional_pre_tri prepared pre);
    let s = Runtime.take_snapshot_observed prepared pre in
    let post = Runtime.observe prepared env in
    ignore (Runtime.check_post_observed prepared s post)
  in
  let micro name contract env =
    let pi = Runtime.prepare ~engine:Runtime.Interpreted contract in
    let pc = Runtime.prepare ~engine:Runtime.Compiled contract in
    [ Bechamel.Test.make
        ~name:(name ^ "-check-interpreted")
        (staged (check_cycle pi env));
      Bechamel.Test.make
        ~name:(name ^ "-check-compiled")
        (staged (check_cycle pc env))
    ]
  in
  (* end-to-end through Monitor.handle: observation GETs included, so
     the contract-check speedup is diluted by the (identical) I/O *)
  let fxi = Workloads.make_fixture ~engine:Runtime.Interpreted () in
  let fxc = Workloads.make_fixture ~engine:Runtime.Compiled () in
  let gxi = Workloads.make_glance_fixture ~engine:Runtime.Interpreted () in
  let gxc = Workloads.make_glance_fixture ~engine:Runtime.Compiled () in
  let e2e =
    [ Bechamel.Test.make ~name:"cinder-handle-interpreted"
        (staged (fun () ->
             ignore
               (Cm_monitor.Monitor.handle fxi.Workloads.monitor_oracle
                  (Workloads.get_volume_request fxi))));
      Bechamel.Test.make ~name:"cinder-handle-compiled"
        (staged (fun () ->
             ignore
               (Cm_monitor.Monitor.handle fxc.Workloads.monitor_oracle
                  (Workloads.get_volume_request fxc))));
      Bechamel.Test.make ~name:"glance-handle-interpreted"
        (staged (fun () ->
             ignore
               (Cm_monitor.Monitor.handle gxi.Workloads.g_monitor
                  (Workloads.get_image_request gxi))));
      Bechamel.Test.make ~name:"glance-handle-compiled"
        (staged (fun () ->
             ignore
               (Cm_monitor.Monitor.handle gxc.Workloads.g_monitor
                  (Workloads.get_image_request gxc))))
    ]
  in
  let tests =
    Bechamel.Test.make_grouped ~name:"fastpath"
      (micro "cinder-delete" cinder_contract cinder_env
      @ micro "glance-delete" glance_contract glance_env
      @ e2e)
  in
  let rows = run_group_rows ~quota_s:1.0 tests in
  let ns_of suffix =
    List.find_map
      (fun (name, ns, _) ->
        if String.ends_with ~suffix name then Some ns else None)
      rows
  in
  print_newline ();
  List.iter
    (fun (label, interp, compiled) ->
      match ns_of interp, ns_of compiled with
      | Some i, Some c when c > 0. ->
        Printf.printf "%-28s %6.2fx speedup (%.0f ns -> %.0f ns)\n" label
          (i /. c) i c
      | _ -> Printf.printf "%-28s n/a\n" label)
    [ ("cinder contract check", "cinder-delete-check-interpreted",
       "cinder-delete-check-compiled");
      ("glance contract check", "glance-delete-check-interpreted",
       "glance-delete-check-compiled");
      ("cinder Monitor.handle", "cinder-handle-interpreted",
       "cinder-handle-compiled");
      ("glance Monitor.handle", "glance-handle-interpreted",
       "glance-handle-compiled")
    ];
  (* incremental engine: contract re-evaluations per request under both
     eval modes on the standard mixed workload, plus the memoized-hit
     microbench (the CI allocation gate reads these rows back from
     BENCH_fastpath.json) *)
  print_newline ();
  let ev =
    match Cloudmon.Serve_bench.run_eval_comparison Cloudmon.Serve_bench.default_spec with
    | Ok ev -> ev
    | Error msgs -> failwith ("eval comparison failed: " ^ String.concat "; " msgs)
  in
  Printf.printf
    "incremental: %.2f -> %.2f evals/request (%.2fx reduction), %d replays, \
     %.1f%% node hits\n"
    ev.Cloudmon.Serve_bench.ev_full_per_req ev.Cloudmon.Serve_bench.ev_inc_per_req
    ev.Cloudmon.Serve_bench.ev_reduction ev.Cloudmon.Serve_bench.ev_replays
    (100. *. ev.Cloudmon.Serve_bench.ev_node_hit_rate);
  Printf.printf "memoized-hit check: %.1f ns, %.2f minor words/check\n"
    ev.Cloudmon.Serve_bench.ev_hit_ns ev.Cloudmon.Serve_bench.ev_hit_minor_words;
  if !json_output then begin
    let base_rows =
      List.map
        (fun (name, ns, r2) ->
          Json.obj
            [ ("benchmark", Json.string name);
              ("ns_per_run", Json.float ns);
              ("r2", Json.float r2)
            ])
        rows
    in
    let inc_rows =
      [ Json.obj
          [ ("benchmark", Json.string "incremental/memoized-hit-check");
            ("ns_per_run", Json.float ev.Cloudmon.Serve_bench.ev_hit_ns);
            ("r2", Json.float 1.0);
            ( "minor_words_per_check",
              Json.float ev.Cloudmon.Serve_bench.ev_hit_minor_words )
          ];
        Json.obj
          [ ("benchmark", Json.string "incremental/evals-per-request-full");
            ("evals_per_request", Json.float ev.Cloudmon.Serve_bench.ev_full_per_req)
          ];
        Json.obj
          [ ("benchmark", Json.string "incremental/evals-per-request-incremental");
            ("evals_per_request", Json.float ev.Cloudmon.Serve_bench.ev_inc_per_req)
          ];
        Json.obj
          [ ("benchmark", Json.string "incremental/eval-reduction");
            ("factor", Json.float ev.Cloudmon.Serve_bench.ev_reduction)
          ]
      ]
    in
    let doc = Json.list (base_rows @ inc_rows) in
    let oc = open_out "BENCH_fastpath.json" in
    output_string oc (Cm_json.Printer.to_string_pretty doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "\nwrote BENCH_fastpath.json (%d rows)\n"
      (List.length rows + List.length inc_rows)
  end

let section_resilience () =
  banner "A8: resilient forwarding overhead (fault-free, policy on vs off)";
  let module Json = Cm_json.Json in
  let fx = Workloads.make_fixture () in
  let service =
    match
      Cm_cloudsim.Cloud.login fx.Workloads.cloud ~user:"svc" ~password:"svc"
        ~project_id:"myProject"
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let resilient_monitor policy =
    match
      Cm_monitor.Monitor.create
        (Cm_monitor.Monitor.default_config ~mode:Cm_monitor.Monitor.Oracle
           ~service_token:service ~security ~resilience:policy
           Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior)
        (Cm_cloudsim.Cloud.handle fx.Workloads.cloud)
    with
    | Ok m -> m
    | Error msgs -> failwith (String.concat "; " msgs)
  in
  let m_default = resilient_monitor Cm_monitor.Resilience.default in
  let m_verified =
    resilient_monitor
      { Cm_monitor.Resilience.default with
        Cm_monitor.Resilience.verified_reads = true
      }
  in
  let request = Workloads.get_volume_request fx in
  let tests =
    Bechamel.Test.make_grouped ~name:"resilience"
      [ Bechamel.Test.make ~name:"handle-resilience-off"
          (staged (fun () ->
               ignore
                 (Cm_monitor.Monitor.handle fx.Workloads.monitor_oracle request)));
        Bechamel.Test.make ~name:"handle-resilience-on"
          (staged (fun () ->
               ignore (Cm_monitor.Monitor.handle m_default request)));
        Bechamel.Test.make ~name:"handle-verified-reads"
          (staged (fun () ->
               ignore (Cm_monitor.Monitor.handle m_verified request)))
      ]
  in
  let rows = run_group_rows ~quota_s:0.5 tests in
  let ns_of suffix =
    List.find_map
      (fun (name, ns, _) ->
        if String.ends_with ~suffix name then Some ns else None)
      rows
  in
  print_newline ();
  let overhead =
    match ns_of "resilience-off", ns_of "resilience-on" with
    | Some off, Some on when off > 0. ->
      let pct = (on -. off) /. off *. 100. in
      Printf.printf
        "resilience layer, fault-free: %+.1f%% per request (%.0f ns -> %.0f \
         ns; target < 10%%)\n"
        pct off on;
      Some pct
    | _ ->
      print_endline "resilience layer overhead: n/a";
      None
  in
  (match ns_of "resilience-off", ns_of "verified-reads" with
   | Some off, Some on when off > 0. ->
     Printf.printf
       "with verified reads (chaos policy): %+.1f%% (doubles observation \
        GETs by design)\n"
       ((on -. off) /. off *. 100.)
   | _ -> ());
  if !json_output then begin
    let doc =
      Json.obj
        [ ( "rows",
            Json.list
              (List.map
                 (fun (name, ns, r2) ->
                   Json.obj
                     [ ("benchmark", Json.string name);
                       ("ns_per_run", Json.float ns);
                       ("r2", Json.float r2)
                     ])
                 rows) );
          ( "overhead_percent",
            match overhead with Some p -> Json.float p | None -> Json.Null )
        ]
    in
    let oc = open_out "BENCH_resilience.json" in
    output_string oc (Cm_json.Printer.to_string_pretty doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "\nwrote BENCH_resilience.json (%d rows)\n" (List.length rows)
  end

let section_journal () =
  banner "A11: durable event journal (append cost, 100k-event recovery scan)";
  let module Json = Cm_json.Json in
  let module Device = Cm_journal.Device in
  let module Journal = Cm_journal.Journal in
  let module Event = Cm_journal.Event in
  let module Jmonitor = Cm_journal.Jmonitor in
  let events = if !quick then 10_000 else 100_000 in
  let clock = Cm_core.Clock.create () in
  let device = Device.create ~clock ~seed:17 () in
  let journal = Journal.create device in
  (* a realistic mix: every exchange journals a Request and a Verdict *)
  let request i =
    Event.Request
      { seq = i;
        rid = Printf.sprintf "stp-%d" i;
        req =
          Cm_http.Request.make
            ~headers:
              (Cm_http.Headers.of_list
                 [ ("X-Auth-Token", "tok-4-alice");
                   ("X-Request-Id", Printf.sprintf "stp-%d" i)
                 ])
            Cm_http.Meth.GET
            (Printf.sprintf "/v3/myProject/volumes/vol-%d" (i mod 97))
      }
  in
  let verdict i =
    Event.Verdict
      { Event.v_seq = i; v_rid = Printf.sprintf "stp-%d" i; v_meth = "GET";
        v_path = Printf.sprintf "/v3/myProject/volumes/vol-%d" (i mod 97);
        v_status = 200; v_conformance = "conform"; v_detail = "";
        v_covered = [ "1.1" ];
        v_body =
          Some
            (Json.obj
               [ ("volume", Json.obj [ ("id", Json.string "vol-1") ]) ])
      }
  in
  let t0 = Unix.gettimeofday () in
  for i = 1 to events / 2 do
    Journal.append journal (request i);
    Journal.append journal (verdict i);
    if i mod 8 = 0 then Journal.sync journal
  done;
  Journal.sync journal;
  let append_s = Unix.gettimeofday () -. t0 in
  let append_ns = append_s *. 1e9 /. float_of_int events in
  Printf.printf "append: %d events in %.1f ms (%.0f ns/event, %d syncs)\n"
    events (append_s *. 1000.) append_ns (Device.syncs device);
  let t0 = Unix.gettimeofday () in
  let scanned, _clean = Journal.scan device in
  let scan_s = Unix.gettimeofday () -. t0 in
  Printf.printf "recovery scan: %d events, %d bytes in %.1f ms\n"
    (List.length scanned) (Device.size device) (scan_s *. 1000.);
  (* end-to-end recovery of a real recorded run: scan + rebuild +
     finish the in-flight exchange *)
  let module Scenario = Cm_mutation.Scenario in
  let recover_ms =
    match Scenario.setup_journaled () with
    | Error msgs -> failwith (String.concat "; " msgs)
    | Ok ctx ->
      let _ = Scenario.jrun_trace ctx Cm_workload.Workload.standard_trace in
      Jmonitor.sync ctx.Scenario.jmon;
      Device.crash ctx.Scenario.jdevice;
      let t0 = Unix.gettimeofday () in
      (match Scenario.jrecover ctx with
       | Error msgs -> failwith (String.concat "; " msgs)
       | Ok _ -> ());
      (Unix.gettimeofday () -. t0) *. 1000.
  in
  Printf.printf "end-to-end recovery (standard trace, torn tail): %.2f ms\n"
    recover_ms;
  if !json_output then begin
    let doc =
      Json.obj
        [ ("events", Json.int events);
          ("append_ns_per_event", Json.float append_ns);
          ("scan_ms", Json.float (scan_s *. 1000.));
          ("journal_bytes", Json.int (Device.size device));
          ("recover_standard_ms", Json.float recover_ms)
        ]
    in
    let oc = open_out "BENCH_journal.json" in
    output_string oc (Cm_json.Printer.to_string_pretty doc);
    output_string oc "\n";
    close_out oc;
    print_endline "\nwrote BENCH_journal.json"
  end

let section_throughput () =
  banner
    "B5: sharded multicore serving (domain scaling, footprint pruning, \
     observation cache)";
  let spec =
    if !quick then
      { Cloudmon.Serve_bench.default_spec with
        Cloudmon.Serve_bench.projects = 4;
        requests_per_project = 15
      }
    else Cloudmon.Serve_bench.default_spec
  in
  (match Cloudmon.Serve_bench.run ~spec () with
   | Error msgs -> List.iter print_endline msgs
   | Ok report ->
     print_string (Cloudmon.Serve_bench.render report);
     if !json_output then begin
       let oc = open_out "BENCH_throughput.json" in
       output_string oc
         (Cm_json.Printer.to_string_pretty (Cloudmon.Serve_bench.to_json report));
       output_string oc "\n";
       close_out oc;
       print_endline "\nwrote BENCH_throughput.json"
     end);
  (* the per-phase breakdown the timings flag surfaces in Report *)
  let fx = Workloads.make_fixture () in
  let service =
    match
      Cm_cloudsim.Cloud.login fx.Workloads.cloud ~user:"svc" ~password:"svc"
        ~project_id:"myProject"
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  (match
     Cm_monitor.Monitor.create
       (Cm_monitor.Monitor.default_config ~mode:Cm_monitor.Monitor.Oracle
          ~service_token:service ~security ~timings:true
          Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior)
       (Cm_cloudsim.Cloud.handle fx.Workloads.cloud)
   with
   | Error msgs -> List.iter print_endline msgs
   | Ok monitor ->
     let request = Workloads.get_volume_request fx in
     for _ = 1 to 200 do
       ignore (Cm_monitor.Monitor.handle monitor request)
     done;
     let outcomes = Cm_monitor.Monitor.outcomes monitor in
     print_newline ();
     print_string
       (Cm_monitor.Report.render
          (Cm_monitor.Report.summarize outcomes)
          ~coverage:[]))

let section_explore () =
  banner "A4: randomized conformance exploration";
  (match Cm_mutation.Explorer.run ~config:{ Cm_mutation.Explorer.seed = 42; steps = 300 } () with
   | Error msgs -> List.iter print_endline msgs
   | Ok result ->
     print_endline "correct cloud, seed 42, 300 steps:";
     print_string (Cm_mutation.Explorer.render result));
  (match Cm_mutation.Mutant.find "M1-delete-privilege-escalation" with
   | None -> ()
   | Some m ->
     (match
        Cm_mutation.Explorer.run
          ~config:{ Cm_mutation.Explorer.seed = 42; steps = 300 }
          ~faults:m.Cm_mutation.Mutant.faults ()
      with
      | Error msgs -> List.iter print_endline msgs
      | Ok result ->
        Printf.printf
          "\nmutated cloud (M1), same walk: %d violations discovered\n"
          (List.length result.Cm_mutation.Explorer.violations)))

let section_evolution () =
  banner "A5: release regression check (the conclusion's use case)";
  let sample = Cm_uml.Analysis.cinder_sample () in
  let table = Cm_rbac.Security_table.cinder in
  let assignment = Cm_rbac.Security_table.cinder_assignment in
  (* a "new release" that opens DELETE to members and drops the in-use
     guard *)
  let bad_table =
    List.map
      (fun (e : Cm_rbac.Security_table.entry) ->
        if e.meth = Cm_http.Meth.DELETE then
          { e with Cm_rbac.Security_table.roles = [ "admin"; "member" ] }
        else e)
      table
  in
  let bad_machine =
    { Cm_uml.Cinder_model.behavior with
      Cm_uml.Behavior_model.transitions =
        List.map
          (fun (tr : Cm_uml.Behavior_model.transition) ->
            if tr.trigger.meth = Cm_http.Meth.DELETE then
              { tr with guard = None }
            else tr)
          Cm_uml.Cinder_model.behavior.Cm_uml.Behavior_model.transitions
    }
  in
  match
    Cm_contracts.Evolution.compare
      ~old_version:(Cm_uml.Cinder_model.behavior, table, assignment)
      ~new_version:(bad_machine, bad_table, assignment)
      ~sample
  with
  | Error msg -> print_endline msg
  | Ok report -> print_string (Cm_contracts.Evolution.render report)

let section_audit () =
  banner "A6: attack-surface audit (every URI safeguarded?, SI)";
  let fx = Workloads.make_fixture () in
  print_string
    (Cm_monitor.Audit.render (Cm_monitor.Audit.surface fx.Workloads.monitor_oracle))

let section_glance () =
  banner "G1: the Glance-like image service (second worked example)";
  print_string
    (Cm_rbac.Security_table.render ~resources:[ "image" ]
       Cm_rbac.Security_table.glance Cm_rbac.Security_table.cinder_assignment);
  print_newline ();
  (match
     Cm_contracts.Generate.contract_for
       ~security:
         { Cm_contracts.Generate.table = Cm_rbac.Security_table.glance;
           assignment = Cm_rbac.Security_table.cinder_assignment
         }
       Cm_uml.Glance_model.behavior
       { Cm_uml.Behavior_model.meth = Cm_http.Meth.DELETE; resource = "image" }
   with
   | Error msg -> print_endline ("ERROR: " ^ msg)
   | Ok contract -> Fmt.pr "%a@." Cm_contracts.Contract.pp contract);
  (match Cm_uml.Paths.derive Cm_uml.Glance_model.resources with
   | Error msg -> print_endline ("ERROR: " ^ msg)
   | Ok entries ->
     print_endline "\nderived URI table:";
     List.iter
       (fun (e : Cm_uml.Paths.entry) ->
         Printf.printf "  %-12s %-10s %s\n" e.resource
           (if e.is_item then "item" else "collection")
           (Cm_http.Uri_template.to_string e.template))
       entries)

let section_testgen () =
  banner "A2: model-generated test campaign vs hand-written scenario";
  let machine = Cm_uml.Cinder_model.behavior in
  let table = Cm_rbac.Security_table.cinder in
  let assignment = Cm_rbac.Security_table.cinder_assignment in
  let cases = Cm_testgen.Plan.all machine ~table ~assignment in
  Printf.printf
    "generated %d cases (%d positive, %d authorization probes, %d boundary)\n\n"
    (List.length cases)
    (List.length (Cm_testgen.Plan.positive_cases machine ~table ~assignment))
    (List.length (Cm_testgen.Plan.negative_cases machine ~table ~assignment))
    (List.length (Cm_testgen.Plan.boundary_cases machine ~table ~assignment));
  Printf.printf "%-38s %-18s %s\n" "mutant" "generated suite" "hand-written scenario";
  Printf.printf "%s\n" (String.make 84 '-');
  let scenario_kills faults =
    match Cm_mutation.Scenario.setup ~faults () with
    | Error _ -> false
    | Ok ctx ->
      Cm_mutation.Scenario.standard ctx;
      Cm_monitor.Report.violations
        (Cm_monitor.Monitor.outcomes ctx.Cm_mutation.Scenario.monitor)
      <> []
  in
  let generated_kills faults =
    let report =
      Cm_testgen.Execute.run ~table ~machine
        (Cm_testgen.Cinder_driver.driver ~faults ())
        cases
    in
    report.Cm_testgen.Execute.bugs > 0
  in
  let cell b = if b then "killed" else "SURVIVED" in
  Printf.printf "%-38s %-18s %s\n" "(baseline)"
    (cell (generated_kills Cm_cloudsim.Faults.none) = "SURVIVED"
     |> fun clean -> if clean then "clean" else "DIRTY")
    (if scenario_kills Cm_cloudsim.Faults.none then "DIRTY" else "clean");
  List.iter
    (fun m ->
      Printf.printf "%-38s %-18s %s\n" m.Cm_mutation.Mutant.name
        (cell (generated_kills m.Cm_mutation.Mutant.faults))
        (cell (scenario_kills m.Cm_mutation.Mutant.faults)))
    Cm_mutation.Mutant.all;
  print_endline
    "\n(M5 delete-in-use needs the unmodelled attach action: only the\n\
    \ hand-written scenario reaches it -- a measured coverage limit of\n\
    \ purely model-derived tests)"

let section_localize () =
  banner "A3: trace serialization and fault localization";
  match Cm_mutation.Mutant.find "M1-delete-privilege-escalation" with
  | None -> print_endline "mutant missing"
  | Some m ->
    (match Cm_mutation.Scenario.setup ~faults:m.Cm_mutation.Mutant.faults () with
     | Error msgs -> List.iter print_endline msgs
     | Ok ctx ->
       Cm_mutation.Scenario.standard ctx;
       let outcomes =
         Cm_monitor.Monitor.outcomes ctx.Cm_mutation.Scenario.monitor
       in
       let jsonl = Cm_monitor.Trace.to_jsonl outcomes in
       Printf.printf "trace: %d exchanges, %d bytes of JSONL\n"
         (List.length outcomes) (String.length jsonl);
       (match Cm_monitor.Trace.of_jsonl jsonl with
        | Ok decoded ->
          Printf.printf "round-trip: OK (%d exchanges decoded)\n\n"
            (List.length decoded);
          print_string
            (Cm_monitor.Trace.render_localization
               (Cm_monitor.Trace.localize decoded))
        | Error msg -> print_endline ("round-trip FAILED: " ^ msg)))

(* ---------- driver ---------- *)

let sections =
  [ ("table1", section_table1);
    ("listing1", section_listing1);
    ("listing23", section_listing23);
    ("fig2", section_fig2);
    ("fig3", section_fig3);
    ("fig4", section_fig4);
    ("mutants", section_mutants);
    ("overhead", section_overhead);
    ("scaling", section_scaling);
    ("ocl", section_ocl);
    ("ablation", section_ablation);
    ("fastpath", section_fastpath);
    ("resilience", section_resilience);
    ("journal", section_journal);
    ("throughput", section_throughput);
    ("testgen", section_testgen);
    ("localize", section_localize);
    ("glance", section_glance);
    ("explore", section_explore);
    ("evolution", section_evolution);
    ("audit", section_audit)
  ]

let () =
  let names =
    List.filter
      (function
        | "--quick" ->
          quick := true;
          false
        | "--json" ->
          json_output := true;
          false
        | _ -> true)
      (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match names with [] -> List.map fst sections | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some section -> section ()
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat " " (List.map fst sections));
        exit 2)
    requested
