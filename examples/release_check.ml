(* Release regression checking (§VIII: "check whether functional and
   security requirements have been preserved in new releases").

   A "new release" of the Cinder design models is compared against the
   shipped one: the release accidentally opens DELETE to the member role
   and drops the in-use guard.  The checker reports both, flagged as
   security-relevant, before any cloud is deployed.

   Run with: dune exec examples/release_check.exe *)

module C = Cloudmon
module BM = C.Uml.Behavior_model
module ST = C.Rbac.Security_table

let () =
  let sample = C.Uml.Analysis.cinder_sample () in
  let table = ST.cinder in
  let assignment = ST.cinder_assignment in

  print_endline "== release 1 vs release 1 (sanity) ==";
  (match
     C.Contracts.Evolution.compare
       ~old_version:(C.Uml.Cinder_model.behavior, table, assignment)
       ~new_version:(C.Uml.Cinder_model.behavior, table, assignment)
       ~sample
   with
   | Ok report -> print_string (C.Contracts.Evolution.render report)
   | Error msg -> prerr_endline msg);

  print_endline "";
  print_endline "== release 1 vs a careless release 2 ==";
  (* release 2: DELETE opened to members, in-use guard dropped, and a
     brand-new PATCH capability nobody reviewed *)
  let release2_table =
    List.map
      (fun (e : ST.entry) ->
        if e.meth = C.Http.Meth.DELETE then
          { e with ST.roles = [ "admin"; "member" ] }
        else e)
      table
    @ [ ST.entry ~resource:"volume" ~req:"1.5" C.Http.Meth.PATCH [ "admin" ] ]
  in
  let release2_behavior =
    { C.Uml.Cinder_model.behavior with
      BM.transitions =
        List.map
          (fun (tr : BM.transition) ->
            if tr.trigger.meth = C.Http.Meth.DELETE then
              { tr with
                guard =
                  Some (C.Ocl.Ocl_parser.parse_exn "volume.id->size() = 1")
              }
            else tr)
          C.Uml.Cinder_model.behavior.BM.transitions
        @ [ BM.transition
              ~source:C.Uml.Cinder_model.s_not_full
              ~target:C.Uml.Cinder_model.s_not_full
              ~effect:
                (C.Ocl.Ocl_parser.parse_exn
                   "project.volumes->size() = pre(project.volumes->size())")
              ~requirements:[ "1.5" ] C.Http.Meth.PATCH "volume"
          ]
    }
  in
  (match
     C.Contracts.Evolution.compare
       ~old_version:(C.Uml.Cinder_model.behavior, table, assignment)
       ~new_version:(release2_behavior, release2_table, assignment)
       ~sample
   with
   | Error msg -> prerr_endline msg
   | Ok report ->
     print_string (C.Contracts.Evolution.render report);
     print_endline "";
     Printf.printf
       "release gate: %d security-relevant change(s) need review before \
        deploying\n"
       (List.length report.C.Contracts.Evolution.security_relevant);
     if report.C.Contracts.Evolution.security_relevant = [] then exit 1);

  (* The diff only compares against release 1; the static analyzer judges
     release 2 on its own terms.  Dropping the in-use guard also made the
     two not-full DELETE transitions overlap (same trigger, same guard,
     different targets) — nondeterminism the evolution diff cannot see. *)
  print_endline "";
  print_endline "== static analysis of release 2 ==";
  let findings =
    C.Analysis.Rules.analyze
      { C.Analysis.Rules.resources = C.Uml.Cinder_model.resources;
        behavior = release2_behavior;
        security =
          Some
            { C.Contracts.Generate.table = release2_table;
              assignment
            }
      }
  in
  print_string
    (C.Lint.render ~catalogue:C.Analysis.Rules.full_catalogue findings);
  let overlap =
    List.exists (fun (f : C.Lint.finding) -> f.rule = "AN004") findings
  in
  Printf.printf "release gate: guard-overlap nondeterminism %s\n"
    (if overlap then "detected before deployment" else "NOT detected");
  if not overlap then exit 1;

  (* The same severity gate `cmonitor analyze --fail-on warning` applies
     in CI: a release ships only when nothing at or above the threshold
     remains.  Release 2 must trip it. *)
  let blocking = C.Lint.at_least C.Lint.Warning findings in
  Printf.printf "release gate (fail-on warning): %d blocking finding(s)\n"
    (List.length blocking);
  if blocking = [] then exit 1;

  (* Shard-closure proof for the release: every contract's subscription
     map, and which of them stay shard-closed.  The new PATCH capability
     rides the same tenant-keyed /volumes URIs, so sharding stays sound
     — only the identity broadcast (token revocation) crosses shards,
     exactly as in release 1. *)
  print_endline "";
  print_endline "== subscription maps of release 2 ==";
  match
    C.Analysis.Interference.subscriptions
      { C.Analysis.Rules.resources = C.Uml.Cinder_model.resources;
        behavior = release2_behavior;
        security =
          Some
            { C.Contracts.Generate.table = release2_table;
              assignment
            }
      }
  with
  | Error msg ->
    prerr_endline msg;
    exit 1
  | Ok subs ->
    List.iter
      (fun (s : C.Analysis.Interference.subscription) ->
        Printf.printf "%s: %d event(s), %s\n"
          (Fmt.str "%a" BM.pp_trigger s.sub_trigger)
          (List.length s.sub_events)
          (if s.sub_shard_closed then "shard-closed"
           else
             "cross-shard via "
             ^ String.concat ", "
                 (List.map
                    (fun (e : C.Analysis.Effects.event) ->
                      Fmt.str "%a" BM.pp_trigger e.ev_trigger)
                    (C.Analysis.Interference.cross_shard_events s))))
      subs;
    let cross_shard_beyond_identity =
      List.exists
        (fun (s : C.Analysis.Interference.subscription) ->
          List.exists
            (fun (e : C.Analysis.Effects.event) -> not e.ev_identity)
            (C.Analysis.Interference.cross_shard_events s))
        subs
    in
    Printf.printf "release gate: tenant sharding %s\n"
      (if cross_shard_beyond_identity then
         "UNSOUND — a model event couples shards"
       else "sound (identity broadcast only)");
    if cross_shard_beyond_identity then exit 1
