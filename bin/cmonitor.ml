(* Cloud-monitor driver: runs the simulated private cloud with the
   generated monitor in front of it and executes validation workloads.

   Subcommands:
   - `cmonitor validate`   : the paper's mutation experiment (§VI-D)
   - `cmonitor lifecycle`  : the standard workload on a correct cloud,
                             with the monitoring report
   - `cmonitor contracts`  : print the generated contracts (Listing 1)
   - `cmonitor table1`     : print the security-requirements table *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let validate paper_only =
  let mutants =
    if paper_only then Cloudmon.Mutation.Mutant.paper_mutants
    else Cloudmon.Mutation.Mutant.all
  in
  match Cloudmon.validate_cloud ~mutants () with
  | Error msgs ->
    List.iter prerr_endline msgs;
    1
  | Ok results ->
    print_string (Cloudmon.Mutation.Campaign.kill_matrix results);
    if Cloudmon.Mutation.Campaign.all_killed results then begin
      print_endline "";
      print_endline "all mutants killed; baseline clean";
      0
    end
    else 1

let lifecycle verbose mode_name =
  setup_logs verbose;
  let mode =
    match mode_name with
    | "enforce" -> Cloudmon.Monitor.Enforce
    | _ -> Cloudmon.Monitor.Oracle
  in
  match Cloudmon.Mutation.Scenario.setup ~mode () with
  | Error msgs ->
    List.iter prerr_endline msgs;
    1
  | Ok ctx ->
    Cloudmon.Mutation.Scenario.standard ctx;
    let outcomes = Cloudmon.Monitor.outcomes ctx.Cloudmon.Mutation.Scenario.monitor in
    List.iter (fun o -> Fmt.pr "%a@." Cloudmon.Outcome.pp o) outcomes;
    print_endline "";
    print_string
      (Cloudmon.Report.render
         (Cloudmon.Report.summarize outcomes)
         ~coverage:
           (Cloudmon.Monitor.coverage ctx.Cloudmon.Mutation.Scenario.monitor));
    0

let contracts () =
  match
    Cloudmon.Contracts.Generate.all ~security:Cloudmon.cinder_security
      Cloudmon.Uml.Cinder_model.behavior
  with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok cs ->
    List.iter (fun c -> Fmt.pr "%a@.@." Cloudmon.Contracts.Contract.pp c) cs;
    0

let testgen () =
  let machine = Cloudmon.Uml.Cinder_model.behavior in
  let table = Cloudmon.Rbac.Security_table.cinder in
  let assignment = Cloudmon.Rbac.Security_table.cinder_assignment in
  let cases = Cloudmon.Testgen.Plan.all machine ~table ~assignment in
  Printf.printf "generated %d cases from the Cinder models\n\n"
    (List.length cases);
  let report =
    Cloudmon.Testgen.Execute.run ~table ~machine
      (Cloudmon.Testgen.Cinder_driver.driver ())
      cases
  in
  print_string (Cloudmon.Testgen.Execute.render report);
  if report.Cloudmon.Testgen.Execute.bugs = 0 then 0 else 1

let explore seed steps =
  match
    Cloudmon.Mutation.Explorer.run
      ~config:{ Cloudmon.Mutation.Explorer.seed; steps } ()
  with
  | Error msgs ->
    List.iter prerr_endline msgs;
    1
  | Ok result ->
    print_string (Cloudmon.Mutation.Explorer.render result);
    if result.Cloudmon.Mutation.Explorer.violations = [] then 0 else 1

let audit () =
  match Cloudmon.Mutation.Scenario.setup () with
  | Error msgs ->
    List.iter prerr_endline msgs;
    1
  | Ok ctx ->
    print_string
      (Cm_monitor.Audit.render
         (Cm_monitor.Audit.surface ctx.Cloudmon.Mutation.Scenario.monitor));
    if Cm_monitor.Audit.gaps ctx.Cloudmon.Mutation.Scenario.monitor = []
    then 0
    else 1

let table1 () =
  print_string
    (Cloudmon.Rbac.Security_table.render ~resources:[ "volume" ]
       Cloudmon.Rbac.Security_table.cinder
       Cloudmon.Rbac.Security_table.cinder_assignment);
  0

(* ---- analyze: design-time contract verification ---- *)

let cinder_input =
  ( "cinder",
    { Cloudmon.Analysis.Rules.resources = Cloudmon.Uml.Cinder_model.resources;
      behavior = Cloudmon.Uml.Cinder_model.behavior;
      security = Some Cloudmon.cinder_security
    } )

let glance_input =
  ( "glance",
    { Cloudmon.Analysis.Rules.resources = Cloudmon.Uml.Glance_model.resources;
      behavior = Cloudmon.Uml.Glance_model.behavior;
      security = Some Cloudmon.glance_security
    } )

let snapshot_input =
  ( "snapshot",
    { Cloudmon.Analysis.Rules.resources = Cloudmon.Uml.Snapshot_model.resources;
      behavior = Cloudmon.Uml.Snapshot_model.behavior;
      security = Some Cloudmon.snapshot_security
    } )

let cross_input =
  ( "cross",
    { Cloudmon.Analysis.Rules.resources = Cloudmon.Uml.Cross_model.resources;
      behavior = Cloudmon.Uml.Cross_model.behavior;
      security = Some Cloudmon.cross_security
    } )

let analysis_inputs = function
  | "cinder" -> Ok [ cinder_input ]
  | "glance" -> Ok [ glance_input ]
  | "snapshot" -> Ok [ snapshot_input ]
  | "cross" -> Ok [ cross_input ]
  | "all" -> Ok [ cinder_input; glance_input; snapshot_input; cross_input ]
  | other -> Error (Printf.sprintf "unknown model %S" other)

let analyze_selftest () =
  let results = Cloudmon.Analysis.Defects.check_all () in
  List.iter
    (fun (name, r) ->
      match r with
      | Ok () -> Printf.printf "pass  %s\n" name
      | Error msg -> Printf.printf "FAIL  %s: %s\n" name msg)
    results;
  let failed = List.filter (fun (_, r) -> Result.is_error r) results in
  Printf.printf "%d/%d seeded defects caught by their expected rule\n"
    (List.length results - List.length failed)
    (List.length results);
  if failed = [] then 0 else 1

let severity_of_string = function
  | "error" -> Ok Cloudmon.Lint.Error
  | "warning" -> Ok Cloudmon.Lint.Warning
  | "info" -> Ok Cloudmon.Lint.Info
  | other -> Error (Printf.sprintf "unknown severity %S" other)

(* The machine-facing dumps: one stable-JSON object keyed by model
   label, so `--model cinder --subscriptions > golden.json` commits a
   byte-stable artefact (see test/golden/). *)
let analyze_dump inputs ~subscriptions ~monitorability =
  let section name per_input =
    if not name then Ok []
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (label, input) :: rest -> (
          match per_input input with
          | Error msg -> Error (Printf.sprintf "%s: %s" label msg)
          | Ok json -> go ((label, json) :: acc) rest)
      in
      go [] inputs
  in
  let subs =
    section subscriptions (fun input ->
        Result.map Cloudmon.Analysis.Interference.to_json
          (Cloudmon.Analysis.Interference.subscriptions input))
  and monos =
    section monitorability (fun input ->
        Result.map
          (Cloudmon.Analysis.Monitorability.to_json
             ~visibility:Cloudmon.Analysis.Monitorability.default_visibility)
          (Cloudmon.Analysis.Monitorability.reports input))
  in
  match (subs, monos) with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    2
  | Ok subs, Ok monos ->
    let fields =
      (if subs = [] then []
       else [ ("subscriptions", Cloudmon.Json.Obj subs) ])
      @
      if monos = [] then []
      else [ ("monitorability", Cloudmon.Json.Obj monos) ]
    in
    Fmt.pr "%a@." Cloudmon.Json.pp (Cloudmon.Json.Obj fields);
    0

let analyze model format crosscheck_cases seed selftest subscriptions
    monitorability fail_on =
  if selftest then analyze_selftest ()
  else
    match (analysis_inputs model, severity_of_string fail_on) with
    | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      2
    | Ok inputs, Ok threshold ->
      if subscriptions || monitorability then
        analyze_dump inputs ~subscriptions ~monitorability
      else
        let failures =
          List.filter_map
            (fun (label, input) ->
              let findings = Cloudmon.Analysis.Rules.analyze input in
              (match format with
               | "json" ->
                 Fmt.pr "%a@." Cloudmon.Json.pp (Cloudmon.Lint.to_json findings)
               | _ ->
                 Printf.printf "== %s ==\n" label;
                 print_string
                   (Cloudmon.Lint.render
                      ~catalogue:Cloudmon.Analysis.Rules.full_catalogue findings));
              let static_bad =
                Cloudmon.Lint.at_least threshold findings <> []
              in
              let dynamic_bad =
                crosscheck_cases > 0
                &&
                let verdict_bad =
                  match
                    Cloudmon.Analysis.Crosscheck.run ~cases:crosscheck_cases
                      ~seed input
                  with
                  | Error msg ->
                    Printf.printf "cross-check failed to run: %s\n" msg;
                    true
                  | Ok r ->
                    Fmt.pr "cross-check %a@."
                      Cloudmon.Analysis.Crosscheck.pp_result r;
                    List.iter (Printf.printf "  violation: %s\n") r.violations;
                    not (Cloudmon.Analysis.Crosscheck.ok r)
                and subscription_bad =
                  match
                    Cloudmon.Analysis.Crosscheck.run_subscriptions
                      ~cases:crosscheck_cases ~seed input
                  with
                  | Error msg ->
                    Printf.printf "subscription cross-check failed to run: %s\n"
                      msg;
                    true
                  | Ok r ->
                    Fmt.pr "subscription cross-check %a@."
                      Cloudmon.Analysis.Crosscheck.pp_subscription_result r;
                    List.iter
                      (Printf.printf "  violation: %s\n")
                      r.sub_violations;
                    not (Cloudmon.Analysis.Crosscheck.sub_ok r)
                in
                verdict_bad || subscription_bad
              in
              if static_bad || dynamic_bad then Some label else None)
            inputs
        in
        if failures = [] then 0 else 1

let paper_flag =
  let doc = "Only the three mutants of the paper." in
  Arg.(value & flag & info [ "paper-only" ] ~doc)

let mode_arg =
  let doc = "Monitor mode: oracle (default) or enforce." in
  Arg.(value & opt string "oracle" & info [ "mode" ] ~docv:"MODE" ~doc)

let seed_arg =
  let doc = "PRNG seed for the random walk." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let steps_arg =
  let doc = "Number of random steps." in
  Arg.(value & opt int 300 & info [ "steps" ] ~docv:"N" ~doc)

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:"attack-surface audit: is every URI x method safeguarded?")
    Term.(const audit $ const ())

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"random-walk conformance exploration of the simulated cloud")
    Term.(const explore $ seed_arg $ steps_arg)

let testgen_cmd =
  Cmd.v
    (Cmd.info "testgen"
       ~doc:"generate a test campaign from the models and run it")
    Term.(const testgen $ const ())

let validate_cmd =
  Cmd.v
    (Cmd.info "validate" ~doc:"run the mutation experiment (§VI-D)")
    Term.(const validate $ paper_flag)

let analyze_model_arg =
  let doc = "Model set to analyze: cinder, glance, snapshot, cross, or all." in
  Arg.(value & opt string "all" & info [ "model" ] ~docv:"MODEL" ~doc)

let analyze_format_arg =
  let doc = "Report format: text (default) or json." in
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)

let analyze_crosscheck_arg =
  let doc =
    "Also fuzz N random observations per model and fail if any static \
     verdict (dead/vacuous) is contradicted dynamically, or if an event \
     outside a contract's subscription map ever changes its verdict \
     (0 = skip)."
  in
  Arg.(value & opt int 0 & info [ "cross-check" ] ~docv:"N" ~doc)

let analyze_subscriptions_flag =
  let doc =
    "Dump the per-contract event-subscription maps (with shard-closure \
     verdicts) as stable JSON keyed by model label, instead of the lint \
     report."
  in
  Arg.(value & flag & info [ "subscriptions" ] ~doc)

let analyze_monitorability_flag =
  let doc =
    "Dump the per-contract monitorability classification (fully / \
     partially / non-monitorable under the shipped observer) as stable \
     JSON keyed by model label, instead of the lint report."
  in
  Arg.(value & flag & info [ "monitorability" ] ~doc)

let analyze_fail_on_arg =
  let doc =
    "Exit non-zero when any finding at or above this severity remains: \
     error (default), warning, or info."
  in
  Arg.(value & opt string "error" & info [ "fail-on" ] ~docv:"SEVERITY" ~doc)

let analyze_selftest_flag =
  let doc =
    "Run the seeded defect corpus instead: every deliberately broken model \
     must be caught by exactly its expected rule."
  in
  Arg.(value & flag & info [ "selftest" ] ~doc)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "design-time contract verification: vacuity/dead-code analysis, \
          RBAC coverage audit and footprint blind spots (exit 1 on Error \
          findings)")
    Term.(
      const analyze $ analyze_model_arg $ analyze_format_arg
      $ analyze_crosscheck_arg $ seed_arg $ analyze_selftest_flag
      $ analyze_subscriptions_flag $ analyze_monitorability_flag
      $ analyze_fail_on_arg)

let verbose_flag =
  let doc = "Stream every monitored exchange to stderr (Logs reporter)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let lifecycle_cmd =
  Cmd.v
    (Cmd.info "lifecycle" ~doc:"run the standard workload on a correct cloud")
    Term.(const lifecycle $ verbose_flag $ mode_arg)

let contracts_cmd =
  Cmd.v
    (Cmd.info "contracts" ~doc:"print the generated contracts (Listing 1)")
    Term.(const contracts $ const ())

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"print the security-requirements table (Table I)")
    Term.(const table1 $ const ())

(* ---- fuzz: property-based differential conformance ---- *)

let fuzz cases seed shrink oracle_name max_size corpus =
  let module R = Cm_proptest.Runner in
  let module O = Cm_proptest.Oracle in
  let module C = Cm_proptest.Corpus in
  let oracles =
    if oracle_name = "all" then Some O.all
    else
      match O.find oracle_name with
      | Some o -> Some [ o ]
      | None ->
        Printf.eprintf "unknown oracle %S (expected all%s)\n" oracle_name
          (String.concat ""
             (List.map (fun (o : O.t) -> "|" ^ o.name) O.all));
        None
  in
  match oracles with
  | None -> 2
  | Some oracles ->
    let corpus_ok =
      match corpus with
      | None -> true
      | Some path ->
        (match C.load path with
         | Error msg ->
           Printf.eprintf "corpus %s: %s\n" path msg;
           false
         | Ok entries ->
           let still_failing = R.replay_corpus O.all entries in
           Printf.printf "corpus: %d entries replayed, %d failing\n"
             (List.length entries)
             (List.length still_failing);
           List.iter
             (fun ((e : C.entry), detail) ->
               Printf.printf "CORPUS FAIL %s case %d: %s\n" e.oracle e.index
                 detail)
             still_failing;
           still_failing = [])
    in
    let report = R.run ~oracles ~shrink ~max_size ~seed ~cases () in
    print_string (R.render report);
    (match corpus with
     | Some path when R.failed report ->
       List.iter (fun (f : O.failure) -> C.append path f.entry) report.failures;
       Printf.printf "recorded %d failing entries in %s\n"
         (List.length report.failures) path
     | _ -> ());
    if R.failed report || not corpus_ok then 1 else 0

let cases_arg =
  let doc = "Number of fuzz cases to run across all oracles." in
  Arg.(value & opt int 2000 & info [ "cases" ] ~docv:"N" ~doc)

let shrink_arg =
  let doc = "Greedily shrink counterexamples before reporting." in
  Arg.(value & opt bool true & info [ "shrink" ] ~docv:"BOOL" ~doc)

let oracle_arg =
  let doc =
    "Which oracle to drive: all, engine, rbac, codegen, monitor, \
     incremental, chaos, workload or journal."
  in
  Arg.(value & opt string "all" & info [ "oracle" ] ~docv:"NAME" ~doc)

let max_size_arg =
  let doc = "Generator size budget; case sizes cycle through 2..2+K-1." in
  Arg.(value & opt int 10 & info [ "max-size" ] ~docv:"K" ~doc)

let corpus_arg =
  let doc =
    "Corpus file: existing entries are replayed before the campaign and new \
     failures are appended to it."
  in
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"FILE" ~doc)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "deterministic property-based differential fuzzing of the OCL \
          engines, RBAC guards, code generators and monitor verdicts")
    Term.(
      const fuzz $ cases_arg $ seed_arg $ shrink_arg $ oracle_arg
      $ max_size_arg $ corpus_arg)

(* ---- chaos: the mutation campaign under unreliable transport ---- *)

let chaos list_flag cases seed profile_name json_path =
  let module Chaos = Cm_cloudsim.Chaos in
  let module Campaign = Cloudmon.Mutation.Campaign in
  if list_flag then begin
    List.iter
      (fun (p : Chaos.profile) ->
        Printf.printf "%-16s %s\n" p.Chaos.name p.Chaos.description)
      Chaos.profiles;
    0
  end
  else
  let profiles =
    if profile_name = "all" then Chaos.profiles
    else
      match Chaos.find_profile profile_name with
      | Some p -> [ p ]
      | None -> []
  in
  if profiles = [] then begin
    Printf.eprintf "unknown chaos profile %S (expected all%s)\n" profile_name
      (String.concat ""
         (List.map (fun (p : Chaos.profile) -> "|" ^ p.Chaos.name) Chaos.profiles));
    2
  end
  else begin
    let mutants = Cloudmon.Mutation.Mutant.all in
    let rec matrices acc = function
      | [] -> Ok (List.rev acc)
      | profile :: rest ->
        (match Campaign.run_chaos ~seed profile mutants with
         | Ok runs ->
           Printf.printf "=== profile %s: %s ===\n" profile.Chaos.name
             profile.Chaos.description;
           print_string (Campaign.chaos_matrix runs);
           print_newline ();
           matrices (runs :: acc) rest
         | Error msgs ->
           List.iter prerr_endline msgs;
           Error ())
    in
    match matrices [] profiles with
    | Error () -> 1
    | Ok all_runs ->
      let runs = List.concat all_runs in
      let matrix_ok = Campaign.chaos_ok runs in
      (match json_path with
       | None -> ()
       | Some path ->
         let oc = open_out path in
         output_string oc
           (Cm_json.Printer.to_string_pretty (Campaign.chaos_to_json runs));
         output_string oc "\n";
         close_out oc;
         Printf.printf "wrote %s\n" path);
      (* the randomized half: bounded random profiles x random traces *)
      let module R = Cm_proptest.Runner in
      let report =
        R.run
          ~oracles:[ Cm_proptest.Oracle.chaos ]
          ~shrink:false ~seed ~cases ()
      in
      print_string (R.render report);
      Printf.printf "\ncampaign: %s; fuzz: %s\n"
        (if matrix_ok then "no flips, all mutants killed" else "INTEGRITY FAILURE")
        (if R.failed report then "FAILED" else "passed");
      if matrix_ok && not (R.failed report) then 0 else 1
  end

let chaos_list_arg =
  let doc = "List the named chaos profiles with their descriptions." in
  Arg.(value & flag & info [ "list" ] ~doc)

let chaos_cases_arg =
  let doc = "Number of randomized chaos cases after the profile matrix." in
  Arg.(value & opt int 500 & info [ "cases" ] ~docv:"N" ~doc)

let chaos_profile_arg =
  let doc = "Chaos profile to run: all (default) or a named profile." in
  Arg.(value & opt string "all" & info [ "profile" ] ~docv:"NAME" ~doc)

let chaos_json_arg =
  let doc = "Write the machine-readable integrity report to this file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "mutation campaign under unreliable transport: every mutant must \
          stay killed and no definite verdict may flip")
    Term.(
      const chaos $ chaos_list_arg $ chaos_cases_arg $ seed_arg
      $ chaos_profile_arg $ chaos_json_arg)

(* ---- replay: journal -> verdict stream, bit-identical to live ---- *)

let replay mix_name seed =
  let module W = Cloudmon.Workload in
  let module Scenario = Cloudmon.Mutation.Scenario in
  let module Jmonitor = Cm_journal.Jmonitor in
  let module Runtime = Cloudmon.Contracts.Runtime in
  let mixes =
    if mix_name = "all" then W.mixes
    else match W.find mix_name with Some m -> [ m ] | None -> []
  in
  if mixes = [] then begin
    Printf.eprintf "unknown mix %S (try cmonitor workload --list)\n" mix_name;
    2
  end
  else begin
    let failures = ref 0 in
    List.iter
      (fun (m : W.mix) ->
        let trace = m.W.compile ~seed in
        (* Record once live (default engine), then replay the journal on
           a fresh cloud under both evaluation modes: all three verdict
           streams must be bit-identical. *)
        match Scenario.setup_journaled ~cross:true () with
        | Error msgs ->
          List.iter prerr_endline msgs;
          incr failures
        | Ok jctx ->
          ignore (Scenario.jrun_trace jctx trace);
          Jmonitor.sync jctx.Scenario.jmon;
          let events = Scenario.journal_events jctx in
          let live = Jmonitor.journaled_verdict_lines events in
          List.iter
            (fun (eval_name, eval) ->
              match Scenario.replay_journal ~cross:true ~eval events with
              | Error msgs ->
                List.iter prerr_endline msgs;
                incr failures
              | Ok replayed ->
                let ok = replayed = live in
                Printf.printf "%-12s %-12s %4d verdicts  %s\n" m.W.mix_name
                  eval_name (List.length live)
                  (if ok then "bit-identical" else "DIVERGED");
                if not ok then begin
                  incr failures;
                  List.iteri
                    (fun i (a, b) ->
                      if not (String.equal a b) then
                        Printf.printf "  step %d:\n    live:   %s\n    replay: %s\n"
                          i a b)
                    (List.combine live
                       (List.filteri
                          (fun i _ -> i < List.length live)
                          replayed))
                end)
            [ ("full", Runtime.Full_eval);
              ("incremental", Runtime.Incremental)
            ])
      mixes;
    if !failures = 0 then 0 else 1
  end

let replay_mix_arg =
  let doc = "Workload mix to record and replay: all (default) or a name." in
  Arg.(value & opt string "all" & info [ "mix" ] ~docv:"NAME" ~doc)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "record a workload through the journaled monitor, replay the \
          journal against a fresh cloud under both evaluation modes, and \
          check the verdict streams are bit-identical")
    Term.(const replay $ replay_mix_arg $ seed_arg)

(* ---- recover: crash-point injection and exactly-once recovery ---- *)

let recover list_sites site nth matrix domains seed json_path =
  let module Campaign = Cloudmon.Mutation.Campaign in
  let module Mutant = Cloudmon.Mutation.Mutant in
  let module Scenario = Cloudmon.Mutation.Scenario in
  let module Jmonitor = Cm_journal.Jmonitor in
  let module Chaos = Cm_cloudsim.Chaos in
  if list_sites then begin
    List.iter print_endline Campaign.crash_sites;
    0
  end
  else if matrix then begin
    (* the full kill matrix: every chaos profile (plus fault-free) x
       every injection site x (baseline + all extended mutants) *)
    let profiles = None :: List.map (fun p -> Some p) Chaos.profiles in
    match
      Campaign.run_crash_matrix ~seed ~domains ~nth profiles
        Mutant.all_extended
    with
    | Error msgs ->
      List.iter prerr_endline msgs;
      1
    | Ok runs ->
      print_string (Campaign.crash_matrix runs);
      (match json_path with
       | None -> ()
       | Some path ->
         let oc = open_out path in
         output_string oc
           (Cm_json.Printer.to_string_pretty (Campaign.crash_to_json runs));
         output_string oc "\n";
         close_out oc;
         Printf.printf "wrote %s\n" path);
      let fired = List.length (List.filter (fun r -> r.Campaign.xr_fired) runs) in
      Printf.printf
        "\n%d cells (%d crashes fired): %s\n" (List.length runs) fired
        (if Campaign.crash_ok runs then
           "exactly-once verdicts, all mutants killed"
         else "CRASH-RECOVERY FAILURE");
      if Campaign.crash_ok runs then 0 else 1
  end
  else if not (List.mem site Campaign.crash_sites) then begin
    Printf.eprintf "unknown site %S (try --list-sites)\n" site;
    2
  end
  else begin
    (* single demonstration cell on the cross workload, no mutant *)
    match Campaign.run_crash_one ~seed ~index:0 ~site ~nth None None with
    | Error msgs ->
      List.iter prerr_endline msgs;
      1
    | Ok r ->
      Printf.printf
        "site %s (occurrence %d): crash %s\n" site nth
        (if r.Campaign.xr_fired then "fired" else "NOT REACHED");
      Printf.printf
        "recovery: %d verdicts, %d resumed in-flight, %d re-handled, %dB \
         torn tail discarded\n"
        r.Campaign.xr_verdicts r.Campaign.xr_resumed r.Campaign.xr_rehandled
        r.Campaign.xr_discarded_bytes;
      let clean =
        r.Campaign.xr_duplicates = [] && r.Campaign.xr_lost = []
        && r.Campaign.xr_mismatches = [] && not r.Campaign.xr_killed
      in
      Printf.printf "audit: %s\n"
        (if clean then
           "exactly-once, verdicts identical to the crash-free run"
         else "FAILURE (duplicate/lost/flipped verdicts)");
      if clean then 0 else 1
  end

let rec_list_sites_arg =
  let doc = "List the crash injection sites." in
  Arg.(value & flag & info [ "list-sites" ] ~doc)

let rec_site_arg =
  let doc = "Crash site to arm (see --list-sites)." in
  Arg.(
    value
    & opt string "monitor.after-forward"
    & info [ "site" ] ~docv:"SITE" ~doc)

let rec_crash_at_arg =
  let doc = "Crash at the Nth occurrence of the site." in
  Arg.(value & opt int 3 & info [ "crash-at" ] ~docv:"N" ~doc)

let rec_matrix_arg =
  let doc =
    "Run the full crash kill matrix: every chaos profile x injection site \
     x (baseline + extended mutant catalog)."
  in
  Arg.(value & flag & info [ "matrix" ] ~doc)

let rec_domains_arg =
  let doc = "With --matrix: fan matrix cells over N domains." in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let rec_json_arg =
  let doc = "With --matrix: write the machine-readable matrix to this file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "crash the journaled monitor at a deterministic injection point, \
          tear the journal tail, recover, and audit exactly-once verdicts")
    Term.(
      const recover $ rec_list_sites_arg $ rec_site_arg $ rec_crash_at_arg
      $ rec_matrix_arg $ rec_domains_arg $ seed_arg $ rec_json_arg)

(* ---- serve-bench: sharded multicore throughput ---- *)

(* "--domains 1,2,4" (explicit list) and the repeatable
   "--domains 1 --domains 2" spelling both work; entries merge. *)
let parse_domains_list specs =
  List.concat_map
    (fun s ->
      String.split_on_char ',' s
      |> List.filter_map (fun part ->
             match int_of_string_opt (String.trim part) with
             | Some d -> Some (max 1 d)
             | None ->
               Printf.eprintf
                 "serve-bench: ignoring non-numeric domain count %S\n" part;
               None))
    specs
  |> List.sort_uniq compare

let serve_bench projects requests seed domains rate gates min_speedup json_path
    baseline_path max_regression resilience_baseline =
  let module SB = Cloudmon.Serve_bench in
  let spec =
    { SB.projects; requests_per_project = requests; seed }
  in
  let domains_list =
    match parse_domains_list domains with [] -> [ 1; 2; 4 ] | ds -> ds
  in
  match SB.run ~spec ~domains_list ?rate ~min_speedup () with
  | Error msgs ->
    List.iter prerr_endline msgs;
    1
  | Ok report ->
    print_string (SB.render report);
    (* Gates run before the JSON is written so relabeled rows
       (gate_failed) land in the emitted document. *)
    let contention_code =
      match SB.check_contention report with
      | Ok () ->
        print_endline
          "contention gate passed: 0 lock acquisitions per monitored GET";
        0
      | Error msg ->
        prerr_endline ("serve-bench: " ^ msg);
        if gates then 1 else 0
    in
    let speedup_code =
      match SB.check_speedup report with
      | Ok msg ->
        print_endline msg;
        0
      | Error msg ->
        prerr_endline ("serve-bench: " ^ msg);
        if gates then 1 else 0
    in
    (match json_path with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc (Cm_json.Printer.to_string_pretty (SB.to_json report));
       output_string oc "\n";
       close_out oc;
       Printf.printf "wrote %s\n" path);
    if not report.SB.rp_verdicts_consistent then begin
      prerr_endline "serve-bench: verdicts diverged across domain counts";
      1
    end
    else begin
      let read_json path =
        let text =
          let ic = open_in path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        match Cm_json.Parser.parse text with
        | Error e ->
          Printf.eprintf "serve-bench: cannot parse %s: %s\n" path
            (Format.asprintf "%a" Cm_json.Parser.pp_error e);
          None
        | Ok json -> Some json
      in
      let fastpath_code =
        match baseline_path with
        | None -> 0
        | Some path ->
          (match read_json path with
           | None -> 2
           | Some baseline ->
             (match
                SB.check_against_baseline report ~baseline
                  ~max_regression_pct:max_regression
              with
              | Ok () ->
                Printf.printf
                  "baseline check passed (within %.0f%% of %s)\n"
                  max_regression path;
                0
              | Error msg ->
                prerr_endline ("serve-bench: " ^ msg);
                1))
      in
      let resilience_code =
        match resilience_baseline with
        | None -> 0
        | Some path ->
          (match read_json path with
           | None -> 2
           | Some baseline ->
             (match SB.run_resilience_overhead ~spec () with
              | Error msgs ->
                List.iter prerr_endline msgs;
                1
              | Ok (off_ns, on_ns, overhead) ->
                Printf.printf
                  "resilience overhead: %.0f -> %.0f ns/request (%.2f%%)\n"
                  off_ns on_ns overhead;
                (match
                   SB.check_resilience_baseline ~overhead_percent:overhead
                     ~baseline ~max_overhead_pct:10.
                 with
                 | Ok base ->
                   Printf.printf
                     "resilience gate passed (%.2f%% <= 10%% ceiling; \
                      committed baseline %.2f%%)\n"
                     overhead base;
                   0
                 | Error msg ->
                   prerr_endline ("serve-bench: " ^ msg);
                   1)))
      in
      max (max fastpath_code resilience_code)
        (max contention_code speedup_code)
    end

let sb_projects_arg =
  let doc = "Number of tenant projects (also the shard count)." in
  Arg.(value & opt int 8 & info [ "projects" ] ~docv:"N" ~doc)

let sb_requests_arg =
  let doc = "Requests per project in the replayed workload." in
  Arg.(value & opt int 50 & info [ "requests" ] ~docv:"N" ~doc)

let sb_domains_arg =
  let doc =
    "Domain counts to measure, as an explicit comma-separated list \
     (e.g. --domains 1,2,4); also repeatable.  Default 1, 2 and 4."
  in
  Arg.(value & opt_all string [] & info [ "domains" ] ~docv:"LIST" ~doc)

let sb_gates_arg =
  let doc =
    "Make the contention and speedup gates fatal: fail if the monitored \
     GET path acquires any instrumented lock, and — only when the host \
     has >= 2 hardware domains — fail if the best valid multi-domain \
     speedup is below the --min-speedup floor.  Both gate results are \
     always measured and recorded in the JSON report; this flag turns \
     them into exit codes."
  in
  Arg.(value & flag & info [ "gates" ] ~doc)

let sb_min_speedup_arg =
  let doc =
    "Speedup floor for the conditional scaling gate (2+ domains vs 1)."
  in
  Arg.(value & opt float 1.6 & info [ "min-speedup" ] ~docv:"X" ~doc)

let sb_rate_arg =
  let doc =
    "Open-loop arrival rate in requests/second for the latency \
     measurement (default: self-calibrated to ~70% of the closed-loop \
     capacity)."
  in
  Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"REQ_PER_S" ~doc)

let sb_json_arg =
  let doc = "Write the throughput report to this file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let sb_baseline_arg =
  let doc =
    "Fail if the single-domain handle cost regresses against the \
     fastpath/cinder-handle-compiled entry of this BENCH_fastpath.json."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let sb_max_regression_arg =
  let doc = "Allowed handle-cost regression over the baseline, percent." in
  Arg.(value & opt float 15. & info [ "max-regression" ] ~docv:"PCT" ~doc)

let sb_resilience_baseline_arg =
  let doc =
    "Measure the resilience layer's serve overhead and fail if it exceeds \
     the 10% ceiling; the BENCH_resilience.json file anchors the drift \
     report."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "resilience-baseline" ] ~docv:"FILE" ~doc)

(* ---- workload: the traffic-mix DSL ---- *)

let workload list_flag mix_name seed trace_flag fuzz_cases kill_flag eval_name
    domains chaos_flag =
  let module W = Cloudmon.Workload in
  let module Mutant = Cloudmon.Mutation.Mutant in
  let module Campaign = Cloudmon.Mutation.Campaign in
  let module Chaos = Cm_cloudsim.Chaos in
  let failures = ref 0 in
  let ran = ref false in
  let list_mixes () =
    List.iter
      (fun (m : W.mix) ->
        let trace = m.W.compile ~seed in
        Printf.printf "%-12s %4d steps  %s  %s\n" m.W.mix_name
          (List.length trace) (W.fingerprint trace) m.W.description)
      W.mixes
  in
  if list_flag then begin
    ran := true;
    list_mixes ()
  end;
  (match mix_name with
   | None -> ()
   | Some name ->
     ran := true;
     (match W.find name with
      | None ->
        Printf.eprintf "unknown mix %S (try --list)\n" name;
        incr failures
      | Some m ->
        let trace = m.W.compile ~seed in
        Printf.printf "mix %s, seed %d: %d steps, fingerprint %s\n"
          m.W.mix_name seed (List.length trace) (W.fingerprint trace);
        if trace_flag then print_string (W.render trace)));
  if fuzz_cases > 0 then begin
    ran := true;
    (* the determinism contract, checked the hard way: every case
       compiles its (mix, seed) twice and the renderings must be
       bit-identical; a second pass in reverse order catches hidden
       global state *)
    let n_mixes = List.length W.mixes in
    let renders =
      Array.init fuzz_cases (fun case ->
          let m = List.nth W.mixes (case mod n_mixes) in
          let a = W.render (m.W.compile ~seed:(seed + case)) in
          let b = W.render (m.W.compile ~seed:(seed + case)) in
          if not (String.equal a b) then begin
            Printf.eprintf "MISMATCH: %s seed %d recompiled differently\n"
              m.W.mix_name (seed + case);
            incr failures
          end;
          a)
    in
    for case = fuzz_cases - 1 downto 0 do
      let m = List.nth W.mixes (case mod n_mixes) in
      if
        not
          (String.equal renders.(case)
             (W.render (m.W.compile ~seed:(seed + case))))
      then begin
        Printf.eprintf "MISMATCH: %s seed %d is order-dependent\n" m.W.mix_name
          (seed + case);
        incr failures
      end
    done;
    Printf.printf "workload fuzz: %d cases, %s\n" fuzz_cases
      (if !failures = 0 then "all traces bit-identical" else "MISMATCHES")
  end;
  if kill_flag then begin
    ran := true;
    let evals =
      match eval_name with
      | "full" -> [ Cloudmon.Contracts.Runtime.Full_eval ]
      | "incremental" -> [ Cloudmon.Contracts.Runtime.Incremental ]
      | _ ->
        [ Cloudmon.Contracts.Runtime.Full_eval;
          Cloudmon.Contracts.Runtime.Incremental
        ]
    in
    List.iter
      (fun eval ->
        Printf.printf "=== cross kill matrix (%s, %d domains) ===\n"
          (match eval with
           | Cloudmon.Contracts.Runtime.Full_eval -> "full evaluation"
           | Cloudmon.Contracts.Runtime.Incremental -> "incremental")
          domains;
        match Campaign.run_cross ~domains ~eval Mutant.all_extended with
        | Error msgs ->
          List.iter prerr_endline msgs;
          incr failures
        | Ok results ->
          print_string (Campaign.kill_matrix results);
          print_newline ();
          if not (Campaign.all_killed results) then incr failures)
      evals
  end;
  if chaos_flag then begin
    ran := true;
    List.iter
      (fun (profile : Chaos.profile) ->
        Printf.printf "=== cross chaos: %s ===\n" profile.Chaos.name;
        match Campaign.run_chaos_cross ~seed profile Mutant.cross_mutants with
        | Error msgs ->
          List.iter prerr_endline msgs;
          incr failures
        | Ok runs ->
          print_string (Campaign.chaos_matrix runs);
          print_newline ();
          if not (Campaign.chaos_ok runs) then incr failures)
      Chaos.profiles
  end;
  if not !ran then list_mixes ();
  if !failures = 0 then 0 else 1

let wl_list_arg =
  let doc = "List the named mixes with step counts and fingerprints." in
  Arg.(value & flag & info [ "list" ] ~doc)

let wl_mix_arg =
  let doc = "Compile this mix with --seed and print its fingerprint." in
  Arg.(value & opt (some string) None & info [ "mix" ] ~docv:"NAME" ~doc)

let wl_trace_arg =
  let doc = "With --mix: also print the compiled trace, one step per line." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let wl_fuzz_arg =
  let doc =
    "Check the determinism contract over N cases: each (mix, seed) must \
     compile to a bit-identical trace on every recompilation."
  in
  Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N" ~doc)

let wl_kill_arg =
  let doc =
    "Run the cross-service kill matrix (baseline plus the full extended \
     mutant catalog under the cross workload)."
  in
  Arg.(value & flag & info [ "kill-matrix" ] ~doc)

let wl_eval_arg =
  let doc =
    "With --kill-matrix: contract evaluation mode — full, incremental, or \
     both (default)."
  in
  Arg.(value & opt string "both" & info [ "eval" ] ~docv:"MODE" ~doc)

let wl_domains_arg =
  let doc = "With --kill-matrix: fan campaign entries over N domains." in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let wl_chaos_arg =
  let doc =
    "Run the cross-service mutants under every chaos profile and check \
     detection power and verdict integrity."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let workload_cmd =
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "the seeded traffic-mix DSL: list mixes, compile traces, check the \
          bit-identical-trace contract, and run the cross-service \
          kill/chaos matrices")
    Term.(
      const workload $ wl_list_arg $ wl_mix_arg $ seed_arg $ wl_trace_arg
      $ wl_fuzz_arg $ wl_kill_arg $ wl_eval_arg $ wl_domains_arg $ wl_chaos_arg)

let serve_bench_cmd =
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "replay a seeded multi-tenant workload through the sharded monitor \
          at several domain counts and report throughput, cache hit rate and \
          observation traffic")
    Term.(
      const serve_bench $ sb_projects_arg $ sb_requests_arg $ seed_arg
      $ sb_domains_arg $ sb_rate_arg $ sb_gates_arg $ sb_min_speedup_arg
      $ sb_json_arg $ sb_baseline_arg $ sb_max_regression_arg
      $ sb_resilience_baseline_arg)

let main =
  Cmd.group
    (Cmd.info "cmonitor" ~version:Cloudmon.version
       ~doc:"model-generated cloud monitor over a simulated OpenStack")
    [ validate_cmd; analyze_cmd; lifecycle_cmd; contracts_cmd; table1_cmd;
      testgen_cmd; explore_cmd; audit_cmd; fuzz_cmd; chaos_cmd; workload_cmd;
      serve_bench_cmd; replay_cmd; recover_cmd
    ]

let () = exit (Cmd.eval' main)
