bench/workloads.ml: Cm_cloudsim Cm_contracts Cm_http Cm_json Cm_monitor Cm_ocl Cm_rbac Cm_uml List Printf String
