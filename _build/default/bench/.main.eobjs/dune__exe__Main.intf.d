bench/main.mli:
