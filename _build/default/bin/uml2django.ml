(* The paper's CLI (§VI): `uml2django ProjectName DiagramsFileinXML`
   reads the XMI export of the design models and emits the Django
   project embedding the generated contracts.

   `uml2django --sample-xmi` prints the XMI of the paper's Cinder models
   so the pipeline can be exercised without a UML tool. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let sample_xmi model =
  let doc =
    match model with
    | "glance" ->
      { Cloudmon.Uml.Xmi.resource_model = Cloudmon.Uml.Glance_model.resources;
        behavior_models = [ Cloudmon.Uml.Glance_model.behavior ]
      }
    | "snapshots" ->
      { Cloudmon.Uml.Xmi.resource_model = Cloudmon.Uml.Snapshot_model.resources;
        behavior_models = [ Cloudmon.Uml.Snapshot_model.behavior ]
      }
    | _ ->
      { Cloudmon.Uml.Xmi.resource_model = Cloudmon.Uml.Cinder_model.resources;
        behavior_models = [ Cloudmon.Uml.Cinder_model.behavior ]
      }
  in
  print_string (Cloudmon.Uml.Xmi.write doc);
  0

let generate project_name xmi_file out_dir cloud_base with_security =
  let xmi_text = read_file xmi_file in
  let security = if with_security then Some Cloudmon.cinder_security else None in
  match
    Cloudmon.django_of_xmi ~project_name ~cloud_base ?security xmi_text
  with
  | Error msg ->
    Printf.eprintf "uml2django: %s\n" msg;
    1
  | Ok files ->
    Cloudmon.Codegen.Django_project.write_to_dir ~dir:out_dir files;
    List.iter
      (fun (f : Cloudmon.Codegen.Django_project.file) ->
        Printf.printf "wrote %s/%s (%d bytes)\n" out_dir f.path
          (String.length f.content))
      files;
    0

let run sample model project_name xmi_file out_dir cloud_base with_security =
  if sample then sample_xmi model
  else
    match project_name, xmi_file with
    | Some project_name, Some xmi_file ->
      generate project_name xmi_file out_dir cloud_base with_security
    | _ ->
      prerr_endline "usage: uml2django PROJECTNAME DIAGRAMS.xmi [-o DIR]";
      prerr_endline "       uml2django --sample-xmi > cinder.xmi";
      2

let sample_flag =
  let doc = "Print the XMI of a bundled model set and exit." in
  Arg.(value & flag & info [ "sample-xmi" ] ~doc)

let model_arg =
  let doc = "Which bundled models --sample-xmi prints: cinder (default, the \
             paper's Fig. 3), glance, or snapshots." in
  Arg.(value & opt string "cinder" & info [ "model" ] ~docv:"NAME" ~doc)

let project_arg =
  let doc = "Name of the generated Django project." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"PROJECTNAME" ~doc)

let xmi_arg =
  let doc = "XMI file containing the resource and behavioral models." in
  Arg.(value & pos 1 (some file) None & info [] ~docv:"DIAGRAMS" ~doc)

let out_arg =
  let doc = "Output directory." in
  Arg.(value & opt string "generated" & info [ "o"; "output" ] ~docv:"DIR" ~doc)

let base_arg =
  let doc = "Base URL of the private cloud the monitor forwards to." in
  Arg.(
    value
    & opt string "http://130.232.85.9"
    & info [ "cloud-base" ] ~docv:"URL" ~doc)

let security_arg =
  let doc =
    "Conjoin the authorization guards of the paper's Table I into the \
     generated contracts."
  in
  Arg.(value & flag & info [ "with-table1" ] ~doc)

let cmd =
  let doc = "generate a Django cloud monitor from UML/OCL models (XMI)" in
  Cmd.v
    (Cmd.info "uml2django" ~version:Cloudmon.version ~doc)
    Term.(
      const run $ sample_flag $ model_arg $ project_arg $ xmi_arg $ out_arg
      $ base_arg $ security_arg)

let () = exit (Cmd.eval' cmd)
