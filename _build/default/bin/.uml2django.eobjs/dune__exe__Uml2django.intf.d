bin/uml2django.mli:
