bin/cmonitor.ml: Arg Cloudmon Cm_monitor Cmd Cmdliner Fmt List Logs Logs_fmt Printf Term
