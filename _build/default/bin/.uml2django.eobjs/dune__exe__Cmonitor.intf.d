bin/cmonitor.mli:
