bin/uml2django.ml: Arg Cloudmon Cmd Cmdliner List Printf String Term
