lib/codegen/urls_py.mli: Cm_http Cm_uml
