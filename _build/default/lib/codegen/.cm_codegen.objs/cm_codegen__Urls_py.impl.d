lib/codegen/urls_py.ml: Buffer Cm_http Cm_uml List Printf String
