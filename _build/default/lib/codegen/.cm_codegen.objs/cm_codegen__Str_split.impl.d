lib/codegen/str_split.ml: Buffer List String
