lib/codegen/views_py.ml: Buffer Cm_contracts Cm_http Cm_ocl Cm_uml List Ocl_to_python Printf Result Str_split String Urls_py
