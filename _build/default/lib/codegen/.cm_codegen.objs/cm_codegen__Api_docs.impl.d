lib/codegen/api_docs.ml: Buffer Cm_contracts Cm_http Cm_ocl Cm_rbac Cm_uml Fmt List Printf Result String
