lib/codegen/ocl_to_python.ml: Cm_ocl List Printf String
