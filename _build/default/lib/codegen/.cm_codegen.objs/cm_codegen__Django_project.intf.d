lib/codegen/django_project.mli: Cm_contracts Cm_uml
