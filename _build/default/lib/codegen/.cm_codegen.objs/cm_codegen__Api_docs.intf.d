lib/codegen/api_docs.mli: Cm_contracts Cm_uml
