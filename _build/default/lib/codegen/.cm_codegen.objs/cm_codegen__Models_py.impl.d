lib/codegen/models_py.ml: Buffer Cm_uml Int List Printf String
