lib/codegen/ocl_to_python.mli: Cm_ocl
