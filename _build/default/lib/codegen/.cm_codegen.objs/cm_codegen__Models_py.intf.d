lib/codegen/models_py.mli: Cm_uml
