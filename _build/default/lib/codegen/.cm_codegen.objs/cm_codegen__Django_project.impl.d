lib/codegen/django_project.ml: Api_docs Cm_contracts Cm_rbac Cm_uml Filename Fmt List Models_py Result String Sys Unix Urls_py Views_py
