lib/codegen/views_py.mli: Cm_contracts Cm_uml
