(* Split a flattened navigation name on "__" to recover the OCL chain. *)
let on_double_underscore s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let len = String.length s in
  let i = ref 0 in
  while !i < len do
    if !i + 1 < len && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts
