(** Generation of Django [views.py] with embedded contracts.

    Population happens in the four steps of §VI: (1) permitted-method
    dispatchers per resource URI; (2) functional contracts extracted
    from the behavioral model; (3) authorization information conjoined
    from the security table; (4) security-requirement identifiers
    embedded as variables for traceability.  The method bodies carry
    TODO markers where the developer completes the implementation — the
    approach is deliberately semi-automatic (§VI-B). *)

val generate :
  project_name:string ->
  cloud_base:string ->
  ?security:Cm_contracts.Generate.security ->
  Cm_uml.Resource_model.t ->
  Cm_uml.Behavior_model.t ->
  (string, string) result
(** [cloud_base] is the private cloud's endpoint, e.g.
    ["http://130.232.85.9"] (the VM address in the paper's Listing 2). *)
