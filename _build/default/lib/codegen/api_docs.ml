module RM = Cm_uml.Resource_model
module BM = Cm_uml.Behavior_model
module Paths = Cm_uml.Paths

let ( let* ) r f = Result.bind r f

let generate ~title ?security resources behavior =
  let* entries =
    match Paths.derive resources with
    | Ok entries -> Ok entries
    | Error msg -> Error msg
  in
  let* contracts =
    match Cm_contracts.Generate.all ?security behavior with
    | Ok cs -> Ok cs
    | Error msg -> Error msg
  in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# %s" title;
  line "";
  line "Generated from the design models — do not edit by hand; the same";
  line "models drive the runtime monitor, so this document states exactly";
  line "what is enforced.";
  line "";
  (* --- resources --- *)
  line "## Resources";
  line "";
  line "```mermaid";
  Buffer.add_string buf (Cm_uml.Mermaid.class_diagram resources);
  line "```";
  line "";
  line "| Resource | Kind | URI | Attributes |";
  line "|---|---|---|---|";
  List.iter
    (fun (entry : Paths.entry) ->
      match RM.find_resource entry.resource resources with
      | None -> ()
      | Some def ->
        let attrs =
          def.RM.attributes
          |> List.map (fun (a : RM.attribute) ->
                 Printf.sprintf "`%s`: %s" a.attr_name
                   (RM.attr_type_to_string a.attr_type))
          |> String.concat ", "
        in
        line "| %s | %s | `%s` | %s |" entry.resource
          (if entry.is_item then "resource" else "collection")
          (Cm_http.Uri_template.to_string entry.template)
          (if attrs = "" then "—" else attrs))
    entries;
  line "";
  (* --- protocol --- *)
  line "## Protocol (`%s` over `%s`)" behavior.BM.machine_name behavior.BM.context;
  line "";
  line "```mermaid";
  Buffer.add_string buf (Cm_uml.Mermaid.state_diagram behavior);
  line "```";
  line "";
  line "States and invariants (initial state: `%s`):" behavior.BM.initial;
  line "";
  List.iter
    (fun (s : BM.state) ->
      line "- `%s`" s.state_name;
      line "  - invariant: `%s`" (Cm_ocl.Pretty.to_string s.invariant))
    behavior.BM.states;
  line "";
  line "| # | Trigger | From | To | Guard | Effect | SecReq |";
  line "|---|---|---|---|---|---|---|";
  List.iteri
    (fun i (tr : BM.transition) ->
      let opt = function
        | Some e -> "`" ^ Cm_ocl.Pretty.to_string e ^ "`"
        | None -> "—"
      in
      line "| %d | %s | `%s` | `%s` | %s | %s | %s |" (i + 1)
        (Fmt.str "%a" BM.pp_trigger tr.trigger)
        tr.source tr.target (opt tr.guard) (opt tr.effect)
        (if tr.requirements = [] then "—" else String.concat ", " tr.requirements))
    behavior.BM.transitions;
  line "";
  (* --- security --- *)
  (match security with
   | None -> ()
   | Some { Cm_contracts.Generate.table; assignment } ->
     line "## Security requirements";
     line "";
     line "| SecReq | Request | Resource | Roles | Usergroups |";
     line "|---|---|---|---|---|";
     List.iter
       (fun (e : Cm_rbac.Security_table.entry) ->
         let groups =
           e.roles
           |> List.concat_map (fun role ->
                  Cm_rbac.Role_assignment.groups_of_role role assignment)
           |> List.sort_uniq String.compare
         in
         line "| %s | %s | %s | %s | %s |" e.req_id
           (Cm_http.Meth.to_string e.meth)
           e.resource
           (String.concat ", " e.roles)
           (String.concat ", " groups))
       table;
     line "");
  (* --- contracts --- *)
  line "## Method contracts";
  line "";
  List.iter
    (fun (c : Cm_contracts.Contract.t) ->
      line "### %s" (Fmt.str "%a" BM.pp_trigger c.trigger);
      line "";
      if c.requirements <> [] then begin
        line "Covers security requirements: %s."
          (String.concat ", " c.requirements);
        line ""
      end;
      line "Precondition:";
      line "";
      line "```ocl";
      line "%s" (Cm_ocl.Pretty.to_string_multiline c.pre);
      line "```";
      line "";
      line "Postcondition:";
      line "";
      line "```ocl";
      line "%s" (Cm_ocl.Pretty.to_string_multiline c.post);
      line "```";
      line "")
    contracts;
  Ok (Buffer.contents buf)
