(** Generation of Django [models.py] from the resource model.

    "We look for the resources in the class diagram to implement
    database tables in models.py.  For each resource we create a table
    in the database, and analyze its associations to define their
    relationships with their keys.  This creates a local copy of the
    resource structures as required by our monitor" (§VI).

    Collection resource definitions produce no table (they have no
    attributes); a normal resource contained — possibly through a
    collection — in another normal resource gets a [ForeignKey] whose
    [related_name] is the association's role. *)

val generate : Cm_uml.Resource_model.t -> string
