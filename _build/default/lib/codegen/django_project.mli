(** Assembly of the complete generated Django project.

    "In the final result, we obtain the necessary Django project files"
    (§VI): [manage.py], [settings.py], and the app's [models.py],
    [urls.py] and [views.py].  The paper's CLI is mirrored by
    [bin/uml2django]. *)

type file = {
  path : string;  (** project-relative, e.g. "cmonitor/views.py" *)
  content : string;
}

val generate :
  project_name:string ->
  ?cloud_base:string ->
  ?security:Cm_contracts.Generate.security ->
  Cm_uml.Resource_model.t ->
  Cm_uml.Behavior_model.t ->
  (file list, string) result
(** [cloud_base] defaults to ["http://130.232.85.9"] (the paper's
    OpenStack VM).  Besides the Django files the project carries
    [API.md] (the {!Api_docs} specification) and — when a security table
    is supplied — the [policy.json] the {e cloud} should enforce, derived
    from the same table as the monitor's contracts so the two cannot
    drift apart. *)

val write_to_dir : dir:string -> file list -> unit
(** Materialize the files under [dir], creating directories as
    needed. *)
