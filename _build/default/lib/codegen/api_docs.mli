(** API specification document generation.

    "The models serve as the specification document" (§III, purpose 3).
    This generator renders the resource model, the protocol, Table I and
    the generated contracts as one Markdown document — the artifact a
    cloud developer reads, and the human-auditable face of exactly what
    the monitor enforces. *)

val generate :
  title:string ->
  ?security:Cm_contracts.Generate.security ->
  Cm_uml.Resource_model.t ->
  Cm_uml.Behavior_model.t ->
  (string, string) result
(** Sections: resource catalogue (attributes + URI templates), protocol
    states with invariants, transition table, security-requirements
    table, and one contract block per method with pre/postconditions in
    OCL.  Deterministic output. *)
