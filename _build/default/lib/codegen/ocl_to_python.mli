(** Translating OCL contracts into Python boolean expressions.

    The generated [views.py] (Listing 2) tests contracts with flattened
    local variables: a navigation chain [project.volumes] becomes the
    local [project__volumes] (double underscore, so that flattened names
    never collide with URL parameters such as [project_id]), [->size()] becomes [len(...)], and a
    pre-state term [pre(e)] becomes [pre_<flattened e>].  The variables
    referenced by a translated expression are reported so the code
    generator can emit the corresponding observation/snapshot
    assignments. *)

val translate : Cm_ocl.Ast.expr -> string
(** The Python expression text. *)

val variables : Cm_ocl.Ast.expr -> string list
(** Flattened variable names the translation references (sorted,
    distinct), e.g. [["pre_project__volumes"; "project__volumes";
    "user__groups"]]. *)
