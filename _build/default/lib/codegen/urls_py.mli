(** Generation of Django [urls.py] from the derived URI table.

    "urls.py contains the relative URLs of each resource and ways to
    access their respective views.  This information is fully defined in
    the class diagram" (§VI, Listing 3). *)

val view_name : Cm_uml.Paths.entry -> string
(** The view function a path entry dispatches to: the resource name for
    item URIs, the lowercased collection name for collection URIs. *)

val regex_of_template : Cm_http.Uri_template.t -> string
(** Django URL regex: parameters become named groups
    [(?P<name>[^/]+)]. *)

val generate : project_name:string -> Cm_uml.Resource_model.t -> string
