module Ast = Cm_ocl.Ast

(* Flatten a navigation chain to an identifier: project.volumes ->
   "project_volumes".  Non-chain sources fall back to a parenthesised
   translation (rare in practice: models navigate from variables). *)
let rec flatten = function
  | Ast.Var name -> Some name
  | Ast.Nav (source, prop) ->
    (match flatten source with
     | Some base -> Some (base ^ "__" ^ prop)
     | None -> None)
  | _ -> None

let binop_py = function
  | Ast.And -> "and"
  | Ast.Or -> "or"
  | Ast.Xor -> "!="
  | Ast.Implies -> "" (* rewritten before use *)
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "//"

let rec go ~pre expr =
  let prefix name = if pre then "pre_" ^ name else name in
  match expr with
  | Ast.Bool_lit true -> "True"
  | Ast.Bool_lit false -> "False"
  | Ast.Int_lit n -> string_of_int n
  | Ast.String_lit s -> "'" ^ s ^ "'"
  | Ast.Null_lit -> "None"
  | Ast.Var name -> prefix name
  | Ast.Nav (_, _) as nav ->
    (match flatten nav with
     | Some name -> prefix name
     | None -> "(" ^ go ~pre nav ^ ")")
  | Ast.At_pre inner -> go ~pre:true inner
  | Ast.Coll (source, Ast.Size) -> "len(" ^ go ~pre source ^ ")"
  | Ast.Coll (source, Ast.Is_empty) -> "len(" ^ go ~pre source ^ ") == 0"
  | Ast.Coll (source, Ast.Not_empty) -> "len(" ^ go ~pre source ^ ") > 0"
  | Ast.Coll (source, Ast.Sum) -> "sum(" ^ go ~pre source ^ ")"
  | Ast.Coll (source, Ast.First) -> go ~pre source ^ "[0]"
  | Ast.Coll (source, Ast.Last) -> go ~pre source ^ "[-1]"
  | Ast.Coll (source, Ast.As_set) -> "set(" ^ go ~pre source ^ ")"
  | Ast.Member (source, true, arg) ->
    "(" ^ go ~pre arg ^ " in " ^ go ~pre source ^ ")"
  | Ast.Member (source, false, arg) ->
    "(" ^ go ~pre arg ^ " not in " ^ go ~pre source ^ ")"
  | Ast.Count (source, arg) ->
    Printf.sprintf "%s.count(%s)" (go ~pre source) (go ~pre arg)
  | Ast.Iter (source, Ast.For_all, var, body) ->
    Printf.sprintf "all(%s for %s in %s)" (go ~pre body) var (go ~pre source)
  | Ast.Iter (source, Ast.Exists, var, body) ->
    Printf.sprintf "any(%s for %s in %s)" (go ~pre body) var (go ~pre source)
  | Ast.Iter (source, Ast.Select, var, body) ->
    Printf.sprintf "[%s for %s in %s if %s]" var var (go ~pre source)
      (go ~pre body)
  | Ast.Iter (source, Ast.Reject, var, body) ->
    Printf.sprintf "[%s for %s in %s if not (%s)]" var var (go ~pre source)
      (go ~pre body)
  | Ast.Iter (source, Ast.Collect, var, body) ->
    Printf.sprintf "[%s for %s in %s]" (go ~pre body) var (go ~pre source)
  | Ast.Iter (source, Ast.One, var, body) ->
    Printf.sprintf "sum(1 for %s in %s if %s) == 1" var (go ~pre source)
      (go ~pre body)
  | Ast.Iter (source, Ast.Any, var, body) ->
    Printf.sprintf "next(%s for %s in %s if %s)" var var (go ~pre source)
      (go ~pre body)
  | Ast.Iter (source, Ast.Is_unique, var, body) ->
    Printf.sprintf "(len(set(%s for %s in %s)) == len(%s))" (go ~pre body)
      var (go ~pre source) (go ~pre source)
  | Ast.Unop (Ast.Not, inner) -> "not (" ^ go ~pre inner ^ ")"
  | Ast.Unop (Ast.Neg, inner) -> "-(" ^ go ~pre inner ^ ")"
  | Ast.Binop (Ast.Implies, a, b) ->
    Printf.sprintf "(not (%s) or (%s))" (go ~pre a) (go ~pre b)
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (go ~pre a) (binop_py op) (go ~pre b)

let translate expr = go ~pre:false expr

let variables expr =
  let acc = ref [] in
  let add name = if not (List.mem name !acc) then acc := name :: !acc in
  let rec walk ~pre bound = function
    | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit -> ()
    | Ast.Var name ->
      if not (List.mem name bound) then
        add (if pre then "pre_" ^ name else name)
    | Ast.Nav (_, _) as nav ->
      (match flatten nav with
       | Some name -> add (if pre then "pre_" ^ name else name)
       | None ->
         (match nav with
          | Ast.Nav (source, _) -> walk ~pre bound source
          | _ -> ()))
    | Ast.At_pre inner -> walk ~pre:true bound inner
    | Ast.Coll (source, _) | Ast.Unop (_, source) -> walk ~pre bound source
    | Ast.Member (source, _, arg) | Ast.Count (source, arg) ->
      walk ~pre bound source;
      walk ~pre bound arg
    | Ast.Iter (source, _, var, body) ->
      walk ~pre bound source;
      walk ~pre (var :: bound) body
    | Ast.Binop (_, a, b) ->
      walk ~pre bound a;
      walk ~pre bound b
  in
  walk ~pre:false [] expr;
  List.sort String.compare !acc
