(** Mutation campaigns: run the standard workload against each mutant
    and record whether the monitor killed it.

    "During validation, we were able to kill all three mutants (errors)
    systematically introduced in the cloud implementation" (§VI-D) —
    [run] with {!Mutant.paper_mutants} reproduces exactly that; the
    extended catalog widens the experiment. *)

type result = {
  mutant : Mutant.t option;  (** [None] for the fault-free baseline *)
  killed : bool;  (** at least one violation verdict was raised *)
  exchanges : int;
  violations : Cm_monitor.Outcome.t list;
  first_violation : string option;  (** verdict name of the first kill *)
}

val run_one : Mutant.t option -> (result, string list) Stdlib.result
(** Fresh cloud + monitor, standard workload, collect. *)

val run : Mutant.t list -> (result list, string list) Stdlib.result
(** Baseline first (it must be violation-free), then each mutant. *)

val to_json : result list -> Cm_json.Json.t
(** Machine-readable kill matrix for CI gates. *)

val kill_matrix : result list -> string
(** Printable matrix: mutant, killed?, exchanges, first killing
    verdict. *)

val all_killed : result list -> bool
(** Every mutant killed {e and} the baseline clean. *)
