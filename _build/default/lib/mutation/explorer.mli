(** Randomized conformance exploration.

    The hand-written scenario and the model-generated campaign follow
    planned paths; the explorer instead performs a seeded random walk —
    random user, random action, random (sometimes nonsensical) target —
    through the monitor, exercising request interleavings neither
    planner produces.  On a correct cloud no violation may ever appear,
    whatever the seed (property-tested); on a mutated cloud the walk
    discovers violations probabilistically.

    The walk is deterministic in its seed (reproducible failures). *)

type config = {
  seed : int;
  steps : int;
}

val default_config : config
(** seed 42, 200 steps. *)

type result = {
  exchanges : int;
  violations : Cm_monitor.Outcome.t list;
  verdict_counts : (string * int) list;  (** conformance -> count *)
  actions_tried : (string * int) list;  (** action label -> count *)
}

val run :
  ?config:config ->
  ?faults:Cm_cloudsim.Faults.set ->
  unit ->
  (result, string list) Stdlib.result
(** Fresh seeded cloud + Oracle monitor over the Cinder models; the walk
    mixes volume CRUD (valid and invalid targets, all three users),
    attach/detach actions and over-quota attempts. *)

val render : result -> string
