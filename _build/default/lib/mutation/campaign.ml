type result = {
  mutant : Mutant.t option;
  killed : bool;
  exchanges : int;
  violations : Cm_monitor.Outcome.t list;
  first_violation : string option;
}

let run_one mutant =
  let faults =
    match mutant with
    | Some m -> m.Mutant.faults
    | None -> Cm_cloudsim.Faults.none
  in
  match Scenario.setup ~faults () with
  | Error msgs -> Error msgs
  | Ok ctx ->
    Scenario.standard ctx;
    let outcomes = Cm_monitor.Monitor.outcomes ctx.Scenario.monitor in
    let violations = Cm_monitor.Report.violations outcomes in
    Ok
      { mutant;
        killed = violations <> [];
        exchanges = List.length outcomes;
        violations;
        first_violation =
          (match violations with
           | first :: _ ->
             Some
               (Cm_monitor.Outcome.conformance_to_string
                  first.Cm_monitor.Outcome.conformance)
           | [] -> None)
      }

let run mutants =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | m :: rest ->
      (match run_one m with
       | Ok result -> loop (result :: acc) rest
       | Error _ as err -> err)
  in
  loop [] (None :: List.map (fun m -> Some m) mutants)

let kill_matrix results =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-36s %-8s %-10s %s" "mutant" "killed" "exchanges" "first killing verdict";
  line "%s" (String.make 100 '-');
  List.iter
    (fun r ->
      let name =
        match r.mutant with
        | None -> "(baseline: no fault)"
        | Some m ->
          m.Mutant.name ^ (if m.Mutant.from_paper then " [paper]" else "")
      in
      let killed_cell =
        match r.mutant with
        | None -> if r.killed then "DIRTY" else "clean"
        | Some _ -> if r.killed then "yes" else "NO"
      in
      line "%-36s %-8s %-10d %s" name killed_cell r.exchanges
        (Option.value ~default:"-" r.first_violation))
    results;
  Buffer.contents buf

let all_killed results =
  List.for_all
    (fun r ->
      match r.mutant with None -> not r.killed | Some _ -> r.killed)
    results

let to_json results =
  let module Json = Cm_json.Json in
  Json.obj
    [ ( "runs",
        Json.list
          (List.map
             (fun r ->
               Json.obj
                 [ ( "mutant",
                     match r.mutant with
                     | None -> Json.null
                     | Some m -> Json.string m.Mutant.name );
                   ("killed", Json.bool r.killed);
                   ("exchanges", Json.int r.exchanges);
                   ("violations", Json.int (List.length r.violations));
                   ( "first_violation",
                     match r.first_violation with
                     | Some v -> Json.string v
                     | None -> Json.null )
                 ])
             results) );
      ("all_killed", Json.bool (all_killed results))
    ]
