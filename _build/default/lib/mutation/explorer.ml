module Json = Cm_json.Json
module Request = Cm_http.Request
module Outcome = Cm_monitor.Outcome

type config = { seed : int; steps : int }

let default_config = { seed = 42; steps = 200 }

type result = {
  exchanges : int;
  violations : Outcome.t list;
  verdict_counts : (string * int) list;
  actions_tried : (string * int) list;
}

let volumes_path = "/v3/myProject/volumes"

let volume_body rng =
  Json.obj
    [ ( "volume",
        Json.obj
          [ ("name", Json.string (Printf.sprintf "w%d" (Random.State.int rng 1000)));
            ("size", Json.int (1 + Random.State.int rng 20))
          ] )
    ]

(* Candidate volume id: usually one that exists (read through the
   monitor's own log is cheating; list via the cloud as the acting
   user), sometimes a made-up one to exercise 404 paths. *)
let pick_volume_id rng ctx token =
  if Random.State.int rng 10 = 0 then Some "vol-ghost"
  else begin
    let listing =
      Cm_cloudsim.Cloud.handle ctx.Scenario.cloud
        (Request.make Cm_http.Meth.GET volumes_path
        |> Request.with_auth_token token)
    in
    match listing.Cm_http.Response.body with
    | Some body ->
      (match Json.member "volumes" body with
       | Some (Json.List (_ :: _ as vols)) ->
         let pick = List.nth vols (Random.State.int rng (List.length vols)) in
         (match Json.member "id" pick with
          | Some (Json.String id) -> Some id
          | _ -> None)
       | _ -> None)
    | None -> None
  end

let run ?(config = default_config) ?(faults = Cm_cloudsim.Faults.none) () =
  match Scenario.setup ~faults () with
  | Error msgs -> Error msgs
  | Ok ctx ->
    let rng = Random.State.make [| config.seed |] in
    let users = [ "alice"; "bob"; "carol" ] in
    let actions = Hashtbl.create 8 in
    let bump label =
      Hashtbl.replace actions label
        (1 + Option.value ~default:0 (Hashtbl.find_opt actions label))
    in
    let token_of user = List.assoc user ctx.Scenario.tokens in
    for _ = 1 to config.steps do
      let user = List.nth users (Random.State.int rng (List.length users)) in
      let token = token_of user in
      let send ?body meth path =
        ignore
          (Cm_monitor.Monitor.handle ctx.Scenario.monitor
             (Request.make ?body meth path |> Request.with_auth_token token))
      in
      match Random.State.int rng 8 with
      | 0 ->
        bump "list";
        send Cm_http.Meth.GET volumes_path
      | 1 | 2 ->
        bump "create";
        send ~body:(volume_body rng) Cm_http.Meth.POST volumes_path
      | 3 ->
        bump "get";
        (match pick_volume_id rng ctx token with
         | Some id -> send Cm_http.Meth.GET (volumes_path ^ "/" ^ id)
         | None -> ())
      | 4 ->
        bump "update";
        (match pick_volume_id rng ctx token with
         | Some id ->
           send
             ~body:
               (Json.obj
                  [ ( "volume",
                      Json.obj
                        [ ( "name",
                            Json.string
                              (Printf.sprintf "r%d" (Random.State.int rng 100))
                          )
                        ] )
                  ])
             Cm_http.Meth.PUT
             (volumes_path ^ "/" ^ id)
         | None -> ())
      | 5 | 6 ->
        bump "delete";
        (match pick_volume_id rng ctx token with
         | Some id -> send Cm_http.Meth.DELETE (volumes_path ^ "/" ^ id)
         | None -> ())
      | _ ->
        bump "attach-or-detach";
        (match pick_volume_id rng ctx token with
         | Some id ->
           let action =
             if Random.State.bool rng then
               Json.obj
                 [ ( "os-attach",
                     Json.obj [ ("instance_uuid", Json.string "srv-rnd") ] )
                 ]
             else Json.obj [ ("os-detach", Json.obj []) ]
           in
           send ~body:action Cm_http.Meth.POST
             (volumes_path ^ "/" ^ id ^ "/action")
         | None -> ())
    done;
    let outcomes = Cm_monitor.Monitor.outcomes ctx.Scenario.monitor in
    let verdicts = Hashtbl.create 8 in
    List.iter
      (fun (o : Outcome.t) ->
        let key = Outcome.conformance_to_string o.conformance in
        Hashtbl.replace verdicts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt verdicts key)))
      outcomes;
    Ok
      { exchanges = List.length outcomes;
        violations = Cm_monitor.Report.violations outcomes;
        verdict_counts =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) verdicts []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        actions_tried =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) actions []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      }

let render result =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "random walk: %d monitored exchanges, %d violations" result.exchanges
    (List.length result.violations);
  line "verdicts:";
  List.iter (fun (k, v) -> line "  %-45s %d" k v) result.verdict_counts;
  line "actions:";
  List.iter (fun (k, v) -> line "  %-45s %d" k v) result.actions_tried;
  Buffer.contents buf
