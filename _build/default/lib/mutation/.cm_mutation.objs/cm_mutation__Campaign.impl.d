lib/mutation/campaign.ml: Buffer Cm_cloudsim Cm_json Cm_monitor List Mutant Option Printf Scenario String
