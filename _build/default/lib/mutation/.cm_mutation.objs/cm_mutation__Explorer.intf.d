lib/mutation/explorer.mli: Cm_cloudsim Cm_monitor Stdlib
