lib/mutation/mutant.mli: Cm_cloudsim Format
