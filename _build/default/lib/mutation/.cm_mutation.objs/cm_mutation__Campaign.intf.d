lib/mutation/campaign.mli: Cm_json Cm_monitor Mutant Stdlib
