lib/mutation/scenario.mli: Cm_cloudsim Cm_contracts Cm_http Cm_json Cm_monitor
