lib/mutation/mutant.ml: Cm_cloudsim Cm_rbac Fmt List
