lib/mutation/explorer.ml: Buffer Cm_cloudsim Cm_http Cm_json Cm_monitor Hashtbl List Option Printf Random Scenario String
