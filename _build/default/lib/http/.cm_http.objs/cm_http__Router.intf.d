lib/http/router.mli: Meth Request Response Uri_template
