lib/http/meth.ml: Fmt Printf Stdlib String
