lib/http/response.mli: Cm_json Format Headers Status
