lib/http/response.ml: Cm_json Fmt Headers Status
