lib/http/request.ml: Buffer Cm_json Fmt Headers List Meth Printf String
