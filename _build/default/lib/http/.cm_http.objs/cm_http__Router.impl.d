lib/http/router.ml: Headers Int List Meth Printexc Printf Request Response Status String Uri_template
