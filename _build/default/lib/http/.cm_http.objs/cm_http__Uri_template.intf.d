lib/http/uri_template.mli: Format
