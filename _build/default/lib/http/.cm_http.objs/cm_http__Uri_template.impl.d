lib/http/uri_template.ml: Fmt List Printf String
