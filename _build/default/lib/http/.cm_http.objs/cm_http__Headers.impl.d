lib/http/headers.ml: Fmt List String
