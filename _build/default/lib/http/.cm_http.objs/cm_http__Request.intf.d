lib/http/request.mli: Cm_json Format Headers Meth
