lib/http/status.ml: Fmt Printf
