type t = (string * string) list

let normalize = String.lowercase_ascii
let empty = []
let of_list headers = headers
let to_list headers = headers

let get name headers =
  let name = normalize name in
  List.assoc_opt name (List.map (fun (k, v) -> (normalize k, v)) headers)

let add name value headers = headers @ [ (name, value) ]

let remove name headers =
  let name = normalize name in
  List.filter (fun (k, _) -> normalize k <> name) headers

let replace name value headers = add name value (remove name headers)
let mem name headers = get name headers <> None

let equal a b =
  let canon headers =
    List.sort compare (List.map (fun (k, v) -> (normalize k, v)) headers)
  in
  canon a = canon b

let pp ppf headers =
  let pp_header ppf (k, v) = Fmt.pf ppf "%s: %s" k v in
  Fmt.(list ~sep:(any "@.") pp_header) ppf headers

let token_header = "X-Auth-Token"
let auth_token headers = get token_header headers
let with_auth_token token headers = replace token_header token headers
let content_type_json headers = replace "Content-Type" "application/json" headers
