(** HTTP requests.

    Paths are absolute ("/v3/myproject/volumes/4"); query strings are
    parsed into an association list.  Bodies, when present, are JSON —
    the only media type the cloud APIs under study use. *)

type t = {
  meth : Meth.t;
  path : string;  (** absolute path, no query string *)
  query : (string * string) list;
  headers : Headers.t;
  body : Cm_json.Json.t option;
}

val make :
  ?query:(string * string) list ->
  ?headers:Headers.t ->
  ?body:Cm_json.Json.t ->
  Meth.t ->
  string ->
  t
(** [make meth target] parses [target] as [path?query]. *)

val path_segments : t -> string list
(** Path split on ['/'], empty segments removed. *)

val query_param : string -> t -> string option
val auth_token : t -> string option
val with_auth_token : string -> t -> t
val with_body : Cm_json.Json.t -> t -> t
val pp : Format.formatter -> t -> unit

val to_curl : t -> string
(** Render the request as the equivalent cURL command line — the paper
    drives the monitor with cURL, so logs and examples show the same
    surface syntax. *)
