type handler = Request.t -> (string * string) list -> Response.t

type route = {
  template : Uri_template.t;
  meth : Meth.t;
  handler : handler;
}

type t = route list

let empty = []
let add template meth handler routes = { template; meth; handler } :: routes

let add_all template handlers routes =
  List.fold_left
    (fun routes (meth, handler) -> add template meth handler routes)
    routes handlers

let of_routes specs =
  List.fold_left
    (fun routes (template_text, meth, handler) ->
      add (Uri_template.parse_exn template_text) meth handler routes)
    empty specs

let matching_routes routes path =
  List.filter_map
    (fun route ->
      match Uri_template.matches route.template path with
      | Some bindings -> Some (route, bindings)
      | None -> None)
    routes

let allowed_methods routes path =
  matching_routes routes path
  |> List.map (fun (route, _) -> route.meth)
  |> List.sort_uniq Meth.compare

let routes t = List.map (fun r -> (r.template, r.meth)) t

let dispatch t req =
  match matching_routes t req.Request.path with
  | [] -> Response.error Status.not_found "resource not found"
  | candidates ->
    let for_method =
      List.filter (fun (route, _) -> route.meth = req.Request.meth) candidates
    in
    (match for_method with
     | [] ->
       let allowed =
         candidates
         |> List.map (fun (route, _) -> Meth.to_string route.meth)
         |> List.sort_uniq String.compare
         |> String.concat ", "
       in
       let resp =
         Response.error Status.method_not_allowed
           (Printf.sprintf "method %s not allowed"
              (Meth.to_string req.Request.meth))
       in
       { resp with headers = Headers.replace "Allow" allowed resp.headers }
     | _ :: _ ->
       (* Most-specific template wins; later registration breaks ties
          because [add] conses to the front and [sort] is stable. *)
       let best, bindings =
         List.hd
           (List.stable_sort
              (fun (a, _) (b, _) ->
                Int.compare
                  (Uri_template.specificity b.template)
                  (Uri_template.specificity a.template))
              for_method)
       in
       (try best.handler req bindings
        with exn ->
          Response.error Status.internal_server_error
            (Printf.sprintf "handler raised: %s" (Printexc.to_string exn))))
