type t = {
  status : Status.t;
  headers : Headers.t;
  body : Cm_json.Json.t option;
}

let make ?(headers = Headers.empty) ?body status = { status; headers; body }
let ok body = make ~body Status.ok
let created body = make ~body Status.created
let no_content = make Status.no_content

let error status message =
  let body =
    Cm_json.Json.obj
      [ ( "error",
          Cm_json.Json.obj
            [ ("code", Cm_json.Json.int status);
              ("title", Cm_json.Json.string (Status.reason_phrase status));
              ("message", Cm_json.Json.string message)
            ] )
      ]
  in
  make ~headers:(Headers.content_type_json Headers.empty) ~body status

let error_message resp =
  match resp.body with
  | None -> None
  | Some body ->
    (match Cm_json.Pointer.get [ Key "error"; Key "message" ] body with
     | Some (Cm_json.Json.String msg) -> Some msg
     | Some _ | None -> None)

let is_success resp = Status.is_success resp.status

let pp ppf resp =
  Fmt.pf ppf "%a" Status.pp resp.status;
  match resp.body with
  | Some body -> Fmt.pf ppf " %a" Cm_json.Json.pp body
  | None -> ()
