(** HTTP header collections (case-insensitive names, order preserved). *)

type t

val empty : t
val of_list : (string * string) list -> t
val to_list : t -> (string * string) list

val get : string -> t -> string option
(** First value for a (case-insensitive) name. *)

val add : string -> string -> t -> t
(** Append a header (keeps existing values for the same name). *)

val replace : string -> string -> t -> t
(** Drop existing values for the name and append the new one. *)

val remove : string -> t -> t
val mem : string -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Well-known headers used by the cloud}

    OpenStack authenticates with [X-Auth-Token]; the simulator and the
    monitor use the same convention. *)

val auth_token : t -> string option
val with_auth_token : string -> t -> t
val content_type_json : t -> t
