(** HTTP request methods.

    REST APIs expose the uniform interface through these verbs; the
    behavioral model labels every transition with one of them. *)

type t = GET | PUT | POST | DELETE | HEAD | PATCH | OPTIONS

val to_string : t -> string
val of_string : string -> t option
val of_string_exn : string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val all : t list
(** Every method, in a fixed order (used to enumerate 405 responses). *)

val is_safe : t -> bool
(** [GET], [HEAD] and [OPTIONS] must not modify resources (RFC 7231). *)

val is_idempotent : t -> bool
(** Safe methods plus [PUT] and [DELETE]. *)
