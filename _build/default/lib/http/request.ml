type t = {
  meth : Meth.t;
  path : string;
  query : (string * string) list;
  headers : Headers.t;
  body : Cm_json.Json.t option;
}

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun pair ->
           match String.index_opt pair '=' with
           | Some i ->
             Some
               ( String.sub pair 0 i,
                 String.sub pair (i + 1) (String.length pair - i - 1) )
           | None -> if pair = "" then None else Some (pair, ""))

let make ?(query = []) ?(headers = Headers.empty) ?body meth target =
  let path, parsed_query =
    match String.index_opt target '?' with
    | Some i ->
      ( String.sub target 0 i,
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )
    | None -> (target, [])
  in
  { meth; path; query = parsed_query @ query; headers; body }

let path_segments req =
  List.filter (fun s -> s <> "") (String.split_on_char '/' req.path)

let query_param name req = List.assoc_opt name req.query
let auth_token req = Headers.auth_token req.headers

let with_auth_token token req =
  { req with headers = Headers.with_auth_token token req.headers }

let with_body body req = { req with body = Some body }

let pp ppf req =
  Fmt.pf ppf "%a %s" Meth.pp req.meth req.path;
  if req.query <> [] then
    Fmt.pf ppf "?%s"
      (String.concat "&" (List.map (fun (k, v) -> k ^ "=" ^ v) req.query))

let to_curl req =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "curl -X ";
  Buffer.add_string buf (Meth.to_string req.meth);
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf (Printf.sprintf " -H '%s: %s'" name value))
    (Headers.to_list req.headers);
  (match req.body with
   | Some body ->
     Buffer.add_string buf
       (Printf.sprintf " -d '%s'" (Cm_json.Printer.to_string body))
   | None -> ());
  Buffer.add_char buf ' ';
  Buffer.add_string buf "http://127.0.0.1:8000";
  Buffer.add_string buf req.path;
  if req.query <> [] then begin
    Buffer.add_char buf '?';
    Buffer.add_string buf
      (String.concat "&" (List.map (fun (k, v) -> k ^ "=" ^ v) req.query))
  end;
  Buffer.contents buf
