(** Request routing.

    The generated [urls.py] of the paper maps URI patterns to views; this
    router is the executable equivalent: an ordered table of
    (template, method, handler) routes.  Dispatch picks the most specific
    matching template; a path that matches some template but no method
    yields [405 Method Not Allowed] (with the permitted methods in the
    [Allow] header), and an unmatched path yields [404]. *)

type handler = Request.t -> (string * string) list -> Response.t
(** A handler receives the request and the path-parameter bindings. *)

type t

val empty : t

val add : Uri_template.t -> Meth.t -> handler -> t -> t
(** Routes added later win ties on specificity. *)

val add_all : Uri_template.t -> (Meth.t * handler) list -> t -> t

val of_routes : (string * Meth.t * handler) list -> t
(** Build from template strings; raises [Invalid_argument] on a bad
    template. *)

val dispatch : t -> Request.t -> Response.t
(** Route and run the handler.  Handler exceptions become 500 responses —
    a cloud must answer every request. *)

val allowed_methods : t -> string -> Meth.t list
(** Methods routable for a concrete path. *)

val routes : t -> (Uri_template.t * Meth.t) list
(** All registered routes (template, method) — the monitor enumerates
    these to audit URI coverage. *)
