type t = GET | PUT | POST | DELETE | HEAD | PATCH | OPTIONS

let to_string = function
  | GET -> "GET"
  | PUT -> "PUT"
  | POST -> "POST"
  | DELETE -> "DELETE"
  | HEAD -> "HEAD"
  | PATCH -> "PATCH"
  | OPTIONS -> "OPTIONS"

let of_string s =
  match String.uppercase_ascii s with
  | "GET" -> Some GET
  | "PUT" -> Some PUT
  | "POST" -> Some POST
  | "DELETE" -> Some DELETE
  | "HEAD" -> Some HEAD
  | "PATCH" -> Some PATCH
  | "OPTIONS" -> Some OPTIONS
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Meth.of_string_exn: %S" s)

let equal a b = a = b
let compare = Stdlib.compare
let pp ppf m = Fmt.string ppf (to_string m)
let all = [ GET; PUT; POST; DELETE; HEAD; PATCH; OPTIONS ]
let is_safe = function GET | HEAD | OPTIONS -> true | PUT | POST | DELETE | PATCH -> false
let is_idempotent = function
  | GET | HEAD | OPTIONS | PUT | DELETE -> true
  | POST | PATCH -> false
