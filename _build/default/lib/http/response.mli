(** HTTP responses. *)

type t = {
  status : Status.t;
  headers : Headers.t;
  body : Cm_json.Json.t option;
}

val make : ?headers:Headers.t -> ?body:Cm_json.Json.t -> Status.t -> t
val ok : Cm_json.Json.t -> t
val created : Cm_json.Json.t -> t
val no_content : t
val error : Status.t -> string -> t
(** Error response with an OpenStack-style body:
    [{"error": {"code": ..., "title": ..., "message": ...}}]. *)

val error_message : t -> string option
(** Extract the message of an {!error}-shaped body. *)

val is_success : t -> bool
val pp : Format.formatter -> t -> unit
