type error = { position : int; message : string }

let pp_error ppf { position; message } =
  Fmt.pf ppf "JSON parse error at offset %d: %s" position message

exception Parse_error of error

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> fail st (Printf.sprintf "expected %C, found %C" c got)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let expect_keyword st keyword value =
  let len = String.length keyword in
  if
    st.pos + len <= String.length st.input
    && String.sub st.input st.pos len = keyword
  then begin
    st.pos <- st.pos + len;
    value
  end
  else fail st (Printf.sprintf "expected %s" keyword)

let is_digit c = c >= '0' && c <= '9'

(* UTF-8 encode one code point into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "invalid hex digit in \\u escape"
  in
  let take () =
    match peek st with
    | Some c ->
      advance st;
      digit c
    | None -> fail st "truncated \\u escape"
  in
  let d1 = take () in
  let d2 = take () in
  let d3 = take () in
  let d4 = take () in
  (d1 lsl 12) lor (d2 lsl 8) lor (d3 lsl 4) lor d4

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> fail st "unterminated escape"
       | Some c ->
         advance st;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let cp = parse_hex4 st in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* High surrogate: a low surrogate must follow. *)
              expect st '\\';
              expect st 'u';
              let low = parse_hex4 st in
              if low < 0xDC00 || low > 0xDFFF then
                fail st "invalid low surrogate"
              else
                add_utf8 buf
                  (0x10000 + (((cp - 0xD800) lsl 10) lor (low - 0xDC00)))
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then
              fail st "unpaired low surrogate"
            else add_utf8 buf cp
          | _ -> fail st (Printf.sprintf "invalid escape \\%c" c)));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
      advance st;
      digits ()
    | Some _ | None -> ()
  in
  (match peek st with
   | Some '0' -> advance st
   | Some c when is_digit c -> digits ()
   | Some _ | None -> fail st "invalid number");
  (match peek st with
   | Some '.' ->
     is_float := true;
     advance st;
     (match peek st with
      | Some c when is_digit c -> digits ()
      | Some _ | None -> fail st "digits expected after decimal point")
   | Some _ | None -> ());
  (match peek st with
   | Some ('e' | 'E') ->
     is_float := true;
     advance st;
     (match peek st with
      | Some ('+' | '-') -> advance st
      | Some _ | None -> ());
     (match peek st with
      | Some c when is_digit c -> digits ()
      | Some _ | None -> fail st "digits expected in exponent")
   | Some _ | None -> ());
  let text = String.sub st.input start (st.pos - start) in
  if !is_float then Json.Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Json.Int n
    | None -> Json.Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Json.String (parse_string st)
  | Some 't' -> expect_keyword st "true" (Json.Bool true)
  | Some 'f' -> expect_keyword st "false" (Json.Bool false)
  | Some 'n' -> expect_keyword st "null" Json.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Json.Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ((key, value) :: acc)
      | Some '}' ->
        advance st;
        List.rev ((key, value) :: acc)
      | Some c -> fail st (Printf.sprintf "expected ',' or '}', found %C" c)
      | None -> fail st "unterminated object"
    in
    Json.Obj (members [])
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Json.List []
  end
  else begin
    let rec elements acc =
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (value :: acc)
      | Some ']' ->
        advance st;
        List.rev (value :: acc)
      | Some c -> fail st (Printf.sprintf "expected ',' or ']', found %C" c)
      | None -> fail st "unterminated array"
    in
    Json.List (elements [])
  end

let parse input =
  let st = { input; pos = 0 } in
  match
    let value = parse_value st in
    skip_ws st;
    (match peek st with
     | Some _ -> fail st "trailing garbage after JSON document"
     | None -> ());
    value
  with
  | value -> Ok value
  | exception Parse_error err -> Error err

let parse_exn input =
  match parse input with
  | Ok value -> value
  | Error err -> failwith (Fmt.str "%a" pp_error err)
