let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string json =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Json.Null -> Buffer.add_string buf "null"
    | Json.Bool b -> Buffer.add_string buf (string_of_bool b)
    | Json.Int n -> Buffer.add_string buf (string_of_int n)
    | Json.Float f -> Buffer.add_string buf (float_repr f)
    | Json.String s -> escape_string buf s
    | Json.List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Json.Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit v)
        members;
      Buffer.add_char buf '}'
  in
  emit json;
  Buffer.contents buf

let to_string_pretty ?(indent = 2) json =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec emit depth = function
    | (Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _) as
      atom -> Buffer.add_string buf (to_string atom)
    | Json.List [] -> Buffer.add_string buf "[]"
    | Json.List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Json.Obj [] -> Buffer.add_string buf "{}"
    | Json.Obj members ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          escape_string buf k;
          Buffer.add_string buf ": ";
          emit (depth + 1) v)
        members;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf
