(** JSON text parser (RFC 8259 subset).

    Supports the full JSON grammar: objects, arrays, strings with escape
    sequences (including [\uXXXX] with surrogate pairs), numbers (integers
    parse to {!Json.Int}, anything with a fraction or exponent to
    {!Json.Float}), booleans and [null].  Duplicate object keys are kept
    (first occurrence wins on lookup, matching {!Json.member}). *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Json.t, error) result
(** Parse a complete JSON document.  Trailing garbage after the document is
    an error. *)

val parse_exn : string -> Json.t
(** Like {!parse} but raises [Failure] with a formatted message. *)
