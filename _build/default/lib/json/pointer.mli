(** Path-based access into JSON documents.

    Contract evaluation needs to read deep values out of cloud responses
    (e.g. the volume status inside [{"volume": {"status": "in-use"}}]).
    A {!path} is a sequence of object keys and list indices. *)

type step =
  | Key of string  (** descend into an object member *)
  | Index of int  (** descend into a list element *)

type path = step list

val parse : string -> (path, string) result
(** Parse a dotted path such as ["volume.status"] or
    ["volumes.0.id"]: components that are all digits become {!Index}
    steps, everything else a {!Key}.  The empty string is the empty path
    (the document root). *)

val parse_exn : string -> path
(** Like {!parse} but raises [Invalid_argument]. *)

val to_string : path -> string

val get : path -> Json.t -> Json.t option
(** Follow the path; [None] if any step does not match. *)

val set : path -> Json.t -> Json.t -> Json.t option
(** [set path value doc] replaces the value at [path] in [doc].  [None]
    when the path does not exist (no implicit creation — mutating a cloud
    record must target an existing field). *)

val exists : path -> Json.t -> bool
