(** JSON serialization. *)

val to_string : Json.t -> string
(** Compact, single-line serialization.  Strings are escaped per RFC 8259;
    non-ASCII bytes are passed through (documents stay UTF-8). *)

val to_string_pretty : ?indent:int -> Json.t -> string
(** Multi-line serialization with [indent] spaces per level (default 2) —
    the format used for generated [policy.json] files. *)
