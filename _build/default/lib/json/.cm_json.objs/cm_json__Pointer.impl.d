lib/json/pointer.ml: Json List Printf String
