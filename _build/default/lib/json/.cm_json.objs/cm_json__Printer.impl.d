lib/json/printer.ml: Buffer Char Float Json List Printf String
