lib/json/json.ml: Bool Float Fmt Int List Option Printf String
