lib/json/parser.mli: Format Json
