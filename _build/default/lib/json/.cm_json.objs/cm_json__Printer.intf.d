lib/json/printer.mli: Json
