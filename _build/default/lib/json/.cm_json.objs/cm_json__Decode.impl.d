lib/json/decode.ml: Json List Printf String
