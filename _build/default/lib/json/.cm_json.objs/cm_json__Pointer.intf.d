lib/json/pointer.mli: Json
