lib/json/parser.ml: Buffer Char Fmt Json List Printf String
