lib/json/decode.mli: Json
