(** Decoder combinators: typed extraction from JSON with error context.

    Used by the policy-file loaders and the simulated services to turn
    request bodies into typed values with precise error messages (the
    monitor reports {e why} a body was malformed, not just that it was). *)

type 'a t
(** A decoder producing ['a] or an error message with a path context. *)

val run : 'a t -> Json.t -> ('a, string) result
val run_exn : 'a t -> Json.t -> 'a

(** {1 Primitives} *)

val json : Json.t t
val null : unit t
val bool : bool t
val int : int t
val float : float t
val string : string t

(** {1 Structures} *)

val list : 'a t -> 'a list t
val field : string -> 'a t -> 'a t
(** Decode a required object member. *)

val field_opt : string -> 'a t -> 'a option t
(** [None] when the member is absent (but an error when present and
    malformed). *)

val at : string list -> 'a t -> 'a t
(** Descend through nested required members. *)

val keys : string list t
(** The member names of an object. *)

(** {1 Combinators} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val bind : ('a -> 'b t) -> 'a t -> 'b t
val both : 'a t -> 'b t -> ('a * 'b) t
val succeed : 'a -> 'a t
val fail : string -> 'a t
val one_of : 'a t list -> 'a t
(** First decoder that succeeds; error lists all attempts otherwise. *)

val default : 'a -> 'a t -> 'a t
(** Fall back to a value when the decoder fails. *)
