type step = Key of string | Index of int
type path = step list

let is_all_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let parse text =
  if text = "" then Ok []
  else begin
    let components = String.split_on_char '.' text in
    let step_of_component c =
      if c = "" then Error "empty path component"
      else if is_all_digits c then Ok (Index (int_of_string c))
      else Ok (Key c)
    in
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest ->
        (match step_of_component c with
         | Ok step -> build (step :: acc) rest
         | Error _ as err -> err)
    in
    build [] components
  end

let parse_exn text =
  match parse text with
  | Ok path -> path
  | Error msg -> invalid_arg (Printf.sprintf "Pointer.parse_exn: %s" msg)

let to_string path =
  String.concat "."
    (List.map (function Key k -> k | Index i -> string_of_int i) path)

let rec get path json =
  match path with
  | [] -> Some json
  | Key k :: rest ->
    (match Json.member k json with
     | Some value -> get rest value
     | None -> None)
  | Index i :: rest ->
    (match Json.index i json with
     | Some value -> get rest value
     | None -> None)

let rec set path value json =
  match path with
  | [] -> Some value
  | Key k :: rest ->
    (match json with
     | Json.Obj members when List.mem_assoc k members ->
       let replace (key, old) =
         if key = k then
           match set rest value old with
           | Some updated -> Some (key, updated)
           | None -> None
         else Some (key, old)
       in
       let updated = List.map replace members in
       if List.exists (fun m -> m = None) updated then None
       else Some (Json.Obj (List.filter_map (fun m -> m) updated))
     | _ -> None)
  | Index i :: rest ->
    (match json with
     | Json.List items when i >= 0 && i < List.length items ->
       let updated =
         List.mapi
           (fun j item ->
             if j = i then set rest value item else Some item)
           items
       in
       if List.exists (fun m -> m = None) updated then None
       else Some (Json.List (List.filter_map (fun m -> m) updated))
     | _ -> None)

let exists path json = get path json <> None
