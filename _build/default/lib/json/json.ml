type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let null = Null
let bool b = Bool b
let int n = Int n
let float f = Float f
let string s = String s
let list items = List items
let obj members = Obj members

let member key = function
  | Obj members -> List.assoc_opt key members
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let member_exn key json =
  match member key json with
  | Some value -> value
  | None -> invalid_arg (Printf.sprintf "Json.member_exn: no key %S" key)

let index i = function
  | List items -> List.nth_opt items i
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string = function String s -> Some s | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_obj = function Obj members -> Some members | _ -> None

let keys = function
  | Obj members -> List.map fst members
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> []

let rec sort_keys = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom -> atom
  | List items -> List (List.map sort_keys items)
  | Obj members ->
    let sorted =
      List.sort_uniq
        (fun (k1, _) (k2, _) -> String.compare k1 k2)
        (List.map (fun (k, v) -> (k, sort_keys v)) members)
    in
    Obj sorted

(* Numeric values compare by magnitude so that [Int 1] = [Float 1.]: cloud
   responses are free to serialize counters either way. *)
let rec compare_norm a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | String _ -> 3
    | List _ -> 4
    | Obj _ -> 5
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | (Int _ | Float _), (Int _ | Float _) ->
    let fx = match a with Int n -> float_of_int n | Float f -> f | _ -> 0. in
    let fy = match b with Int n -> float_of_int n | Float f -> f | _ -> 0. in
    Float.compare fx fy
  | String x, String y -> String.compare x y
  | List xs, List ys -> compare_lists xs ys
  | Obj xs, Obj ys -> compare_members xs ys
  | _ -> Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare_norm x y in
    if c <> 0 then c else compare_lists xs' ys'

and compare_members xs ys =
  compare_lists
    (List.map (fun (k, v) -> List [ String k; v ]) xs)
    (List.map (fun (k, v) -> List [ String k; v ]) ys)

let compare a b = compare_norm (sort_keys a) (sort_keys b)
let equal a b = compare a b = 0

let rec merge_patch target ~patch =
  match patch with
  | Obj patch_members ->
    let base = match target with Obj members -> members | _ -> [] in
    let merged =
      List.fold_left
        (fun acc (key, value) ->
          let without = List.remove_assoc key acc in
          match value with
          | Null -> without
          | Obj _ ->
            let old = Option.value ~default:(Obj []) (List.assoc_opt key acc) in
            without @ [ (key, merge_patch old ~patch:value) ]
          | _ -> without @ [ (key, value) ])
        base patch_members
    in
    Obj merged
  | _ -> patch

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | List items -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) items
  | Obj members ->
    let pp_member ppf (k, v) = Fmt.pf ppf "%S: %a" k pp v in
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_member) members
