type 'a t = Json.t -> ('a, string) result

let run decode json = decode json

let run_exn decode json =
  match decode json with
  | Ok value -> value
  | Error msg -> failwith ("Decode.run_exn: " ^ msg)

let type_name = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ -> "int"
  | Json.Float _ -> "float"
  | Json.String _ -> "string"
  | Json.List _ -> "list"
  | Json.Obj _ -> "object"

let wrong_type expected json =
  Error (Printf.sprintf "expected %s, found %s" expected (type_name json))

let json j = Ok j

let null = function
  | Json.Null -> Ok ()
  | other -> wrong_type "null" other

let bool = function
  | Json.Bool b -> Ok b
  | other -> wrong_type "bool" other

let int = function
  | Json.Int n -> Ok n
  | other -> wrong_type "int" other

let float = function
  | Json.Float f -> Ok f
  | Json.Int n -> Ok (float_of_int n)
  | other -> wrong_type "float" other

let string = function
  | Json.String s -> Ok s
  | other -> wrong_type "string" other

let list decode = function
  | Json.List items ->
    let rec loop i acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        (match decode item with
         | Ok value -> loop (i + 1) (value :: acc) rest
         | Error msg -> Error (Printf.sprintf "[%d]: %s" i msg))
    in
    loop 0 [] items
  | other -> wrong_type "list" other

let field key decode json =
  match Json.member key json with
  | Some value ->
    (match decode value with
     | Ok _ as ok -> ok
     | Error msg -> Error (Printf.sprintf "%S: %s" key msg))
  | None ->
    (match json with
     | Json.Obj _ -> Error (Printf.sprintf "missing field %S" key)
     | other -> wrong_type "object" other)

let field_opt key decode json =
  match Json.member key json with
  | Some value ->
    (match decode value with
     | Ok v -> Ok (Some v)
     | Error msg -> Error (Printf.sprintf "%S: %s" key msg))
  | None ->
    (match json with
     | Json.Obj _ -> Ok None
     | other -> wrong_type "object" other)

let rec at path decode =
  match path with
  | [] -> decode
  | key :: rest -> field key (at rest decode)

let keys = function
  | Json.Obj members -> Ok (List.map fst members)
  | other -> wrong_type "object" other

let map f decode json =
  match decode json with Ok v -> Ok (f v) | Error _ as err -> err

let bind f decode json =
  match decode json with Ok v -> f v json | Error _ as err -> err

let both a b json =
  match a json with
  | Error _ as err -> err
  | Ok va ->
    (match b json with Ok vb -> Ok (va, vb) | Error msg -> Error msg)

let succeed value _ = Ok value
let fail msg _ = Error msg

let one_of decoders json =
  let rec loop errors = function
    | [] ->
      Error
        (Printf.sprintf "no alternative matched: %s"
           (String.concat "; " (List.rev errors)))
    | decode :: rest ->
      (match decode json with
       | Ok _ as ok -> ok
       | Error msg -> loop (msg :: errors) rest)
  in
  loop [] decoders

let default value decode json =
  match decode json with Ok _ as ok -> ok | Error _ -> Ok value
