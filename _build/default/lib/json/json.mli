(** JSON values.

    This module defines the JSON value type used throughout the cloud
    monitor: request and response bodies, [policy.json]-style RBAC policy
    files and configuration all use {!t}.  The representation keeps object
    members in insertion order so that generated artifacts are
    deterministic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Constructors} *)

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t
val list : t list -> t
val obj : (string * t) list -> t

(** {1 Accessors}

    Accessors return [None] rather than raising when the shape does not
    match; the monitor must never crash on a malformed cloud response. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] if [json] is an object
    containing [key]. *)

val member_exn : string -> t -> t
(** Like {!member} but raises [Invalid_argument] when absent. *)

val index : int -> t -> t option
(** [index i json] is the [i]-th element if [json] is a list. *)

val to_bool : t -> bool option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] accepts both [Float] and [Int] values. *)

val to_string : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option

val keys : t -> string list
(** Keys of an object, in order; [[]] for non-objects. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality.  Object member {e order is ignored}; duplicate
    keys compare by first occurrence.  [Int n] and [Float f] are equal when
    [float_of_int n = f]. *)

val compare : t -> t -> int
(** A total order compatible with {!equal} on order-normalised values. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print for debugging (compact, single-line). *)

val sort_keys : t -> t
(** Recursively sort object members by key — canonical form. *)

val merge_patch : t -> patch:t -> t
(** RFC 7386 JSON merge patch: [patch] members overwrite the target's,
    [Null] members delete, nested objects merge recursively; a non-object
    patch replaces the target entirely.  This is the semantics partial
    PUT bodies carry in the simulated services. *)
