lib/cloudsim/faults.mli: Cm_http Cm_rbac
