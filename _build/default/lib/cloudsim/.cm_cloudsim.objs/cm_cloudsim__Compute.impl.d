lib/cloudsim/compute.ml: Cm_http Cm_json Guarded List Option Store
