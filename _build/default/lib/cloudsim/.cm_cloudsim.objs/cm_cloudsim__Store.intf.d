lib/cloudsim/store.mli: Cm_json Hashtbl
