lib/cloudsim/identity.mli: Cm_http Cm_rbac
