lib/cloudsim/block_storage.mli: Cm_http Guarded Store
