lib/cloudsim/cloud.mli: Cm_http Cm_rbac Faults Identity Store
