lib/cloudsim/cloud.ml: Block_storage Cm_http Cm_rbac Compute Guarded Identity Image_service List Store
