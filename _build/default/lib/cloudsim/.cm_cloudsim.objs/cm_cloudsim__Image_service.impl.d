lib/cloudsim/image_service.ml: Cm_http Cm_json Faults Guarded List Listing Option Printf Store
