lib/cloudsim/listing.ml: Cm_http List
