lib/cloudsim/compute.mli: Cm_http Guarded Store
