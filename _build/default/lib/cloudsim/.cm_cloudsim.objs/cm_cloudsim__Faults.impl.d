lib/cloudsim/faults.ml: Cm_http Cm_rbac List Printf
