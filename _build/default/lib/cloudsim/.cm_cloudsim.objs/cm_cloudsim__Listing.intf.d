lib/cloudsim/listing.mli: Cm_http
