lib/cloudsim/guarded.ml: Cm_http Cm_rbac Faults Identity Printf
