lib/cloudsim/block_storage.ml: Cm_http Cm_json Cm_rbac Faults Guarded Identity List Listing Option Store
