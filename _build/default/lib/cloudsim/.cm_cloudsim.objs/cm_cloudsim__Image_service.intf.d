lib/cloudsim/image_service.mli: Cm_http Guarded Store
