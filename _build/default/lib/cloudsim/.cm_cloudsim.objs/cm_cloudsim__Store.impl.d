lib/cloudsim/store.ml: Cm_json Hashtbl List Printf String
