lib/cloudsim/identity.ml: Cm_http Cm_json Cm_rbac Hashtbl List Option Printf
