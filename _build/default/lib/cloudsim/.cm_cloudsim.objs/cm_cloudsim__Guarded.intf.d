lib/cloudsim/guarded.mli: Cm_http Cm_rbac Faults Identity
