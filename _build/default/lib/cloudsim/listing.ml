module Request = Cm_http.Request

let paginate req items ~id_of =
  let after_marker items =
    match Request.query_param "marker" req with
    | None -> Ok items
    | Some marker ->
      let rec drop = function
        | [] -> []
        | item :: rest -> if id_of item = marker then rest else drop rest
      in
      (match List.find_opt (fun item -> id_of item = marker) items with
       | Some _ -> Ok (drop items)
       | None -> Error "marker not found")
  in
  let limited items =
    match Request.query_param "limit" req with
    | None -> Ok items
    | Some text ->
      (match int_of_string_opt text with
       | Some n when n >= 0 -> Ok (List.filteri (fun i _ -> i < n) items)
       | Some _ | None -> Error "limit must be a non-negative integer")
  in
  match after_marker items with
  | Error _ as err -> err
  | Ok items -> limited items

let filter_param req name field items =
  match Request.query_param name req with
  | Some wanted -> List.filter (fun item -> field item = wanted) items
  | None -> items
