(** The Cinder-like block-storage service.

    Volumes are detachable block storage devices that act like hard
    disks; projects hold a quota limiting how many volumes (and how many
    gigabytes) can be created.  The HTTP surface mirrors the Cinder v3
    API shapes the paper works against:

    - [GET    /v3/{project_id}/volumes] — list ([{"volumes": [...]}])
    - [POST   /v3/{project_id}/volumes] — create; 413 over quota
    - [GET    /v3/{project_id}/volumes/{volume_id}] — show
    - [PUT    /v3/{project_id}/volumes/{volume_id}] — update; 400 if in-use
    - [DELETE /v3/{project_id}/volumes/{volume_id}] — delete; 400 if in-use
    - [POST   /v3/{project_id}/volumes/{volume_id}/action] — os-attach /
      os-detach
    - [GET    /v3/{project_id}/quota_sets] — the project's quota
    - [GET    /v3/{project_id}/usergroups] — groups with roles in the
      project
    - [GET    /v3/{project_id}] — project detail
    - [GET    /v3] — list projects *)

type t

val create : store:Store.t -> ctx:Guarded.ctx -> t
val routes : t -> (string * Cm_http.Meth.t * Cm_http.Router.handler) list
