(** The Glance-like image service.

    A second fully-modelled service beside Cinder, demonstrating that
    the model-to-monitor pipeline is not volume-specific.  Images have a
    lifecycle of their own: they are created [queued], must be activated
    before use, and an [active] image cannot be deleted (deactivate
    first) — the behavioural guard analogous to a volume being in-use.
    Projects carry an image quota.

    - [GET    /v3/{project_id}/images] — list ([{"images": [...]}])
    - [POST   /v3/{project_id}/images] — create (status [queued]);
      413 over the image quota
    - [GET    /v3/{project_id}/images/{image_id}] — show
    - [PUT    /v3/{project_id}/images/{image_id}] — update name,
      visibility, or status (legal status moves: queued→active,
      active→deactivated, deactivated→active; anything else is 400)
    - [DELETE /v3/{project_id}/images/{image_id}] — delete; 400 while
      [active] *)

type t

val create : store:Store.t -> ctx:Guarded.ctx -> t
val routes : t -> (string * Cm_http.Meth.t * Cm_http.Router.handler) list

val legal_status_move : string -> string -> bool
(** [legal_status_move current requested]. *)
