module Json = Cm_json.Json
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status

type t = { store : Store.t; ctx : Guarded.ctx }

let create ~store ~ctx = { store; ctx }

let ( let* ) r f = match r with Ok v -> f v | Error resp -> resp

let with_project t bindings f =
  let project_id =
    Option.value ~default:"" (List.assoc_opt "project_id" bindings)
  in
  match Store.find_project t.store project_id with
  | None -> Response.error Status.not_found "project not found"
  | Some project -> f project

let with_server project bindings f =
  let server_id =
    Option.value ~default:"" (List.assoc_opt "server_id" bindings)
  in
  match Store.find_server project server_id with
  | None -> Response.error Status.not_found "server not found"
  | Some server -> f server

let body_volume_id req =
  match req.Request.body with
  | Some body ->
    (match Cm_json.Pointer.get [ Key "volume_id" ] body with
     | Some (Json.String id) -> Some id
     | Some _ | None -> None)
  | None -> None

let list_servers t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"servers:get"
          ~project_id:project.Store.project_id req
      in
      Response.ok
        (Json.obj
           [ ( "servers",
               Json.list (List.map Store.server_json (Store.servers project)) )
           ]))

let create_server t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"server:create"
          ~project_id:project.Store.project_id req
      in
      let name =
        match req.Request.body with
        | Some body ->
          (match Cm_json.Pointer.get [ Key "server"; Key "name" ] body with
           | Some (Json.String n) -> n
           | Some _ | None -> "server")
        | None -> "server"
      in
      let server = Store.add_server t.store project ~name in
      Response.created (Json.obj [ ("server", Store.server_json server) ]))

let show_server t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"server:get"
          ~project_id:project.Store.project_id req
      in
      with_server project bindings (fun server ->
          Response.ok (Json.obj [ ("server", Store.server_json server) ])))

let delete_server t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"server:delete"
          ~project_id:project.Store.project_id req
      in
      with_server project bindings (fun server ->
          (* Deleting a server releases its volumes. *)
          List.iter
            (fun (v : Store.volume) ->
              match v.attached_to with
              | Some sid when sid = server.Store.server_id ->
                v.status <- "available";
                v.attached_to <- None
              | Some _ | None -> ())
            (Store.volumes project);
          ignore (Store.remove_server project server.Store.server_id);
          Response.no_content))

let attach_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:attach"
          ~project_id:project.Store.project_id req
      in
      with_server project bindings (fun server ->
          match body_volume_id req with
          | None -> Response.error Status.bad_request "missing volume_id"
          | Some volume_id ->
            (match Store.find_volume project volume_id with
             | None -> Response.error Status.not_found "volume not found"
             | Some volume ->
               if volume.Store.status = "in-use" then
                 Response.error Status.conflict "volume already attached"
               else begin
                 volume.Store.status <- "in-use";
                 volume.Store.attached_to <- Some server.Store.server_id;
                 Response.make Status.accepted
               end)))

let detach_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:detach"
          ~project_id:project.Store.project_id req
      in
      with_server project bindings (fun server ->
          match body_volume_id req with
          | None -> Response.error Status.bad_request "missing volume_id"
          | Some volume_id ->
            (match Store.find_volume project volume_id with
             | None -> Response.error Status.not_found "volume not found"
             | Some volume ->
               (match volume.Store.attached_to with
                | Some sid when sid = server.Store.server_id ->
                  volume.Store.status <- "available";
                  volume.Store.attached_to <- None;
                  Response.make Status.accepted
                | Some _ | None ->
                  Response.error Status.conflict
                    "volume is not attached to this server"))))

let routes t =
  let open Cm_http.Meth in
  [ ("/v3/{project_id}/servers", GET, list_servers t);
    ("/v3/{project_id}/servers", POST, create_server t);
    ("/v3/{project_id}/servers/{server_id}", GET, show_server t);
    ("/v3/{project_id}/servers/{server_id}", DELETE, delete_server t);
    ("/v3/{project_id}/servers/{server_id}/attach", POST, attach_volume t);
    ("/v3/{project_id}/servers/{server_id}/detach", POST, detach_volume t)
  ]
