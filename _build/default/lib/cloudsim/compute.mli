(** The Nova-lite compute service.

    Just enough of a compute API to exercise the volume lifecycle end to
    end: servers can be created and deleted, and volumes attach to
    servers (which is what makes a volume [in-use] and hence
    undeletable).

    - [GET    /v3/{project_id}/servers]
    - [POST   /v3/{project_id}/servers]
    - [GET    /v3/{project_id}/servers/{server_id}]
    - [DELETE /v3/{project_id}/servers/{server_id}] — detaches all of
      the server's volumes first
    - [POST   /v3/{project_id}/servers/{server_id}/attach] with
      [{"volume_id": ...}]
    - [POST   /v3/{project_id}/servers/{server_id}/detach] with
      [{"volume_id": ...}] *)

type t

val create : store:Store.t -> ctx:Guarded.ctx -> t
val routes : t -> (string * Cm_http.Meth.t * Cm_http.Router.handler) list
