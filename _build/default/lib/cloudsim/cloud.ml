module Policy = Cm_rbac.Policy

type t = {
  store : Store.t;
  identity : Identity.t;
  ctx : Guarded.ctx;
  router : Cm_http.Router.t;
}

let default_policy =
  let admin_or_member = Policy.Or (Policy.Role "admin", Policy.Role "member") in
  let any_project_role =
    Policy.Or (admin_or_member, Policy.Role "user")
  in
  Policy.of_list
    [ ("volumes:get", any_project_role);
      ("volume:get", any_project_role);
      ("volume:create", admin_or_member);
      ("volume:update", admin_or_member);
      ("volume:delete", Policy.Role "admin");
      ("volume:attach", admin_or_member);
      ("volume:detach", admin_or_member);
      ("snapshots:get", any_project_role);
      ("snapshot:get", any_project_role);
      ("snapshot:create", admin_or_member);
      ("snapshot:delete", Policy.Role "admin");
      ("images:get", any_project_role);
      ("image:get", any_project_role);
      ("image:create", admin_or_member);
      ("image:update", admin_or_member);
      ("image:delete", Policy.Role "admin");
      ("quota_sets:get", any_project_role);
      ("usergroups:get", any_project_role);
      ("project:get", any_project_role);
      ("servers:get", any_project_role);
      ("server:get", any_project_role);
      ("server:create", admin_or_member);
      ("server:delete", Policy.Role "admin")
    ]

let create ?(policy = default_policy) () =
  let store = Store.create () in
  let identity = Identity.create () in
  let ctx = Guarded.make ~identity ~policy in
  let block_storage = Block_storage.create ~store ~ctx in
  let compute = Compute.create ~store ~ctx in
  let image_service = Image_service.create ~store ~ctx in
  let router =
    Cm_http.Router.of_routes
      (Identity.routes identity @ Block_storage.routes block_storage
      @ Compute.routes compute
      @ Image_service.routes image_service)
  in
  { store; identity; ctx; router }

let handle t req = Cm_http.Router.dispatch t.router req
let store t = t.store
let identity t = t.identity
let set_faults t faults = Guarded.set_faults t.ctx faults
let faults t = Guarded.faults t.ctx

type seed = {
  seed_project_id : string;
  seed_project_name : string;
  seed_quota_volumes : int;
  seed_quota_gigabytes : int;
  seed_quota_images : int;
  seed_assignment : Cm_rbac.Role_assignment.t;
  seed_users : (Cm_rbac.Subject.t * string) list;
}

let seed t s =
  ignore
    (Store.add_project t.store ~id:s.seed_project_id ~name:s.seed_project_name
       ~quota_volumes:s.seed_quota_volumes
       ~quota_gigabytes:s.seed_quota_gigabytes
       ~quota_images:s.seed_quota_images ());
  Identity.set_assignment t.identity ~project_id:s.seed_project_id
    s.seed_assignment;
  List.iter
    (fun (subject, password) -> Identity.add_user t.identity ~password subject)
    s.seed_users

let my_project =
  { seed_project_id = "myProject";
    seed_project_name = "myProject";
    seed_quota_volumes = 3;
    seed_quota_gigabytes = 100;
    seed_quota_images = 2;
    seed_assignment = Cm_rbac.Security_table.cinder_assignment;
    seed_users =
      [ (Cm_rbac.Subject.make "alice" [ "proj_administrator" ], "alice-pw");
        (Cm_rbac.Subject.make "bob" [ "service_architect" ], "bob-pw");
        (Cm_rbac.Subject.make "carol" [ "business_analyst" ], "carol-pw")
      ]
  }

let login t ~user ~password ~project_id =
  Identity.issue_token t.identity ~user ~password ~project_id
