(** Listing pagination and filtering, shared by the services.

    OpenStack listings accept [?limit=N], [?marker=<id>] (resume
    strictly after that id) and per-service field filters. *)

val paginate :
  Cm_http.Request.t ->
  'a list ->
  id_of:('a -> string) ->
  ('a list, string) result
(** Apply marker, then limit.  Errors ("marker not found", negative or
    non-integer limit) should surface as 400s. *)

val filter_param :
  Cm_http.Request.t -> string -> ('a -> string) -> 'a list -> 'a list
(** [filter_param req name field items] keeps items whose [field] equals
    the query parameter [name], when present. *)
