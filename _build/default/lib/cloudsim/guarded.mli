(** Authentication and policy enforcement shared by the simulated
    services (the Keystone middleware every OpenStack service mounts).

    Order of checks, matching OpenStack semantics: missing/invalid token
    -> 401; token scoped to a different project -> 403; policy denies
    the action for the subject's roles/groups -> 403.  Fault injection
    can skip, deny or override the policy decision. *)

type ctx = {
  identity : Identity.t;
  policy : Cm_rbac.Policy.t;
  faults : Faults.set ref;
}

val make : identity:Identity.t -> policy:Cm_rbac.Policy.t -> ctx
(** Starts with no faults. *)

val set_faults : ctx -> Faults.set -> unit
val faults : ctx -> Faults.set

val authorize :
  ctx ->
  action:string ->
  project_id:string ->
  Cm_http.Request.t ->
  (Identity.token_info, Cm_http.Response.t) result
