module BM = Cm_uml.Behavior_model
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value

type auth_change = {
  roles_gained : string list;
  roles_lost : string list;
}

type behaviour_change = {
  weakened_on : int;
  strengthened_on : int;
  sample_size : int;
}

type change =
  | Trigger_added of BM.trigger
  | Trigger_removed of BM.trigger
  | Authorization_changed of BM.trigger * auth_change
  | Precondition_changed of BM.trigger * behaviour_change
  | Postcondition_changed of BM.trigger * behaviour_change

let is_security_relevant = function
  | Trigger_added _ | Trigger_removed _ | Authorization_changed (_, _) ->
    true
  | Precondition_changed (_, { weakened_on; _ }) -> weakened_on > 0
  | Postcondition_changed (_, _) -> false

let pp_change ppf = function
  | Trigger_added trigger ->
    Fmt.pf ppf "trigger added: %a" BM.pp_trigger trigger
  | Trigger_removed trigger ->
    Fmt.pf ppf "trigger removed: %a" BM.pp_trigger trigger
  | Authorization_changed (trigger, { roles_gained; roles_lost }) ->
    Fmt.pf ppf "authorization of %a changed:%s%s" BM.pp_trigger trigger
      (if roles_gained = [] then ""
       else
         Printf.sprintf " roles gained {%s} (privilege escalation risk)"
           (String.concat ", " roles_gained))
      (if roles_lost = [] then ""
       else
         Printf.sprintf " roles lost {%s} (legitimate access removed)"
           (String.concat ", " roles_lost))
  | Precondition_changed (trigger, { weakened_on; strengthened_on; sample_size })
    ->
    Fmt.pf ppf
      "precondition of %a changed: weakened on %d and strengthened on %d of \
       %d sampled states"
      BM.pp_trigger trigger weakened_on strengthened_on sample_size
  | Postcondition_changed (trigger, { weakened_on; strengthened_on; sample_size })
    ->
    Fmt.pf ppf
      "postcondition of %a changed: weakened on %d and strengthened on %d of \
       %d sampled state pairs"
      BM.pp_trigger trigger weakened_on strengthened_on sample_size

type report = {
  changes : change list;
  security_relevant : change list;
}

let roles_for table (trigger : BM.trigger) =
  match
    Cm_rbac.Security_table.find ~resource:trigger.resource ~meth:trigger.meth
      table
  with
  | Some entry -> List.sort_uniq String.compare entry.Cm_rbac.Security_table.roles
  | None -> []

let tri env expr = Eval.check env expr

(* Compare two boolean expressions over the sample: in how many states
   does the new one accept what the old rejected (weakened) and
   vice-versa?  Unknown verdicts are skipped (insufficient
   observation). *)
let drift ~old_expr ~new_expr sample =
  let weakened = ref 0 and strengthened = ref 0 and counted = ref 0 in
  List.iter
    (fun env ->
      match tri env old_expr, tri env new_expr with
      | Value.True, Value.False ->
        incr counted;
        incr strengthened
      | Value.False, Value.True ->
        incr counted;
        incr weakened
      | Value.True, Value.True | Value.False, Value.False -> incr counted
      | Value.Unknown, _ | _, Value.Unknown -> ())
    sample;
  { weakened_on = !weakened; strengthened_on = !strengthened;
    sample_size = !counted
  }

(* Postconditions mention the pre-state, so evaluate over sampled
   (pre, post) pairs: each sample state as pre against each as post
   would be quadratic; pair consecutive states instead, which covers
   both same-state and changed-state transitions. *)
let post_drift ~old_expr ~new_expr sample =
  let pairs =
    let rec loop = function
      | a :: (b :: _ as rest) -> (a, b) :: (a, a) :: loop rest
      | [ last ] -> [ (last, last) ]
      | [] -> []
    in
    loop sample
  in
  let weakened = ref 0 and strengthened = ref 0 and counted = ref 0 in
  List.iter
    (fun (pre_env, post_env) ->
      let env = Eval.with_pre ~pre:pre_env post_env in
      match tri env old_expr, tri env new_expr with
      | Value.True, Value.False ->
        incr counted;
        incr strengthened
      | Value.False, Value.True ->
        incr counted;
        incr weakened
      | Value.True, Value.True | Value.False, Value.False -> incr counted
      | Value.Unknown, _ | _, Value.Unknown -> ())
    pairs;
  { weakened_on = !weakened; strengthened_on = !strengthened;
    sample_size = !counted
  }

let compare ~old_version ~new_version ~sample =
  let old_machine, old_table, old_assignment = old_version in
  let new_machine, new_table, new_assignment = new_version in
  let generate machine table assignment =
    Generate.all ~security:{ Generate.table; assignment } machine
  in
  match
    ( generate old_machine old_table old_assignment,
      generate new_machine new_table new_assignment )
  with
  | Error msg, _ -> Error ("old version: " ^ msg)
  | _, Error msg -> Error ("new version: " ^ msg)
  | Ok old_contracts, Ok new_contracts ->
    let find contracts trigger =
      List.find_opt
        (fun (c : Contract.t) -> BM.trigger_equal c.trigger trigger)
        contracts
    in
    let changes = ref [] in
    let add change = changes := change :: !changes in
    (* removed triggers *)
    List.iter
      (fun (c : Contract.t) ->
        if find new_contracts c.trigger = None then
          add (Trigger_removed c.trigger))
      old_contracts;
    (* added + changed triggers *)
    List.iter
      (fun (new_c : Contract.t) ->
        match find old_contracts new_c.trigger with
        | None -> add (Trigger_added new_c.trigger)
        | Some old_c ->
          (* authorization, from the tables *)
          let old_roles = roles_for old_table new_c.trigger in
          let new_roles = roles_for new_table new_c.trigger in
          let gained = List.filter (fun r -> not (List.mem r old_roles)) new_roles in
          let lost = List.filter (fun r -> not (List.mem r new_roles)) old_roles in
          if gained <> [] || lost <> [] then
            add
              (Authorization_changed
                 (new_c.trigger, { roles_gained = gained; roles_lost = lost }));
          (* behavioural precondition *)
          let pre_change =
            drift ~old_expr:old_c.Contract.functional_pre
              ~new_expr:new_c.Contract.functional_pre sample
          in
          if pre_change.weakened_on > 0 || pre_change.strengthened_on > 0 then
            add (Precondition_changed (new_c.trigger, pre_change));
          (* postcondition *)
          let post_change =
            post_drift ~old_expr:old_c.Contract.post
              ~new_expr:new_c.Contract.post sample
          in
          if post_change.weakened_on > 0 || post_change.strengthened_on > 0
          then add (Postcondition_changed (new_c.trigger, post_change)))
      new_contracts;
    let changes = List.rev !changes in
    Ok
      { changes;
        security_relevant = List.filter is_security_relevant changes
      }

let render report =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if report.changes = [] then
    line "no semantic drift between the two releases"
  else begin
    line "release comparison: %d change(s), %d security-relevant"
      (List.length report.changes)
      (List.length report.security_relevant);
    List.iter
      (fun change ->
        line "  %s %s"
          (if is_security_relevant change then "[SECURITY]" else "[ok]      ")
          (Fmt.str "%a" pp_change change))
      report.changes
  end;
  Buffer.contents buf
