(** Contract generation from the behavioral model and security table.

    This is the translation of §V: for every trigger of the state
    machine, the transitions it fires are combined into one pre- and one
    postcondition.  When a security table is supplied, its authorization
    guard (over the project's role assignment) is conjoined into every
    branch precondition — step 3 of the views.py population (§VI). *)

type security = {
  table : Cm_rbac.Security_table.t;
  assignment : Cm_rbac.Role_assignment.t;
}

val contract_for :
  ?security:security ->
  Cm_uml.Behavior_model.t ->
  Cm_uml.Behavior_model.trigger ->
  (Contract.t, string) result
(** [Error] when the trigger fires no transition. *)

val all :
  ?security:security -> Cm_uml.Behavior_model.t -> (Contract.t list, string) result
(** One contract per distinct trigger, in trigger order.  Also checks
    each generated contract against the model's signature when one can
    be derived. *)

val typecheck :
  Cm_uml.Resource_model.t -> Contract.t -> Cm_ocl.Typecheck.error list
(** Both pre and post must be boolean over the derived signature. *)
