type strategy = Lean | Full

type prepared = {
  contract : Contract.t;
  strategy : strategy;
  compiled : Snapshot.compiled;
}

let prepare ?(strategy = Lean) contract =
  { contract; strategy; compiled = Snapshot.compile contract.Contract.post }

let contract p = p.contract
let strategy p = p.strategy

let verdict_of_tribool tb hint =
  match tb with
  | Cm_ocl.Value.True -> Cm_ocl.Eval.Holds
  | Cm_ocl.Value.False -> Cm_ocl.Eval.Violated
  | Cm_ocl.Value.Unknown -> Cm_ocl.Eval.Undefined_verdict hint

let check_pre p env = Cm_ocl.Eval.verdict env p.contract.Contract.pre

let covered_requirements p env =
  Contract.active_branches p.contract env
  |> List.concat_map (fun b -> b.Contract.branch_requirements)
  |> List.sort_uniq String.compare

type snapshot =
  | Lean_values of Snapshot.taken
  | Full_env of Cm_ocl.Eval.env

let take_snapshot p env =
  match p.strategy with
  | Lean -> Lean_values (Snapshot.take p.compiled env)
  | Full -> Full_env env

let snapshot_bytes = function
  | Lean_values taken -> Snapshot.size_bytes taken
  | Full_env env -> Snapshot.full_size_bytes env

let check_post p snapshot env =
  match snapshot with
  | Lean_values taken ->
    verdict_of_tribool
      (Snapshot.check_post_lean p.compiled taken env)
      "postcondition undefined"
  | Full_env pre ->
    verdict_of_tribool
      (Snapshot.check_post_full p.contract.Contract.post ~pre env)
      "postcondition undefined"
