(** Method contracts (Design by Contract, §V of the paper).

    A contract belongs to one trigger — an HTTP method on a resource —
    and combines every state-machine transition fired by that trigger:

    - the precondition is the disjunction over transitions of
      [invariant(source) and guard], each conjoined with the
      authorization guard derived from the security table;
    - the postcondition is the conjunction over transitions of
      [pre(invariant(source) and guard) implies
       (invariant(target) and effect)] — the implication antecedent
      refers to the state {e before} the call. *)

type branch = {
  source : string;
  target : string;
  branch_pre : Cm_ocl.Ast.expr;  (** inv(source) ∧ guard ∧ auth *)
  branch_post : Cm_ocl.Ast.expr;  (** inv(target) ∧ effect *)
  branch_requirements : string list;
}

type t = {
  trigger : Cm_uml.Behavior_model.trigger;
  pre : Cm_ocl.Ast.expr;
  post : Cm_ocl.Ast.expr;
  functional_pre : Cm_ocl.Ast.expr;
      (** the behavioural part alone: ∨ (inv(source) ∧ guard) — what must
          hold for the call to be {e possible} *)
  auth_guard : Cm_ocl.Ast.expr option;
      (** the security part alone: who may make the call ([None] when no
          security table was supplied) *)
  branches : branch list;
  requirements : string list;  (** all SecReq ids the contract covers *)
}

val pre_of_branches : branch list -> Cm_ocl.Ast.expr
val post_of_branches : branch list -> Cm_ocl.Ast.expr

val active_branches : t -> Cm_ocl.Eval.env -> branch list
(** Branches whose precondition holds in the environment — the
    requirement-coverage signal ("when a state or transition with the
    requirement annotation is traversed, we get an indication which
    security requirement is met", §IV-C). *)

val pp : Format.formatter -> t -> unit
(** Listing-1 layout: [PreCondition(...)] / [PostCondition(...)]. *)
