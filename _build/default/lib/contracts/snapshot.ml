module Ast = Cm_ocl.Ast

type compiled = {
  rewritten_post : Ast.expr;
  slots : (string * Ast.expr) list;
}

let compile post =
  let slots = ref [] in
  let slot_for expr =
    match List.find_opt (fun (_, e) -> Ast.equal e expr) !slots with
    | Some (name, _) -> name
    | None ->
      let name = Printf.sprintf "__pre%d" (List.length !slots) in
      slots := !slots @ [ (name, expr) ];
      name
  in
  let rec rewrite expr =
    match expr with
    | Ast.At_pre inner ->
      (* [pre] is idempotent: nested pre() inside the slot expression is
         evaluated in the same pre-state. *)
      Ast.Var (slot_for inner)
    | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit
    | Ast.Var _ -> expr
    | Ast.Nav (e, prop) -> Ast.Nav (rewrite e, prop)
    | Ast.Coll (e, op) -> Ast.Coll (rewrite e, op)
    | Ast.Member (e, incl, x) -> Ast.Member (rewrite e, incl, rewrite x)
    | Ast.Count (e, x) -> Ast.Count (rewrite e, rewrite x)
    | Ast.Iter (e, kind, var, body) -> Ast.Iter (rewrite e, kind, var, rewrite body)
    | Ast.Unop (op, e) -> Ast.Unop (op, rewrite e)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rewrite a, rewrite b)
  in
  let rewritten_post = rewrite post in
  { rewritten_post; slots = !slots }

type taken = (string * Cm_ocl.Value.t) list

let take compiled pre_env =
  (* The slot expressions may themselves contain pre() (idempotent), so
     evaluate them in an environment marked as the pre-state. *)
  let marked = Cm_ocl.Eval.with_pre ~pre:pre_env pre_env in
  List.map (fun (name, expr) -> (name, Cm_ocl.Eval.eval marked expr)) compiled.slots

let post_env taken env =
  List.fold_left
    (fun env (name, value) -> Cm_ocl.Eval.bind_value name value env)
    env taken

let check_post_lean compiled taken env =
  Cm_ocl.Eval.check (post_env taken env) compiled.rewritten_post

let check_post_full post ~pre env =
  Cm_ocl.Eval.check (Cm_ocl.Eval.with_pre ~pre env) post

let value_bytes = function
  | Cm_ocl.Value.Undef -> 1
  | Cm_ocl.Value.Json json -> String.length (Cm_json.Printer.to_string json)

let size_bytes taken =
  List.fold_left (fun acc (_, value) -> acc + value_bytes value) 0 taken

let full_size_bytes env =
  List.fold_left
    (fun acc (_, json) -> acc + String.length (Cm_json.Printer.to_string json))
    0
    (Cm_ocl.Eval.bindings env)
