(** Pre-state snapshots.

    "Since an execution of a method might change the state of a
    resource, to evaluate the [post-]condition we need to store the
    resource state before the method execution … we do not need to save
    the copy of the whole resource(s) but only the values that
    constitute the guards and invariants" (§V).

    Two strategies are implemented; the bench [snapshot-ablation]
    compares them and validates the paper's few-bits claim:

    - {b Lean} (the paper's): the postcondition is compiled so that
      every [pre(e)] subterm becomes a fresh variable; before the call
      only those subterms are evaluated and their (scalar) values
      stored.
    - {b Full}: the entire pre-state environment (deep JSON copies of
      every bound resource) is retained and the postcondition evaluated
      with it attached. *)

type compiled = {
  rewritten_post : Cm_ocl.Ast.expr;  (** [pre(e_k)] replaced by [Var v_k] *)
  slots : (string * Cm_ocl.Ast.expr) list;  (** v_k -> e_k *)
}

val compile : Cm_ocl.Ast.expr -> compiled
(** Slot variables are named [__pre0], [__pre1], … in first-occurrence
    order; identical subterms share a slot. *)

type taken = (string * Cm_ocl.Value.t) list
(** Captured slot values. *)

val take : compiled -> Cm_ocl.Eval.env -> taken
(** Evaluate every slot in the pre-state environment. *)

val post_env : taken -> Cm_ocl.Eval.env -> Cm_ocl.Eval.env
(** Bind captured values into the post-state environment. *)

val check_post_lean :
  compiled -> taken -> Cm_ocl.Eval.env -> Cm_ocl.Value.tribool
(** Evaluate the rewritten postcondition with the captured slots. *)

val check_post_full :
  Cm_ocl.Ast.expr ->
  pre:Cm_ocl.Eval.env ->
  Cm_ocl.Eval.env ->
  Cm_ocl.Value.tribool
(** Evaluate the original postcondition with the full pre-environment
    attached. *)

val size_bytes : taken -> int
(** Serialized size of the captured values — the ablation's metric. *)

val full_size_bytes : Cm_ocl.Eval.env -> int
(** Serialized size of a full environment copy, for comparison. *)
