module Ast = Cm_ocl.Ast
module Behavior_model = Cm_uml.Behavior_model

type security = {
  table : Cm_rbac.Security_table.t;
  assignment : Cm_rbac.Role_assignment.t;
}

let auth_guard_for security (trigger : Behavior_model.trigger) =
  match security with
  | None -> None
  | Some { table; assignment } ->
    (match
       Cm_rbac.Security_table.find ~resource:trigger.resource
         ~meth:trigger.meth table
     with
     | Some entry ->
       Some (Cm_rbac.Security_table.auth_guard entry assignment)
     | None ->
       (* Fail closed: a method with no security entry is forbidden. *)
       Some (Ast.Bool_lit false))

let branch_of_transition machine auth (tr : Behavior_model.transition) =
  let invariant_of name =
    match Behavior_model.find_state name machine with
    | Some s -> s.Behavior_model.invariant
    | None -> Ast.Bool_lit false
  in
  let conjoin parts = Cm_ocl.Simplify.simplify (Ast.conj parts) in
  let pre_parts =
    [ invariant_of tr.source ]
    @ (match tr.guard with Some g -> [ g ] | None -> [])
    @ (match auth with Some a -> [ a ] | None -> [])
  in
  let post_parts =
    [ invariant_of tr.target ]
    @ (match tr.effect with Some e -> [ e ] | None -> [])
  in
  { Contract.source = tr.source;
    target = tr.target;
    branch_pre = conjoin pre_parts;
    branch_post = conjoin post_parts;
    branch_requirements = tr.requirements
  }

let requirements_of_branches branches =
  branches
  |> List.concat_map (fun b -> b.Contract.branch_requirements)
  |> List.sort_uniq String.compare

let contract_for ?security machine trigger =
  match Behavior_model.transitions_for trigger machine with
  | [] ->
    Error
      (Fmt.str "trigger %a fires no transition" Behavior_model.pp_trigger
         trigger)
  | transitions ->
    let auth = auth_guard_for security trigger in
    let branches = List.map (branch_of_transition machine auth) transitions in
    let functional_branches =
      List.map (branch_of_transition machine None) transitions
    in
    Ok
      { Contract.trigger;
        pre = Cm_ocl.Simplify.simplify (Contract.pre_of_branches branches);
        post = Cm_ocl.Simplify.simplify (Contract.post_of_branches branches);
        functional_pre =
          Cm_ocl.Simplify.simplify
            (Contract.pre_of_branches functional_branches);
        auth_guard = auth;
        branches;
        requirements = requirements_of_branches branches
      }

let all ?security machine =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | trigger :: rest ->
      (match contract_for ?security machine trigger with
       | Ok contract -> build (contract :: acc) rest
       | Error _ as err -> err)
  in
  build [] (Behavior_model.triggers machine)

let typecheck resources (contract : Contract.t) =
  let signature = Cm_uml.Resource_model.signature resources in
  Cm_ocl.Typecheck.check_boolean signature contract.pre
  @ Cm_ocl.Typecheck.check_boolean signature contract.post
