lib/contracts/evolution.ml: Buffer Cm_ocl Cm_rbac Cm_uml Contract Fmt Generate List Printf String
