lib/contracts/snapshot.ml: Cm_json Cm_ocl List Printf String
