lib/contracts/contract.ml: Cm_ocl Cm_uml Fmt List
