lib/contracts/evolution.mli: Cm_ocl Cm_rbac Cm_uml Format
