lib/contracts/contract.mli: Cm_ocl Cm_uml Format
