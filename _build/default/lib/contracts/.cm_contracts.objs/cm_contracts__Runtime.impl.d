lib/contracts/runtime.ml: Cm_ocl Contract List Snapshot String
