lib/contracts/snapshot.mli: Cm_ocl
