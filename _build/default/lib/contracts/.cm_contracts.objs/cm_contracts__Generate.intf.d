lib/contracts/generate.mli: Cm_ocl Cm_rbac Cm_uml Contract
