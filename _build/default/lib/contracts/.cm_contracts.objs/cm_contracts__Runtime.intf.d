lib/contracts/runtime.mli: Cm_ocl Contract
