lib/contracts/generate.ml: Cm_ocl Cm_rbac Cm_uml Contract Fmt List String
