(** Contract checking at run time.

    The monitor uses this module per request: check the precondition in
    the observed pre-state, take a snapshot, let the cloud act, then
    check the postcondition in the observed post-state against the
    snapshot. *)

type strategy =
  | Lean  (** snapshot only the values under [pre(...)] — the paper's *)
  | Full  (** retain the whole pre-state environment *)

type prepared
(** A contract with its snapshot plan compiled (do this once, not per
    request). *)

val prepare : ?strategy:strategy -> Contract.t -> prepared
val contract : prepared -> Contract.t
val strategy : prepared -> strategy

val check_pre : prepared -> Cm_ocl.Eval.env -> Cm_ocl.Eval.verdict

val covered_requirements : prepared -> Cm_ocl.Eval.env -> string list
(** SecReq ids of the branches active in the pre-state. *)

type snapshot

val take_snapshot : prepared -> Cm_ocl.Eval.env -> snapshot
val snapshot_bytes : snapshot -> int

val check_post :
  prepared -> snapshot -> Cm_ocl.Eval.env -> Cm_ocl.Eval.verdict
