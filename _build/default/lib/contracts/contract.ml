module Ast = Cm_ocl.Ast

type branch = {
  source : string;
  target : string;
  branch_pre : Ast.expr;
  branch_post : Ast.expr;
  branch_requirements : string list;
}

type t = {
  trigger : Cm_uml.Behavior_model.trigger;
  pre : Ast.expr;
  post : Ast.expr;
  functional_pre : Ast.expr;
  auth_guard : Ast.expr option;
  branches : branch list;
  requirements : string list;
}

let pre_of_branches branches =
  Ast.disj (List.map (fun b -> b.branch_pre) branches)

let post_of_branches branches =
  Ast.conj
    (List.map
       (fun b -> Ast.Binop (Ast.Implies, Ast.At_pre b.branch_pre, b.branch_post))
       branches)

let active_branches contract env =
  List.filter
    (fun b -> Cm_ocl.Eval.check env b.branch_pre = Cm_ocl.Value.True)
    contract.branches

let pp ppf contract =
  Fmt.pf ppf "PreCondition(%a):@.[%s]@.@.PostCondition(%a):@.[%s]"
    Cm_uml.Behavior_model.pp_trigger contract.trigger
    (Cm_ocl.Pretty.to_string_multiline contract.pre)
    Cm_uml.Behavior_model.pp_trigger contract.trigger
    (Cm_ocl.Pretty.to_string_multiline contract.post)
