(** Release-to-release regression checking.

    "Since open source cloud frameworks usually undergo frequent changes,
    the automated nature of our approach allows the developers to
    relatively easily check whether functional and security requirements
    have been preserved in new releases" (§VIII).  This module compares
    the contracts generated from two versions of the design models and
    reports semantic drift:

    - triggers added or removed;
    - {b authorization changes} per trigger: roles gained (potential
      privilege escalation — the release lets more subjects in) and
      roles lost (potential denial of service to legitimate users);
    - {b behavioural changes} per trigger, detected by evaluating both
      versions' functional preconditions over a sample of observable
      states: states where the new precondition accepts what the old
      rejected (weakening) or rejects what the old accepted
      (strengthening);
    - postcondition drift over sampled state pairs.

    Detection is sound on the sample only, like {!Cm_uml.Analysis}. *)

type auth_change = {
  roles_gained : string list;
  roles_lost : string list;
}

type behaviour_change = {
  weakened_on : int;  (** #sampled states newly accepted *)
  strengthened_on : int;  (** #sampled states newly rejected *)
  sample_size : int;
}

type change =
  | Trigger_added of Cm_uml.Behavior_model.trigger
  | Trigger_removed of Cm_uml.Behavior_model.trigger
  | Authorization_changed of Cm_uml.Behavior_model.trigger * auth_change
  | Precondition_changed of Cm_uml.Behavior_model.trigger * behaviour_change
  | Postcondition_changed of Cm_uml.Behavior_model.trigger * behaviour_change

val is_security_relevant : change -> bool
(** Additions, removals, any authorization change, and precondition
    weakening (new accepts what old rejected) — the changes a security
    review must sign off. *)

val pp_change : Format.formatter -> change -> unit

type report = {
  changes : change list;
  security_relevant : change list;
}

val compare :
  old_version:
    Cm_uml.Behavior_model.t * Cm_rbac.Security_table.t * Cm_rbac.Role_assignment.t ->
  new_version:
    Cm_uml.Behavior_model.t * Cm_rbac.Security_table.t * Cm_rbac.Role_assignment.t ->
  sample:Cm_ocl.Eval.env list ->
  (report, string) result
(** [Error] when contract generation fails for either version. *)

val render : report -> string
