let escape_with extra s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c when List.mem c extra ->
        Buffer.add_string buf (Printf.sprintf "&#%d;" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text s = escape_with [] s
let escape_attr s = escape_with [ '"'; '\'' ] s

let declaration_text = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let to_string ?(declaration = true) root =
  let buf = Buffer.create 256 in
  if declaration then Buffer.add_string buf declaration_text;
  let rec emit (el : Xml.element) =
    Buffer.add_char buf '<';
    Buffer.add_string buf el.name;
    add_attrs buf el.attrs;
    match el.children with
    | [] -> Buffer.add_string buf "/>"
    | children ->
      Buffer.add_char buf '>';
      List.iter emit_node children;
      Buffer.add_string buf "</";
      Buffer.add_string buf el.name;
      Buffer.add_char buf '>'
  and emit_node = function
    | Xml.Element el -> emit el
    | Xml.Text s -> Buffer.add_string buf (escape_text s)
    | Xml.Comment s ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
  in
  emit root;
  Buffer.contents buf

let text_only children =
  List.for_all
    (function Xml.Text _ -> true | Xml.Element _ | Xml.Comment _ -> false)
    children

let to_string_pretty ?(declaration = true) ?(indent = 2) root =
  let buf = Buffer.create 256 in
  if declaration then Buffer.add_string buf declaration_text;
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec emit depth (el : Xml.element) =
    pad depth;
    Buffer.add_char buf '<';
    Buffer.add_string buf el.name;
    add_attrs buf el.attrs;
    match el.children with
    | [] -> Buffer.add_string buf "/>\n"
    | children when text_only children ->
      Buffer.add_char buf '>';
      List.iter
        (function
          | Xml.Text s -> Buffer.add_string buf (escape_text s)
          | Xml.Element _ | Xml.Comment _ -> ())
        children;
      Buffer.add_string buf "</";
      Buffer.add_string buf el.name;
      Buffer.add_string buf ">\n"
    | children ->
      Buffer.add_string buf ">\n";
      List.iter (emit_node (depth + 1)) children;
      pad depth;
      Buffer.add_string buf "</";
      Buffer.add_string buf el.name;
      Buffer.add_string buf ">\n"
  and emit_node depth = function
    | Xml.Element el -> emit depth el
    | Xml.Text s ->
      let trimmed = String.trim s in
      if trimmed <> "" then begin
        pad depth;
        Buffer.add_string buf (escape_text trimmed);
        Buffer.add_char buf '\n'
      end
    | Xml.Comment s ->
      pad depth;
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->\n"
  in
  emit 0 root;
  Buffer.contents buf
