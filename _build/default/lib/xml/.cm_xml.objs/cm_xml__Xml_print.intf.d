lib/xml/xml_print.mli: Xml
