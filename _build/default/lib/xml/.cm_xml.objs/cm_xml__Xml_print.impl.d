lib/xml/xml_print.ml: Buffer Char List Printf String Xml
