lib/xml/xml.ml: Buffer Fmt List Printf String
