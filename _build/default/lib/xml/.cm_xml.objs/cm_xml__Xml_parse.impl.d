lib/xml/xml_parse.ml: Buffer Char Fmt List Printf String Xml
