lib/xml/xml_parse.mli: Format Xml
