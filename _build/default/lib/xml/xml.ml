type node =
  | Element of element
  | Text of string
  | Comment of string

and element = {
  name : string;
  attrs : (string * string) list;
  children : node list;
}

let element ?(attrs = []) ?(children = []) name = { name; attrs; children }
let text s = Text s
let comment s = Comment s

let attr key el = List.assoc_opt key el.attrs

let attr_exn key el =
  match attr key el with
  | Some value -> value
  | None ->
    invalid_arg
      (Printf.sprintf "Xml.attr_exn: element <%s> has no attribute %S" el.name
         key)

let children_elements el =
  List.filter_map
    (function Element e -> Some e | Text _ | Comment _ -> None)
    el.children

let find_children name el =
  List.filter (fun e -> e.name = name) (children_elements el)

let find_child name el =
  List.find_opt (fun e -> e.name = name) (children_elements el)

let descendants name el =
  let rec collect acc el =
    List.fold_left
      (fun acc child ->
        let acc = if child.name = name then child :: acc else acc in
        collect acc child)
      acc (children_elements el)
  in
  List.rev (collect [] el)

let text_content el =
  let buf = Buffer.create 64 in
  let rec walk = function
    | Text s -> Buffer.add_string buf s
    | Comment _ -> ()
    | Element e -> List.iter walk e.children
  in
  List.iter walk el.children;
  Buffer.contents buf

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

let rec equal a b =
  a.name = b.name
  && List.sort compare a.attrs = List.sort compare b.attrs
  && equal_nodes (significant a.children) (significant b.children)

and significant nodes =
  List.filter
    (function
      | Text s when is_blank s -> false
      | Comment _ -> false
      | Text _ | Element _ -> true)
    nodes

and equal_nodes xs ys =
  match xs, ys with
  | [], [] -> true
  | Element a :: xs', Element b :: ys' -> equal a b && equal_nodes xs' ys'
  | Text a :: xs', Text b :: ys' -> String.trim a = String.trim b && equal_nodes xs' ys'
  | _ -> false

let rec pp ppf el =
  let pp_attr ppf (k, v) = Fmt.pf ppf " %s=%S" k v in
  match significant el.children with
  | [] -> Fmt.pf ppf "<%s%a/>" el.name Fmt.(list ~sep:nop pp_attr) el.attrs
  | children ->
    Fmt.pf ppf "<%s%a>%a</%s>" el.name
      Fmt.(list ~sep:nop pp_attr)
      el.attrs
      Fmt.(list ~sep:nop pp_node)
      children el.name

and pp_node ppf = function
  | Element e -> pp ppf e
  | Text s -> Fmt.string ppf s
  | Comment s -> Fmt.pf ppf "<!--%s-->" s
