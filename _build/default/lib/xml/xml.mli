(** XML documents.

    A deliberately small XML 1.0 tree: elements with attributes, text and
    comment nodes.  Namespace prefixes (e.g. [xmi:id]) are kept verbatim in
    names — XMI consumers match on the prefixed string, which is how the
    paper's MagicDraw export is structured.  This module replaces the
    paper's use of Python [lxml]. *)

type node =
  | Element of element
  | Text of string
  | Comment of string

and element = {
  name : string;
  attrs : (string * string) list;
  children : node list;
}

(** {1 Constructors} *)

val element : ?attrs:(string * string) list -> ?children:node list -> string -> element
val text : string -> node
val comment : string -> node

(** {1 Queries} *)

val attr : string -> element -> string option
val attr_exn : string -> element -> string

val children_elements : element -> element list
(** Child elements in order, skipping text and comments. *)

val find_children : string -> element -> element list
(** Child elements with the given name. *)

val find_child : string -> element -> element option
(** First child element with the given name. *)

val descendants : string -> element -> element list
(** All descendant elements (document order) with the given name,
    excluding the element itself. *)

val text_content : element -> string
(** Concatenated text of all descendant text nodes. *)

val equal : element -> element -> bool
(** Structural equality: attribute order is ignored, whitespace-only text
    nodes are ignored (XMI round-trips pretty-print). *)

val pp : Format.formatter -> element -> unit
