type error = { position : int; message : string }

let pp_error ppf { position; message } =
  Fmt.pf ppf "XML parse error at offset %d: %s" position message

exception Parse_error of error

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })
let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1]
  else None

let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let len = String.length prefix in
  st.pos + len <= String.length st.input
  && String.sub st.input st.pos len = prefix

let skip st n = st.pos <- st.pos + n

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  match peek st with
  | Some c when is_name_start c ->
    let start = st.pos in
    let rec loop () =
      match peek st with
      | Some c when is_name_char c ->
        advance st;
        loop ()
      | Some _ | None -> ()
    in
    loop ();
    String.sub st.input start (st.pos - start)
  | Some c -> fail st (Printf.sprintf "expected name, found %C" c)
  | None -> fail st "expected name, found end of input"

(* Decode an entity reference starting just after '&'. *)
let parse_entity st buf =
  let upto_semicolon () =
    let start = st.pos in
    let rec loop () =
      match peek st with
      | Some ';' ->
        let body = String.sub st.input start (st.pos - start) in
        advance st;
        body
      | Some _ ->
        advance st;
        loop ()
      | None -> fail st "unterminated entity reference"
    in
    loop ()
  in
  let body = upto_semicolon () in
  let add_codepoint cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  match body with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let cp =
        if String.length body > 2 && (body.[1] = 'x' || body.[1] = 'X') then
          int_of_string_opt ("0x" ^ String.sub body 2 (String.length body - 2))
        else int_of_string_opt (String.sub body 1 (String.length body - 1))
      in
      match cp with
      | Some cp when cp > 0 && cp <= 0x10FFFF -> add_codepoint cp
      | Some _ | None -> fail st "invalid character reference"
    end
    else fail st (Printf.sprintf "unknown entity &%s;" body)

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | Some c -> fail st (Printf.sprintf "expected quote, found %C" c)
    | None -> fail st "expected attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote ->
      advance st;
      Buffer.contents buf
    | Some '&' ->
      advance st;
      parse_entity st buf;
      loop ()
    | Some '<' -> fail st "'<' in attribute value"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_attrs st =
  let rec loop acc =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
      let name = parse_name st in
      skip_ws st;
      (match peek st with
       | Some '=' -> advance st
       | _ -> fail st "expected '=' after attribute name");
      skip_ws st;
      let value = parse_attr_value st in
      loop ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  loop []

let skip_comment st =
  (* called with st at "<!--" *)
  skip st 4;
  let start = st.pos in
  let rec find_end () =
    if looking_at st "-->" then begin
      let body = String.sub st.input start (st.pos - start) in
      skip st 3;
      body
    end
    else if st.pos >= String.length st.input then fail st "unterminated comment"
    else begin
      advance st;
      find_end ()
    end
  in
  find_end ()

let parse_cdata st =
  (* called with st at "<![CDATA[" *)
  skip st 9;
  let start = st.pos in
  let rec find_end () =
    if looking_at st "]]>" then begin
      let body = String.sub st.input start (st.pos - start) in
      skip st 3;
      body
    end
    else if st.pos >= String.length st.input then fail st "unterminated CDATA"
    else begin
      advance st;
      find_end ()
    end
  in
  find_end ()

let rec parse_element st =
  (* called with st at '<' of a start tag *)
  advance st;
  let name = parse_name st in
  let attrs = parse_attrs st in
  skip_ws st;
  match peek st with
  | Some '/' ->
    advance st;
    (match peek st with
     | Some '>' ->
       advance st;
       { Xml.name; attrs; children = [] }
     | _ -> fail st "expected '>' after '/'")
  | Some '>' ->
    advance st;
    let children = parse_content st name in
    { Xml.name; attrs; children }
  | Some c -> fail st (Printf.sprintf "unexpected %C in tag" c)
  | None -> fail st "unterminated start tag"

and parse_content st parent_name =
  let buf = Buffer.create 16 in
  let flush_text acc =
    if Buffer.length buf = 0 then acc
    else begin
      let body = Buffer.contents buf in
      Buffer.clear buf;
      Xml.Text body :: acc
    end
  in
  let rec loop acc =
    match peek st with
    | None -> fail st (Printf.sprintf "unterminated element <%s>" parent_name)
    | Some '<' ->
      if looking_at st "</" then begin
        let acc = flush_text acc in
        skip st 2;
        let name = parse_name st in
        if name <> parent_name then
          fail st
            (Printf.sprintf "mismatched close tag </%s> for <%s>" name
               parent_name);
        skip_ws st;
        (match peek st with
         | Some '>' ->
           advance st;
           List.rev acc
         | _ -> fail st "expected '>' in close tag")
      end
      else if looking_at st "<!--" then begin
        let acc = flush_text acc in
        let body = skip_comment st in
        loop (Xml.Comment body :: acc)
      end
      else if looking_at st "<![CDATA[" then begin
        Buffer.add_string buf (parse_cdata st);
        loop acc
      end
      else begin
        let acc = flush_text acc in
        let child = parse_element st in
        loop (Xml.Element child :: acc)
      end
    | Some '&' ->
      advance st;
      parse_entity st buf;
      loop acc
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop acc
  in
  loop []

let skip_prolog st =
  skip_ws st;
  if looking_at st "<?xml" then begin
    let rec find_end () =
      if looking_at st "?>" then skip st 2
      else if st.pos >= String.length st.input then
        fail st "unterminated XML declaration"
      else begin
        advance st;
        find_end ()
      end
    in
    find_end ()
  end;
  let rec skip_misc () =
    skip_ws st;
    if looking_at st "<!--" then begin
      ignore (skip_comment st);
      skip_misc ()
    end
  in
  skip_misc ()

let parse input =
  let st = { input; pos = 0 } in
  match
    skip_prolog st;
    (match peek st with
     | Some '<' when peek2 st <> Some '!' && peek2 st <> Some '?' -> ()
     | Some _ | None -> fail st "expected root element");
    let root = parse_element st in
    skip_ws st;
    let rec skip_trailing () =
      if looking_at st "<!--" then begin
        ignore (skip_comment st);
        skip_ws st;
        skip_trailing ()
      end
    in
    skip_trailing ();
    (match peek st with
     | Some _ -> fail st "trailing content after root element"
     | None -> ());
    root
  with
  | root -> Ok root
  | exception Parse_error err -> Error err

let parse_exn input =
  match parse input with
  | Ok root -> root
  | Error err -> failwith (Fmt.str "%a" pp_error err)
