(** XML serialization. *)

val to_string : ?declaration:bool -> Xml.element -> string
(** Compact serialization.  [declaration] (default [true]) prepends
    [<?xml version="1.0" encoding="UTF-8"?>]. *)

val to_string_pretty : ?declaration:bool -> ?indent:int -> Xml.element -> string
(** Indented serialization (default 2 spaces).  Elements whose children
    are only text stay on one line so that mixed content survives a
    round-trip. *)

val escape_text : string -> string
(** Escape [& < >] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and quotes for attribute values. *)
