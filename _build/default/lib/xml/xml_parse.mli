(** XML parser.

    Parses the subset of XML 1.0 needed for XMI interchange: one root
    element, attributes (single- or double-quoted), character data, the
    five predefined entities plus numeric character references, comments,
    CDATA sections, and a leading [<?xml ...?>] declaration (ignored).
    DTDs and processing instructions other than the declaration are
    rejected — an XMI export never contains them. *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit
val parse : string -> (Xml.element, error) result
val parse_exn : string -> Xml.element
