(** The resource model: a UML class diagram of REST resources (§IV-A).

    A {e resource definition} plays the role of a class; its instances
    are resources.  A {e collection} resource definition has no
    attributes of its own — it only contains other resources (e.g.
    [Volumes]); a {e normal} resource definition has typed, public
    attributes (e.g. [volume] with [id], [status], [size]).  Associations
    carry a role name (used to compose URIs) and a multiplicity. *)

type attr_type =
  | A_string
  | A_int
  | A_bool
  | A_real

type attribute = {
  attr_name : string;
  attr_type : attr_type;
}

type kind =
  | Collection
  | Normal

type resource_def = {
  def_name : string;
  kind : kind;
  attributes : attribute list;  (** empty for [Collection] *)
}

type association = {
  role : string;  (** role name; forms the URI segment *)
  source : string;  (** source resource definition name *)
  target : string;  (** target resource definition name *)
  multiplicity : Multiplicity.t;
}

type t = {
  model_name : string;
  base_path : string;  (** URI prefix of the API version root, e.g. "/v3" *)
  root : string;  (** name of the root resource definition *)
  resources : resource_def list;
  associations : association list;
}

(** {1 Construction helpers} *)

val collection : string -> resource_def
val normal : string -> (string * attr_type) list -> resource_def

val assoc :
  ?multiplicity:Multiplicity.t -> role:string -> string -> string -> association
(** [assoc ~role source target]; multiplicity defaults to 0..*. *)

(** {1 Queries} *)

val find_resource : string -> t -> resource_def option
val outgoing : string -> t -> association list
(** Associations whose source is the given resource definition. *)

val incoming : string -> t -> association list

val contained_by : string -> t -> association option
(** The association through which the resource is reached (first
    incoming), if any. *)

(** {1 OCL signature}

    Derives the typing context for invariants and guards: each normal
    resource definition becomes an [Object] type over its attributes
    plus its outgoing roles ([Collection] or nested object per
    multiplicity); collections become [Collection(<target type>)].  The
    signature binds each resource definition name (lowercased) plus a
    [user] variable with [id] and [groups] — the authorization subject
    of the paper's guards. *)

val attr_ty : attr_type -> Cm_ocl.Ty.t
val resource_type : t -> string -> Cm_ocl.Ty.t
(** Type of one resource definition (follows associations one level deep
    plus collection roles transitively up to depth 3 to keep the
    signature finite on cyclic models). *)

val signature : t -> Cm_ocl.Ty.signature

val attr_type_to_string : attr_type -> string
val attr_type_of_string : string -> attr_type option
val pp : Format.formatter -> t -> unit
