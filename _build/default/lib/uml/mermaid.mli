(** Rendering the design models as Mermaid diagrams.

    Fig. 3 of the paper shows the resource model as a class diagram and
    the behavioral model as a state machine.  These renderers reproduce
    both as Mermaid text (`classDiagram` / `stateDiagram-v2`), which
    GitHub, GitLab and most Markdown viewers display natively — so the
    generated API.md carries the actual figures, not just tables. *)

val class_diagram : Resource_model.t -> string
(** `classDiagram`: one class per resource definition («collection»
    stereotype for collections), attributes with types, associations
    labelled with role and multiplicity. *)

val state_diagram : Behavior_model.t -> string
(** `stateDiagram-v2`: states with invariant notes, the initial marker,
    one edge per transition labelled [METHOD(resource) [guard]].  Guards
    are abbreviated to fit on an edge label (full text lives in the
    contract section of the document). *)
