module RM = Resource_model
module BM = Behavior_model

(* Mermaid identifiers must be alphanumeric; model names already are,
   but be safe. *)
let ident name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let class_diagram (model : RM.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "classDiagram";
  List.iter
    (fun (r : RM.resource_def) ->
      line "  class %s {" (ident r.def_name);
      (match r.kind with
       | RM.Collection -> line "    <<collection>>"
       | RM.Normal -> ());
      List.iter
        (fun (a : RM.attribute) ->
          line "    +%s %s" (RM.attr_type_to_string a.attr_type) a.attr_name)
        r.attributes;
      line "  }")
    model.resources;
  List.iter
    (fun (a : RM.association) ->
      line "  %s \"1\" --> \"%s\" %s : %s" (ident a.source)
        (Multiplicity.to_string a.multiplicity)
        (ident a.target) a.role)
    model.associations;
  Buffer.contents buf

(* Edge labels get unwieldy with full OCL; keep the method and a
   compressed guard. *)
let abbreviate text =
  let compact =
    String.concat " " (String.split_on_char '\n' text)
  in
  if String.length compact <= 48 then compact
  else String.sub compact 0 45 ^ "..."

let escape_label text =
  String.concat "#59;" (String.split_on_char ';' text)

let state_diagram (machine : BM.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "stateDiagram-v2";
  line "  [*] --> %s" (ident machine.initial);
  List.iter
    (fun (s : BM.state) ->
      line "  %s : %s" (ident s.state_name)
        (escape_label (abbreviate (Cm_ocl.Pretty.to_string s.invariant))))
    machine.states;
  List.iter
    (fun (tr : BM.transition) ->
      let label =
        let trigger = Fmt.str "%a" BM.pp_trigger tr.trigger in
        match tr.guard with
        | Some guard ->
          Printf.sprintf "%s [%s]" trigger
            (abbreviate (Cm_ocl.Pretty.to_string guard))
        | None -> trigger
      in
      line "  %s --> %s : %s" (ident tr.source) (ident tr.target)
        (escape_label label))
    machine.transitions;
  Buffer.contents buf
