let ocl = Cm_ocl.Ocl_parser.parse_exn

let resources : Resource_model.t =
  let open Resource_model in
  { model_name = "GlanceResourceModel";
    base_path = "/v3";
    root = "Projects";
    resources =
      [ collection "Projects";
        normal "project" [ ("id", A_string); ("name", A_string) ];
        collection "Images";
        normal "image"
          [ ("id", A_string);
            ("name", A_string);
            ("status", A_string);
            ("visibility", A_string);
            ("size", A_int)
          ];
        normal "quota_sets" [ ("id", A_string); ("images", A_int) ]
      ];
    associations =
      [ assoc ~role:"projects" "Projects" "project";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"images" "project"
          "Images";
        assoc ~role:"image" "Images" "image";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"quota_sets"
          "project" "quota_sets"
      ]
  }

let signature = Resource_model.signature resources

let s_no_image = "project_with_no_image"
let s_not_full = "project_with_image_and_not_full_quota"
let s_full = "project_with_image_and_full_quota"

let inv_no_image = ocl "project.id->size() = 1 and project.images->size() = 0"

let inv_not_full =
  ocl
    "project.id->size() = 1 and project.images->size() >= 1 and \
     project.images->size() < quota_sets.images"

let inv_full =
  ocl
    "project.id->size() = 1 and project.images->size() >= 1 and \
     project.images->size() = quota_sets.images"

let behavior : Behavior_model.t =
  let open Behavior_model in
  let post = Cm_http.Meth.POST
  and delete = Cm_http.Meth.DELETE
  and get = Cm_http.Meth.GET
  and put = Cm_http.Meth.PUT in
  { machine_name = "GlanceProjectProtocol";
    context = "project";
    initial = s_no_image;
    states =
      [ state s_no_image inv_no_image;
        state s_not_full inv_not_full;
        state s_full inv_full
      ];
    transitions =
      [ transition ~source:s_no_image ~target:s_not_full
          ~guard:(ocl "quota_sets.images > 1")
          ~effect:(ocl "project.images->size() = 1")
          ~requirements:[ "2.3" ] post "image";
        transition ~source:s_no_image ~target:s_full
          ~guard:(ocl "quota_sets.images = 1")
          ~effect:(ocl "project.images->size() = 1")
          ~requirements:[ "2.3" ] post "image";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "project.images->size() + 1 < quota_sets.images")
          ~effect:
            (ocl "project.images->size() = pre(project.images->size()) + 1")
          ~requirements:[ "2.3" ] post "image";
        transition ~source:s_not_full ~target:s_full
          ~guard:(ocl "project.images->size() + 1 = quota_sets.images")
          ~effect:
            (ocl "project.images->size() = pre(project.images->size()) + 1")
          ~requirements:[ "2.3" ] post "image";
        (* DELETE(image): active images are protected. *)
        transition ~source:s_full ~target:s_not_full
          ~guard:(ocl "image.id->size() = 1 and image.status <> 'active'")
          ~effect:
            (ocl "project.images->size() = pre(project.images->size()) - 1")
          ~requirements:[ "2.4" ] delete "image";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:
            (ocl
               "image.id->size() = 1 and project.images->size() > 1 and \
                image.status <> 'active'")
          ~effect:
            (ocl "project.images->size() = pre(project.images->size()) - 1")
          ~requirements:[ "2.4" ] delete "image";
        transition ~source:s_not_full ~target:s_no_image
          ~guard:
            (ocl
               "image.id->size() = 1 and project.images->size() = 1 and \
                image.status <> 'active'")
          ~effect:(ocl "project.images->size() = 0")
          ~requirements:[ "2.4" ] delete "image";
        (* GET(image): the addressed image must exist *)
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "image.id->size() = 1")
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.1" ] get "image";
        transition ~source:s_full ~target:s_full
          ~guard:(ocl "image.id->size() = 1")
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.1" ] get "image";
        (* GET(Images) *)
        transition ~source:s_no_image ~target:s_no_image
          ~effect:(ocl "project.images->size() = 0")
          ~requirements:[ "2.1" ] get "Images";
        transition ~source:s_not_full ~target:s_not_full
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.1" ] get "Images";
        transition ~source:s_full ~target:s_full
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.1" ] get "Images";
        (* PUT(image): rename / visibility / legal status moves; the
           image count never changes. *)
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "image.id->size() = 1")
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.2" ] put "image";
        transition ~source:s_full ~target:s_full
          ~guard:(ocl "image.id->size() = 1")
          ~effect:(ocl "project.images->size() = pre(project.images->size())")
          ~requirements:[ "2.2" ] put "image"
      ]
  }
