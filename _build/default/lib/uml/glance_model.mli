(** A second worked example: the Glance-like image service.

    Demonstrates that the pipeline (models → contracts → monitor →
    Django code) is not specific to the paper's Cinder case study.  The
    image protocol mirrors the volume one at the project level (counting
    against an image quota) but with a different behavioural guard: an
    {e active} image cannot be deleted, so deletion is guarded by
    [image.status <> 'active'] where Cinder's was
    [volume.status <> 'in-use'].

    Security requirements use the 2.x identifier range (see
    {!Cm_rbac.Security_table.glance}). *)

val resources : Resource_model.t
val behavior : Behavior_model.t
val signature : Cm_ocl.Ty.signature

val s_no_image : string
val s_not_full : string
val s_full : string
