(** Association multiplicities: UML cardinality ranges such as [0..1] or
    zero-to-many. *)

type t = {
  lower : int;
  upper : int option;  (** [None] means unbounded ([*]) *)
}

val exactly_one : t
val optional : t (** 0..1 *)

val many : t (** 0..* *)

val at_least_one : t (** 1..* *)

val make : int -> int option -> (t, string) result
(** Reject negative bounds and upper < lower. *)

val is_collection : t -> bool
(** Can the association hold more than one target? *)

val admits : t -> int -> bool
(** Is a concrete count within the range? *)

val to_string : t -> string
(** UML notation: ["1"], ["0..1"], ["0..*"], ["2..5"], … *)

val of_string : string -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
