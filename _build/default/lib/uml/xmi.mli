(** XMI interchange for the design models.

    The paper's toolchain exports the MagicDraw models as XMI 2.1 and
    feeds the file to the generator.  This module writes and reads an
    XMI-style encoding of {!Resource_model} and {!Behavior_model}:
    classes with [ownedAttribute]s, associations with [memberEnd]s, and
    state machines with [region]/[subvertex]/[transition] structure;
    OCL appears as [uml:OpaqueExpression] bodies and security-requirement
    annotations as [ownedComment]s — the standard-UML-without-profiles
    choice the paper argues for.

    [read (write doc)] is the identity on well-formed documents
    (property-tested). *)

type document = {
  resource_model : Resource_model.t;
  behavior_models : Behavior_model.t list;
}

val write : document -> string
(** Serialize to pretty-printed XMI. *)

val read : string -> (document, string) result
(** Parse XMI text.  Unknown elements are ignored (MagicDraw emits many
    vendor extensions); missing required structure is an error. *)

val read_exn : string -> document
