let ocl = Cm_ocl.Ocl_parser.parse_exn

let resources : Resource_model.t =
  let open Resource_model in
  let base = Cinder_model.resources in
  { base with
    model_name = "CinderSnapshotResourceModel";
    resources =
      base.resources
      @ [ collection "Snapshots";
          normal "snapshot"
            [ ("id", A_string); ("name", A_string); ("status", A_string) ]
        ];
    associations =
      base.associations
      @ [ assoc ~multiplicity:Multiplicity.exactly_one ~role:"snapshots"
            "volume" "Snapshots";
          assoc ~role:"snapshot" "Snapshots" "snapshot"
        ]
  }

let signature = Resource_model.signature resources

let s_no_snapshot = "volume_without_snapshot"
let s_with_snapshots = "volume_with_snapshots"

let inv_none =
  ocl "volume.id->size() = 1 and volume.snapshots->size() = 0"

let inv_some =
  ocl "volume.id->size() = 1 and volume.snapshots->size() >= 1"

let behavior : Behavior_model.t =
  let open Behavior_model in
  let post = Cm_http.Meth.POST
  and delete = Cm_http.Meth.DELETE
  and get = Cm_http.Meth.GET in
  { machine_name = "VolumeSnapshotProtocol";
    context = "volume";
    initial = s_no_snapshot;
    states =
      [ state s_no_snapshot inv_none; state s_with_snapshots inv_some ];
    transitions =
      [ (* POST(snapshot): only on a quiesced volume *)
        transition ~source:s_no_snapshot ~target:s_with_snapshots
          ~guard:(ocl "volume.status <> 'in-use'")
          ~effect:(ocl "volume.snapshots->size() = 1")
          ~requirements:[ "3.2" ] post "snapshot";
        transition ~source:s_with_snapshots ~target:s_with_snapshots
          ~guard:(ocl "volume.status <> 'in-use'")
          ~effect:
            (ocl "volume.snapshots->size() = pre(volume.snapshots->size()) + 1")
          ~requirements:[ "3.2" ] post "snapshot";
        (* DELETE(snapshot) *)
        transition ~source:s_with_snapshots ~target:s_with_snapshots
          ~guard:
            (ocl "snapshot.id->size() = 1 and volume.snapshots->size() > 1")
          ~effect:
            (ocl "volume.snapshots->size() = pre(volume.snapshots->size()) - 1")
          ~requirements:[ "3.3" ] delete "snapshot";
        transition ~source:s_with_snapshots ~target:s_no_snapshot
          ~guard:
            (ocl "snapshot.id->size() = 1 and volume.snapshots->size() = 1")
          ~effect:(ocl "volume.snapshots->size() = 0")
          ~requirements:[ "3.3" ] delete "snapshot";
        (* GET(snapshot) *)
        transition ~source:s_with_snapshots ~target:s_with_snapshots
          ~guard:(ocl "snapshot.id->size() = 1")
          ~effect:
            (ocl "volume.snapshots->size() = pre(volume.snapshots->size())")
          ~requirements:[ "3.1" ] get "snapshot";
        (* GET(Snapshots): listing in both states *)
        transition ~source:s_no_snapshot ~target:s_no_snapshot
          ~effect:(ocl "volume.snapshots->size() = 0")
          ~requirements:[ "3.1" ] get "Snapshots";
        transition ~source:s_with_snapshots ~target:s_with_snapshots
          ~effect:
            (ocl "volume.snapshots->size() = pre(volume.snapshots->size())")
          ~requirements:[ "3.1" ] get "Snapshots"
      ]
  }

let security_table =
  let open Cm_http.Meth in
  Cm_rbac.Security_table.
    [ entry ~resource:"snapshot" ~req:"3.1" GET [ "admin"; "member"; "user" ];
      entry ~resource:"snapshot" ~req:"3.2" POST [ "admin"; "member" ];
      entry ~resource:"snapshot" ~req:"3.3" DELETE [ "admin" ];
      entry ~resource:"Snapshots" ~req:"3.1" GET [ "admin"; "member"; "user" ]
    ]
