(** The paper's running example: the Cinder block-storage service
    (Fig. 3).

    The resource model mirrors Fig. 3 (left): collection definitions
    [Projects] and [Volumes]; normal definitions [project], [volume],
    [quota_sets] and [usergroup].  The behavioral model mirrors Fig. 3
    (right): a project is in one of three states —
    [project_with_no_volume], [project_with_volume_and_not_full_quota],
    [project_with_volume_and_full_quota] — with POST/DELETE transitions
    guarded by quota and volume status, plus GET/PUT self-loops.

    Two notational fixes relative to the paper's listings (documented in
    EXPERIMENTS.md): the quota attribute is [quota_sets.volumes]
    (OpenStack's quota key; the paper writes [quota_sets.volume]) and
    collection cardinality is always written [project.volumes->size()]
    (the paper sometimes drops the [->size()]). *)

val resources : Resource_model.t
val behavior : Behavior_model.t

val signature : Cm_ocl.Ty.signature
(** [Resource_model.signature resources]. *)

(** State names, exported for tests and benches. *)

val s_no_volume : string
val s_not_full : string
val s_full : string
