(** Bounded semantic analysis of behavioral models.

    Well-formedness ({!Validate}) is syntactic; this module checks the
    {e semantics} of a protocol machine against a sample of concrete
    observable states:

    - {b exclusivity}: no two state invariants hold in the same concrete
      state (a monitor cannot attribute an observation to a unique
      protocol state otherwise);
    - {b coverage}: every sampled state satisfies some invariant (no
      reachable observation falls outside the protocol);
    - {b guard determinism}: for each trigger and each sampled state, at
      most one outgoing transition of the matching source state is
      enabled (otherwise the generated postcondition may demand two
      different effects at once);
    - {b effect satisfiability}: for each transition there exists a
      sampled state pair (pre, post) satisfying
      [inv(source) ∧ guard] before and [inv(target) ∧ effect] after —
      a transition with no witness is vacuous on the sample.

    The sample is supplied by the caller (a list of OCL environments);
    {!cinder_sample} enumerates the Cinder observation space up to a
    bound.  The analysis is sound on the sample only — it is a
    model-debugging aid, not a proof. *)

type finding = {
  check : string;  (** "exclusivity" | "coverage" | "determinism" | "vacuity" *)
  subject : string;  (** states / trigger / transition concerned *)
  detail : string;
}

val pp_finding : Format.formatter -> finding -> unit

val exclusivity : Behavior_model.t -> Cm_ocl.Eval.env list -> finding list
val coverage : Behavior_model.t -> Cm_ocl.Eval.env list -> finding list
val guard_determinism : Behavior_model.t -> Cm_ocl.Eval.env list -> finding list

val vacuity :
  Behavior_model.t ->
  pre_states:Cm_ocl.Eval.env list ->
  post_states:Cm_ocl.Eval.env list ->
  finding list

val analyze :
  Behavior_model.t -> Cm_ocl.Eval.env list -> finding list
(** All checks; for {!vacuity} the same sample is used for pre and post
    states. *)

val cinder_sample :
  ?max_volumes:int -> ?max_quota:int -> unit -> Cm_ocl.Eval.env list
(** The Cinder observation space: n volumes (each available or in-use),
    quota q, for n ≤ [max_volumes] (default 4), 1 ≤ q ≤ [max_quota]
    (default 4), n ≤ q, with a [user] in each of the three groups. *)
