(** Model slicing.

    "We are planning to address these limitations in our future work by
    proposing a support for splitting the models into several parts via
    slicing" (§VI-B).  A slice restricts a behavioral model to the
    transitions of interest — by trigger resource, by HTTP method, or by
    security-requirement id — and prunes the states that no retained
    transition touches (the initial state is always kept).

    Slicing is {e contract-preserving} for the retained triggers: a
    trigger whose transitions all survive generates exactly the same
    contract from the slice as from the full model (property-tested in
    [test/test_uml.ml]), because contracts only combine the transitions
    of their own trigger and the invariants of the states those touch. *)

type criterion =
  | By_resources of string list
      (** keep transitions whose trigger resource is listed *)
  | By_methods of Cm_http.Meth.t list
  | By_requirements of string list
      (** keep transitions carrying at least one of the SecReq ids *)
  | Union of criterion list
  | Intersection of criterion list

val keeps : criterion -> Behavior_model.transition -> bool

val behavior : criterion -> Behavior_model.t -> Behavior_model.t
(** The sliced machine: filtered transitions; states restricted to those
    appearing as a source or target of a retained transition, plus the
    initial state.  State invariants are untouched. *)

val resource_model :
  keep:string list -> Resource_model.t -> Resource_model.t
(** Restrict a resource model to the listed resource definitions plus
    everything on their containment paths from the root (a resource is
    only addressable through its ancestors). *)

val covered_resources : Behavior_model.t -> string list
(** Trigger resources of a machine — handy to build the matching
    resource-model slice. *)
