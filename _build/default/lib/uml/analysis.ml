module BM = Behavior_model
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module Json = Cm_json.Json

type finding = { check : string; subject : string; detail : string }

let pp_finding ppf { check; subject; detail } =
  Fmt.pf ppf "[%s] %s: %s" check subject detail

let holds env expr = Eval.check env expr = Value.True

let describe_env env =
  let bindings = Eval.bindings env in
  let brief (name, json) =
    match json with
    | Json.Obj members ->
      let brief_member (k, v) =
        match v with
        | Json.List items -> Printf.sprintf "%s:#%d" k (List.length items)
        | Json.Int n -> Printf.sprintf "%s:%d" k n
        | Json.String s -> Printf.sprintf "%s:%s" k s
        | _ -> k
      in
      Printf.sprintf "%s{%s}" name
        (String.concat "," (List.map brief_member members))
    | _ -> name
  in
  String.concat " " (List.map brief bindings)

let exclusivity machine sample =
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s')) rest @ pairs rest
  in
  List.concat_map
    (fun ((a : BM.state), (b : BM.state)) ->
      match
        List.find_opt
          (fun env -> holds env a.invariant && holds env b.invariant)
          sample
      with
      | Some env ->
        [ { check = "exclusivity";
            subject = a.state_name ^ " / " ^ b.state_name;
            detail =
              "both invariants hold in state " ^ describe_env env
          }
        ]
      | None -> [])
    (pairs machine.BM.states)

let coverage machine sample =
  List.filter_map
    (fun env ->
      if
        List.exists (fun (s : BM.state) -> holds env s.invariant) machine.BM.states
      then None
      else
        Some
          { check = "coverage";
            subject = "all states";
            detail = "no invariant holds in state " ^ describe_env env
          })
    sample

let guard_determinism machine sample =
  let full_pre (tr : BM.transition) =
    let invariant =
      match BM.find_state tr.source machine with
      | Some s -> s.BM.invariant
      | None -> Cm_ocl.Ast.Bool_lit false
    in
    match tr.guard with
    | Some guard -> Cm_ocl.Ast.Binop (Cm_ocl.Ast.And, invariant, guard)
    | None -> invariant
  in
  List.concat_map
    (fun trigger ->
      let transitions = BM.transitions_for trigger machine in
      List.filter_map
        (fun env ->
          let enabled =
            List.filter (fun tr -> holds env (full_pre tr)) transitions
          in
          match enabled with
          | [] | [ _ ] -> None
          | several ->
            (* Several enabled branches are fine when they agree on
               target and effect; flag genuine conflicts only. *)
            let signatures =
              List.map
                (fun (tr : BM.transition) -> (tr.target, tr.effect))
                several
              |> List.sort_uniq compare
            in
            if List.length signatures = 1 then None
            else
              Some
                { check = "determinism";
                  subject = Fmt.str "%a" BM.pp_trigger trigger;
                  detail =
                    Printf.sprintf
                      "%d conflicting transitions enabled in state %s"
                      (List.length several) (describe_env env)
                })
        sample)
    (BM.triggers machine)

let vacuity machine ~pre_states ~post_states =
  List.concat_map
    (fun (tr : BM.transition) ->
      let pre_ok =
        let invariant =
          match BM.find_state tr.source machine with
          | Some s -> s.BM.invariant
          | None -> Cm_ocl.Ast.Bool_lit false
        in
        let pre_expr =
          match tr.guard with
          | Some g -> Cm_ocl.Ast.Binop (Cm_ocl.Ast.And, invariant, g)
          | None -> invariant
        in
        List.filter (fun env -> holds env pre_expr) pre_states
      in
      if pre_ok = [] then
        [ { check = "vacuity";
            subject =
              Fmt.str "%s->%s on %a" tr.source tr.target BM.pp_trigger
                tr.trigger;
            detail = "no sampled state enables this transition"
          }
        ]
      else begin
        let post_expr =
          let invariant =
            match BM.find_state tr.target machine with
            | Some s -> s.BM.invariant
            | None -> Cm_ocl.Ast.Bool_lit false
          in
          match tr.effect with
          | Some e -> Cm_ocl.Ast.Binop (Cm_ocl.Ast.And, invariant, e)
          | None -> invariant
        in
        let witnessed =
          List.exists
            (fun pre_env ->
              List.exists
                (fun post_env ->
                  Eval.check
                    (Eval.with_pre ~pre:pre_env post_env)
                    post_expr
                  = Value.True)
                post_states)
            pre_ok
        in
        if witnessed then []
        else
          [ { check = "vacuity";
              subject =
                Fmt.str "%s->%s on %a" tr.source tr.target BM.pp_trigger
                  tr.trigger;
              detail =
                "no sampled (pre, post) state pair satisfies the \
                 postcondition"
            }
          ]
      end)
    machine.BM.transitions

let analyze machine sample =
  exclusivity machine sample
  @ coverage machine sample
  @ guard_determinism machine sample
  @ vacuity machine ~pre_states:sample ~post_states:sample

let cinder_sample ?(max_volumes = 4) ?(max_quota = 4) () =
  let volume i status =
    Json.obj
      [ ("id", Json.string (Printf.sprintf "vol-%d" i));
        ("name", Json.string (Printf.sprintf "v%d" i));
        ("status", Json.string status);
        ("size", Json.int 10)
      ]
  in
  let groups = [ "proj_administrator"; "service_architect"; "business_analyst" ] in
  (* the same enriched user binding the monitor's observer produces *)
  let user_json group =
    Cm_rbac.Role_assignment.enrich
      (Cm_rbac.Subject.make "sample-user" [ group ])
      Cm_rbac.Security_table.cinder_assignment
  in
  let states = ref [] in
  for quota = 1 to max_quota do
    for n = 0 to min max_volumes quota do
      (* two status mixes: all available, and (if any) first in-use *)
      let mixes =
        if n = 0 then [ [] ]
        else
          [ List.init n (fun i -> volume i "available");
            volume 0 "in-use" :: List.init (n - 1) (fun i -> volume (i + 1) "available")
          ]
      in
      List.iter
        (fun volumes ->
          List.iter
            (fun group ->
              let env =
                Eval.env_of_bindings
                  [ ( "project",
                      Json.obj
                        [ ("id", Json.string "p");
                          ("name", Json.string "p");
                          ("volumes", Json.list volumes)
                        ] );
                    ( "quota_sets",
                      Json.obj
                        [ ("id", Json.string "p");
                          ("volumes", Json.int quota);
                          ("gigabytes", Json.int 100)
                        ] );
                    ( "volume",
                      match volumes with
                      | first :: _ -> first
                      | [] -> Json.obj [] );
                    ("user", user_json group)
                  ]
              in
              states := env :: !states)
            groups)
        mixes
    done
  done;
  List.rev !states
