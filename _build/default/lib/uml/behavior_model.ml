type trigger = { meth : Cm_http.Meth.t; resource : string }

type state = {
  state_name : string;
  invariant : Cm_ocl.Ast.expr;
  state_requirements : string list;
}

type transition = {
  source : string;
  target : string;
  trigger : trigger;
  guard : Cm_ocl.Ast.expr option;
  effect : Cm_ocl.Ast.expr option;
  requirements : string list;
}

type t = {
  machine_name : string;
  context : string;
  initial : string;
  states : state list;
  transitions : transition list;
}

let state ?(requirements = []) state_name invariant =
  { state_name; invariant; state_requirements = requirements }

let transition ?guard ?effect ?(requirements = []) ~source ~target meth resource
    =
  { source; target; trigger = { meth; resource }; guard; effect; requirements }

let find_state name machine =
  List.find_opt (fun s -> s.state_name = name) machine.states

let trigger_equal a b = a.meth = b.meth && a.resource = b.resource

let triggers machine =
  List.fold_left
    (fun acc tr ->
      if List.exists (trigger_equal tr.trigger) acc then acc
      else acc @ [ tr.trigger ])
    [] machine.transitions

let transitions_for trigger machine =
  List.filter (fun tr -> trigger_equal tr.trigger trigger) machine.transitions

let methods_on resource machine =
  triggers machine
  |> List.filter (fun t -> t.resource = resource)
  |> List.map (fun t -> t.meth)
  |> List.sort_uniq Cm_http.Meth.compare

let pp_trigger ppf { meth; resource } =
  Fmt.pf ppf "%a(%s)" Cm_http.Meth.pp meth resource

let pp ppf machine =
  Fmt.pf ppf "state machine %S over %s: %d states, %d transitions"
    machine.machine_name machine.context
    (List.length machine.states)
    (List.length machine.transitions)
