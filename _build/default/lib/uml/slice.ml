module BM = Behavior_model
module RM = Resource_model

type criterion =
  | By_resources of string list
  | By_methods of Cm_http.Meth.t list
  | By_requirements of string list
  | Union of criterion list
  | Intersection of criterion list

let rec keeps criterion (tr : BM.transition) =
  match criterion with
  | By_resources resources ->
    List.exists
      (fun r ->
        String.lowercase_ascii r
        = String.lowercase_ascii tr.trigger.BM.resource)
      resources
  | By_methods methods -> List.mem tr.trigger.BM.meth methods
  | By_requirements ids ->
    List.exists (fun id -> List.mem id tr.requirements) ids
  | Union criteria -> List.exists (fun c -> keeps c tr) criteria
  | Intersection criteria -> List.for_all (fun c -> keeps c tr) criteria

let behavior criterion (machine : BM.t) =
  let transitions = List.filter (keeps criterion) machine.transitions in
  let touched =
    List.concat_map (fun (tr : BM.transition) -> [ tr.source; tr.target ]) transitions
  in
  let states =
    List.filter
      (fun (s : BM.state) ->
        s.state_name = machine.initial || List.mem s.state_name touched)
      machine.states
  in
  { machine with
    machine_name = machine.machine_name ^ "_slice";
    states;
    transitions
  }

let covered_resources (machine : BM.t) =
  BM.triggers machine
  |> List.map (fun (t : BM.trigger) -> t.resource)
  |> List.sort_uniq String.compare

(* Containment ancestors of a resource definition, via the first
   incoming association each step (the path by which it is addressed). *)
let rec ancestors model name acc =
  if List.mem name acc then acc
  else
    match RM.contained_by name model with
    | Some through -> ancestors model through.RM.source (name :: acc)
    | None -> name :: acc

let resource_model ~keep (model : RM.t) =
  let needed =
    List.fold_left
      (fun acc name -> ancestors model name acc)
      [ model.root ] keep
  in
  let resources =
    List.filter (fun (r : RM.resource_def) -> List.mem r.def_name needed) model.resources
  in
  let associations =
    List.filter
      (fun (a : RM.association) ->
        List.mem a.source needed && List.mem a.target needed)
      model.associations
  in
  { model with
    model_name = model.model_name ^ "_slice";
    resources;
    associations
  }
