lib/uml/validate.ml: Behavior_model Cm_ocl Fmt List Paths Printf Resource_model String
