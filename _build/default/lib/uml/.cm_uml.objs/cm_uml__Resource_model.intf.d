lib/uml/resource_model.mli: Cm_ocl Format Multiplicity
