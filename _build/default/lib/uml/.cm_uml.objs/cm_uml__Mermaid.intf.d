lib/uml/mermaid.mli: Behavior_model Resource_model
