lib/uml/slice.mli: Behavior_model Cm_http Resource_model
