lib/uml/analysis.ml: Behavior_model Cm_json Cm_ocl Cm_rbac Fmt List Printf String
