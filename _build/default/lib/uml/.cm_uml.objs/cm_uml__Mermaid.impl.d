lib/uml/mermaid.ml: Behavior_model Buffer Cm_ocl Fmt List Multiplicity Printf Resource_model String
