lib/uml/glance_model.mli: Behavior_model Cm_ocl Resource_model
