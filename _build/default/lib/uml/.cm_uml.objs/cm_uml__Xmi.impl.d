lib/uml/xmi.ml: Behavior_model Cm_http Cm_ocl Cm_xml Fmt List Multiplicity Option Printf Resource_model Result String
