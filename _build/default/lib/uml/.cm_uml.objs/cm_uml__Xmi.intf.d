lib/uml/xmi.mli: Behavior_model Resource_model
