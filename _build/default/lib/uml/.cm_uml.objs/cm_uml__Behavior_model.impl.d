lib/uml/behavior_model.ml: Cm_http Cm_ocl Fmt List
