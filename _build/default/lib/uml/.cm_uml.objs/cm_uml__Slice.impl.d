lib/uml/slice.ml: Behavior_model Cm_http List Resource_model String
