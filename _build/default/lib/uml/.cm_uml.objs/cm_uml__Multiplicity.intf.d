lib/uml/multiplicity.mli: Format
