lib/uml/analysis.mli: Behavior_model Cm_ocl Format
