lib/uml/multiplicity.ml: Fmt Printf String
