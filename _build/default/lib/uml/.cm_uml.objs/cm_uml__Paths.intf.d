lib/uml/paths.mli: Cm_http Resource_model
