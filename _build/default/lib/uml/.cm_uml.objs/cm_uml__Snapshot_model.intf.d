lib/uml/snapshot_model.mli: Behavior_model Cm_ocl Cm_rbac Resource_model
