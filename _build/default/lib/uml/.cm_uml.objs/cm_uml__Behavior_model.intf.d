lib/uml/behavior_model.mli: Cm_http Cm_ocl Format
