lib/uml/validate.mli: Behavior_model Format Resource_model
