lib/uml/cinder_model.ml: Behavior_model Cm_http Cm_ocl Multiplicity Resource_model
