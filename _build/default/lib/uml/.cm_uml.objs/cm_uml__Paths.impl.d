lib/uml/paths.ml: Cm_http List Multiplicity Option Printf Resource_model Result String
