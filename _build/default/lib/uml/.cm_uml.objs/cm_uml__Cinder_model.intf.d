lib/uml/cinder_model.mli: Behavior_model Cm_ocl Resource_model
