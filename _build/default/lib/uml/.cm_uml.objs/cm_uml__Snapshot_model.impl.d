lib/uml/snapshot_model.ml: Behavior_model Cinder_model Cm_http Cm_ocl Cm_rbac Multiplicity Resource_model
