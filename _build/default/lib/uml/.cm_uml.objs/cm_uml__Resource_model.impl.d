lib/uml/resource_model.ml: Cm_ocl Fmt List Multiplicity String
