module Pretty = Cm_ocl.Pretty
module Xml = Cm_xml.Xml
module Xml_parse = Cm_xml.Xml_parse
module Xml_print = Cm_xml.Xml_print

type document = {
  resource_model : Resource_model.t;
  behavior_models : Behavior_model.t list;
}

let el = Xml.element
let node e = Xml.Element e

(* ---------- writing ---------- *)

let write_attribute (a : Resource_model.attribute) =
  el "ownedAttribute"
    ~attrs:
      [ ("xmi:type", "uml:Property");
        ("name", a.attr_name);
        ("type", Resource_model.attr_type_to_string a.attr_type);
        ("visibility", "public")
      ]

let write_class (r : Resource_model.resource_def) =
  el "packagedElement"
    ~attrs:
      [ ("xmi:type", "uml:Class");
        ("xmi:id", "class_" ^ r.def_name);
        ("name", r.def_name);
        ( "cm:kind",
          match r.kind with
          | Resource_model.Collection -> "collection"
          | Resource_model.Normal -> "normal" )
      ]
    ~children:(List.map (fun a -> node (write_attribute a)) r.attributes)

let write_association (a : Resource_model.association) =
  el "packagedElement"
    ~attrs:
      [ ("xmi:type", "uml:Association");
        ("xmi:id", Printf.sprintf "assoc_%s_%s" a.source a.role);
        ("name", a.role)
      ]
    ~children:
      [ node
          (el "memberEnd"
             ~attrs:
               [ ("source", a.source);
                 ("target", a.target);
                 ("multiplicity", Multiplicity.to_string a.multiplicity)
               ])
      ]

let write_ocl tag expr =
  el tag
    ~children:
      [ node
          (el "specification"
             ~attrs:[ ("xmi:type", "uml:OpaqueExpression") ]
             ~children:
               [ node
                   (el "body" ~children:[ Xml.text (Pretty.to_string expr) ])
               ])
      ]

let write_comment text =
  el "ownedComment"
    ~children:[ node (el "body" ~children:[ Xml.text text ]) ]

let requirement_comments requirements =
  List.map (fun id -> node (write_comment ("SecReq " ^ id))) requirements

let write_state (s : Behavior_model.state) =
  el "subvertex"
    ~attrs:
      [ ("xmi:type", "uml:State");
        ("xmi:id", "state_" ^ s.state_name);
        ("name", s.state_name)
      ]
    ~children:
      (node (write_ocl "ownedRule" s.invariant)
      :: requirement_comments s.state_requirements)

let write_transition (t : Behavior_model.transition) =
  let children =
    [ node
        (el "trigger"
           ~attrs:
             [ ( "name",
                 Fmt.str "%s(%s)"
                   (Cm_http.Meth.to_string t.trigger.meth)
                   t.trigger.resource )
             ])
    ]
    @ (match t.guard with
       | Some guard -> [ node (write_ocl "guard" guard) ]
       | None -> [])
    @ (match t.effect with
       | Some effect -> [ node (write_ocl "effect" effect) ]
       | None -> [])
    @ requirement_comments t.requirements
  in
  el "transition"
    ~attrs:
      [ ("xmi:type", "uml:Transition");
        ("source", "state_" ^ t.source);
        ("target", "state_" ^ t.target)
      ]
    ~children

let write_state_machine (m : Behavior_model.t) =
  let region_children =
    node
      (el "subvertex"
         ~attrs:
           [ ("xmi:type", "uml:Pseudostate");
             ("kind", "initial");
             ("cm:initialTarget", "state_" ^ m.initial)
           ])
    :: List.map (fun s -> node (write_state s)) m.states
    @ List.map (fun t -> node (write_transition t)) m.transitions
  in
  el "packagedElement"
    ~attrs:
      [ ("xmi:type", "uml:StateMachine");
        ("xmi:id", "sm_" ^ m.machine_name);
        ("name", m.machine_name);
        ("cm:context", m.context)
      ]
    ~children:[ node (el "region" ~children:region_children) ]

let write doc =
  let rm = doc.resource_model in
  let model =
    el "uml:Model"
      ~attrs:
        [ ("xmi:id", "model_" ^ rm.model_name);
          ("name", rm.model_name);
          ("cm:basePath", rm.base_path);
          ("cm:root", rm.root)
        ]
      ~children:
        (List.map (fun r -> node (write_class r)) rm.resources
        @ List.map (fun a -> node (write_association a)) rm.associations
        @ List.map (fun m -> node (write_state_machine m)) doc.behavior_models)
  in
  let root =
    el "xmi:XMI"
      ~attrs:
        [ ("xmi:version", "2.1");
          ("xmlns:xmi", "http://schema.omg.org/spec/XMI/2.1");
          ("xmlns:uml", "http://www.omg.org/spec/UML/20090901");
          ("xmlns:cm", "http://cloudmon/xmi/extensions")
        ]
      ~children:[ node model ]
  in
  Xml_print.to_string_pretty root

(* ---------- reading ---------- *)

let ( let* ) r f = Result.bind r f

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

let read_ocl context element =
  match Xml.find_child "specification" element with
  | None -> Error (context ^ ": missing <specification>")
  | Some spec ->
    (match Xml.find_child "body" spec with
     | None -> Error (context ^ ": missing <body>")
     | Some body ->
       let text = String.trim (Xml.text_content body) in
       (match Cm_ocl.Ocl_parser.parse text with
        | Ok expr -> Ok expr
        | Error err ->
          Error (Fmt.str "%s: %a in %S" context Cm_ocl.Ocl_parser.pp_error err text)))

let read_requirements element =
  Xml.find_children "ownedComment" element
  |> List.filter_map (fun c ->
         match Xml.find_child "body" c with
         | None -> None
         | Some body ->
           let text = String.trim (Xml.text_content body) in
           if String.length text > 7 && String.sub text 0 7 = "SecReq " then
             Some (String.sub text 7 (String.length text - 7))
           else None)

let packaged_elements kind model_el =
  Xml.find_children "packagedElement" model_el
  |> List.filter (fun e -> Xml.attr "xmi:type" e = Some kind)

let read_class class_el =
  let* name =
    match Xml.attr "name" class_el with
    | Some n -> Ok n
    | None -> Error "class without a name"
  in
  let* kind =
    match Xml.attr "cm:kind" class_el with
    | Some "collection" -> Ok Resource_model.Collection
    | Some "normal" | None -> Ok Resource_model.Normal
    | Some other -> Error (Printf.sprintf "class %s: unknown kind %S" name other)
  in
  let* attributes =
    Xml.find_children "ownedAttribute" class_el
    |> List.map (fun attr_el ->
           let* attr_name =
             match Xml.attr "name" attr_el with
             | Some n -> Ok n
             | None -> Error (Printf.sprintf "attribute of %s without a name" name)
           in
           let type_text = Option.value ~default:"String" (Xml.attr "type" attr_el) in
           match Resource_model.attr_type_of_string type_text with
           | Some attr_type -> Ok { Resource_model.attr_name; attr_type }
           | None ->
             Error
               (Printf.sprintf "attribute %s.%s: unknown type %S" name attr_name
                  type_text))
    |> collect_results
  in
  Ok { Resource_model.def_name = name; kind; attributes }

let read_association assoc_el =
  let* role =
    match Xml.attr "name" assoc_el with
    | Some n -> Ok n
    | None -> Error "association without a name"
  in
  match Xml.find_child "memberEnd" assoc_el with
  | None -> Error (Printf.sprintf "association %s: missing <memberEnd>" role)
  | Some member ->
    let* source =
      match Xml.attr "source" member with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "association %s: missing source" role)
    in
    let* target =
      match Xml.attr "target" member with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "association %s: missing target" role)
    in
    let* multiplicity =
      match Xml.attr "multiplicity" member with
      | Some text -> Multiplicity.of_string text
      | None -> Ok Multiplicity.many
    in
    Ok { Resource_model.role; source; target; multiplicity }

let strip_state_prefix id =
  if String.length id > 6 && String.sub id 0 6 = "state_" then
    String.sub id 6 (String.length id - 6)
  else id

let parse_trigger text =
  match String.index_opt text '(' with
  | Some i when String.length text > 0 && text.[String.length text - 1] = ')' ->
    let meth_text = String.sub text 0 i in
    let resource = String.sub text (i + 1) (String.length text - i - 2) in
    (match Cm_http.Meth.of_string meth_text with
     | Some meth -> Ok { Behavior_model.meth; resource }
     | None -> Error (Printf.sprintf "unknown method in trigger %S" text))
  | _ -> Error (Printf.sprintf "malformed trigger %S" text)

let read_state state_el =
  let* name =
    match Xml.attr "name" state_el with
    | Some n -> Ok n
    | None -> Error "state without a name"
  in
  let* invariant =
    match Xml.find_child "ownedRule" state_el with
    | Some rule -> read_ocl ("state " ^ name) rule
    | None -> Ok (Cm_ocl.Ast.Bool_lit true)
  in
  Ok
    { Behavior_model.state_name = name;
      invariant;
      state_requirements = read_requirements state_el
    }

let read_transition tr_el =
  let* source =
    match Xml.attr "source" tr_el with
    | Some s -> Ok (strip_state_prefix s)
    | None -> Error "transition without a source"
  in
  let* target =
    match Xml.attr "target" tr_el with
    | Some t -> Ok (strip_state_prefix t)
    | None -> Error "transition without a target"
  in
  let* trigger =
    match Xml.find_child "trigger" tr_el with
    | Some trig ->
      (match Xml.attr "name" trig with
       | Some text -> parse_trigger text
       | None -> Error "trigger without a name")
    | None -> Error "transition without a trigger"
  in
  let context = Fmt.str "transition %s->%s" source target in
  let* guard =
    match Xml.find_child "guard" tr_el with
    | Some g ->
      let* expr = read_ocl (context ^ " guard") g in
      Ok (Some expr)
    | None -> Ok None
  in
  let* effect =
    match Xml.find_child "effect" tr_el with
    | Some e ->
      let* expr = read_ocl (context ^ " effect") e in
      Ok (Some expr)
    | None -> Ok None
  in
  Ok
    { Behavior_model.source;
      target;
      trigger;
      guard;
      effect;
      requirements = read_requirements tr_el
    }

let read_state_machine sm_el =
  let* name =
    match Xml.attr "name" sm_el with
    | Some n -> Ok n
    | None -> Error "state machine without a name"
  in
  let context = Option.value ~default:"" (Xml.attr "cm:context" sm_el) in
  match Xml.find_child "region" sm_el with
  | None -> Error (Printf.sprintf "state machine %s: missing <region>" name)
  | Some region ->
    let subvertices = Xml.find_children "subvertex" region in
    let state_els =
      List.filter (fun e -> Xml.attr "xmi:type" e = Some "uml:State") subvertices
    in
    let* states = collect_results (List.map read_state state_els) in
    let* initial =
      match
        List.find_opt
          (fun e -> Xml.attr "xmi:type" e = Some "uml:Pseudostate")
          subvertices
      with
      | Some pseudo ->
        (match Xml.attr "cm:initialTarget" pseudo with
         | Some target -> Ok (strip_state_prefix target)
         | None -> Error (Printf.sprintf "state machine %s: initial pseudostate without target" name))
      | None ->
        (match states with
         | first :: _ -> Ok first.Behavior_model.state_name
         | [] -> Error (Printf.sprintf "state machine %s has no states" name))
    in
    let* transitions =
      collect_results (List.map read_transition (Xml.find_children "transition" region))
    in
    Ok
      { Behavior_model.machine_name = name;
        context;
        initial;
        states;
        transitions
      }

let read text =
  match Xml_parse.parse text with
  | Error err -> Error (Fmt.str "%a" Xml_parse.pp_error err)
  | Ok root ->
    let* model_el =
      match Xml.find_child "uml:Model" root with
      | Some m -> Ok m
      | None ->
        (* Tolerate a bare <uml:Model> root (some exporters omit the
           <xmi:XMI> wrapper). *)
        if root.Xml.name = "uml:Model" then Ok root
        else Error "no <uml:Model> element found"
    in
    let model_name = Option.value ~default:"Model" (Xml.attr "name" model_el) in
    let base_path = Option.value ~default:"/" (Xml.attr "cm:basePath" model_el) in
    let* resources =
      collect_results (List.map read_class (packaged_elements "uml:Class" model_el))
    in
    let* associations =
      collect_results
        (List.map read_association (packaged_elements "uml:Association" model_el))
    in
    let* root_name =
      match Xml.attr "cm:root" model_el with
      | Some r -> Ok r
      | None ->
        (* Default: the first collection that is no association's target. *)
        (match
           List.find_opt
             (fun (r : Resource_model.resource_def) ->
               r.kind = Resource_model.Collection
               && not
                    (List.exists
                       (fun (a : Resource_model.association) ->
                         a.target = r.def_name)
                       associations))
             resources
         with
         | Some r -> Ok r.def_name
         | None -> Error "cannot determine root resource definition")
    in
    let* behavior_models =
      collect_results
        (List.map read_state_machine
           (packaged_elements "uml:StateMachine" model_el))
    in
    Ok
      { resource_model =
          { Resource_model.model_name;
            base_path;
            root = root_name;
            resources;
            associations
          };
        behavior_models
      }

let read_exn text =
  match read text with
  | Ok doc -> doc
  | Error msg -> failwith ("Xmi.read_exn: " ^ msg)
