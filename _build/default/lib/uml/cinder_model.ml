let ocl = Cm_ocl.Ocl_parser.parse_exn

let resources : Resource_model.t =
  let open Resource_model in
  { model_name = "CinderResourceModel";
    base_path = "/v3";
    root = "Projects";
    resources =
      [ collection "Projects";
        normal "project" [ ("id", A_string); ("name", A_string) ];
        collection "Volumes";
        normal "volume"
          [ ("id", A_string);
            ("name", A_string);
            ("status", A_string);
            ("size", A_int)
          ];
        normal "quota_sets"
          [ ("id", A_string); ("volumes", A_int); ("gigabytes", A_int) ];
        normal "usergroup" [ ("id", A_string); ("name", A_string); ("role", A_string) ]
      ];
    associations =
      [ assoc ~role:"projects" "Projects" "project";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"volumes" "project"
          "Volumes";
        assoc ~role:"volume" "Volumes" "volume";
        assoc ~multiplicity:Multiplicity.exactly_one ~role:"quota_sets"
          "project" "quota_sets";
        assoc ~role:"usergroups" "project" "usergroup"
      ]
  }

let signature = Resource_model.signature resources

let s_no_volume = "project_with_no_volume"
let s_not_full = "project_with_volume_and_not_full_quota"
let s_full = "project_with_volume_and_full_quota"

let inv_no_volume = ocl "project.id->size() = 1 and project.volumes->size() = 0"

let inv_not_full =
  ocl
    "project.id->size() = 1 and project.volumes->size() >= 1 and \
     project.volumes->size() < quota_sets.volumes"

let inv_full =
  ocl
    "project.id->size() = 1 and project.volumes->size() >= 1 and \
     project.volumes->size() = quota_sets.volumes"

let behavior : Behavior_model.t =
  let open Behavior_model in
  let post = Cm_http.Meth.POST
  and delete = Cm_http.Meth.DELETE
  and get = Cm_http.Meth.GET
  and put = Cm_http.Meth.PUT in
  { machine_name = "CinderProjectProtocol";
    context = "project";
    initial = s_no_volume;
    states =
      [ state s_no_volume inv_no_volume;
        state s_not_full inv_not_full;
        state s_full inv_full
      ];
    transitions =
      [ (* POST(volume): create — three transitions depending on how the
           new count compares to the quota. *)
        transition ~source:s_no_volume ~target:s_not_full
          ~guard:(ocl "quota_sets.volumes > 1")
          ~effect:(ocl "project.volumes->size() = 1")
          ~requirements:[ "1.3" ] post "volume";
        transition ~source:s_no_volume ~target:s_full
          ~guard:(ocl "quota_sets.volumes = 1")
          ~effect:(ocl "project.volumes->size() = 1")
          ~requirements:[ "1.3" ] post "volume";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "project.volumes->size() + 1 < quota_sets.volumes")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) + 1")
          ~requirements:[ "1.3" ] post "volume";
        transition ~source:s_not_full ~target:s_full
          ~guard:(ocl "project.volumes->size() + 1 = quota_sets.volumes")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) + 1")
          ~requirements:[ "1.3" ] post "volume";
        (* DELETE(volume): the paper's Listing 1 — one transition from
           the full-quota state, two from the not-full state. *)
        transition ~source:s_full ~target:s_not_full
          ~guard:(ocl "volume.id->size() = 1 and volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) - 1")
          ~requirements:[ "1.4" ] delete "volume";
        transition ~source:s_not_full ~target:s_not_full
          ~guard:
            (ocl
               "volume.id->size() = 1 and project.volumes->size() > 1 and \
                volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size()) - 1")
          ~requirements:[ "1.4" ] delete "volume";
        transition ~source:s_not_full ~target:s_no_volume
          ~guard:
            (ocl
               "volume.id->size() = 1 and project.volumes->size() = 1 and \
                volume.status <> 'in-use'")
          ~effect:(ocl "project.volumes->size() = 0")
          ~requirements:[ "1.4" ] delete "volume";
        (* GET(volume): reading volume details never changes state; the
           addressed volume must exist (a GET on an unknown id is a 404,
           not a contract violation). *)
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "volume.id->size() = 1")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "volume";
        transition ~source:s_full ~target:s_full
          ~guard:(ocl "volume.id->size() = 1")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "volume";
        (* GET(Volumes): listing the collection, possible in any state. *)
        transition ~source:s_no_volume ~target:s_no_volume
          ~effect:(ocl "project.volumes->size() = 0")
          ~requirements:[ "1.1" ] get "Volumes";
        transition ~source:s_not_full ~target:s_not_full
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "Volumes";
        transition ~source:s_full ~target:s_full
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.1" ] get "Volumes";
        (* PUT(volume): update in place — the count is unchanged and the
           volume must not be mid-operation. *)
        transition ~source:s_not_full ~target:s_not_full
          ~guard:(ocl "volume.id->size() = 1 and volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.2" ] put "volume";
        transition ~source:s_full ~target:s_full
          ~guard:(ocl "volume.id->size() = 1 and volume.status <> 'in-use'")
          ~effect:
            (ocl "project.volumes->size() = pre(project.volumes->size())")
          ~requirements:[ "1.2" ] put "volume"
      ]
  }
