type t = { lower : int; upper : int option }

let exactly_one = { lower = 1; upper = Some 1 }
let optional = { lower = 0; upper = Some 1 }
let many = { lower = 0; upper = None }
let at_least_one = { lower = 1; upper = None }

let make lower upper =
  if lower < 0 then Error "negative lower bound"
  else
    match upper with
    | Some u when u < lower -> Error "upper bound below lower bound"
    | Some u when u < 0 -> Error "negative upper bound"
    | _ -> Ok { lower; upper }

let is_collection { upper; _ } =
  match upper with Some u -> u > 1 | None -> true

let admits { lower; upper } count =
  count >= lower && (match upper with Some u -> count <= u | None -> true)

let to_string { lower; upper } =
  match upper with
  | Some u when u = lower -> string_of_int lower
  | Some u -> Printf.sprintf "%d..%d" lower u
  | None -> Printf.sprintf "%d..*" lower

let of_string text =
  match String.index_opt text '.' with
  | None ->
    (match int_of_string_opt (String.trim text) with
     | Some n -> make n (Some n)
     | None -> Error (Printf.sprintf "invalid multiplicity %S" text))
  | Some i ->
    let lower_text = String.trim (String.sub text 0 i) in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    let upper_text =
      String.trim
        (if String.length rest > 0 && rest.[0] = '.' then
           String.sub rest 1 (String.length rest - 1)
         else rest)
    in
    (match int_of_string_opt lower_text with
     | None -> Error (Printf.sprintf "invalid lower bound in %S" text)
     | Some lower ->
       if upper_text = "*" then make lower None
       else
         (match int_of_string_opt upper_text with
          | Some upper -> make lower (Some upper)
          | None -> Error (Printf.sprintf "invalid upper bound in %S" text)))

let equal a b = a = b
let pp ppf m = Fmt.string ppf (to_string m)
