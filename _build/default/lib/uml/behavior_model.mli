(** The behavioral model: a UML protocol state machine (§IV-B).

    States carry OCL invariants over addressable resources; transitions
    are triggered by an HTTP method on a resource, optionally guarded,
    and may declare an effect (a postcondition contribution).  Security
    requirements from the requirements table are attached as annotations
    (plain comments in the paper — deliberately {e not} a UML profile)
    giving requirement traceability during validation. *)

type trigger = {
  meth : Cm_http.Meth.t;
  resource : string;  (** resource definition name, e.g. "volume" *)
}

type state = {
  state_name : string;
  invariant : Cm_ocl.Ast.expr;
  state_requirements : string list;  (** SecReq ids, e.g. ["1.4"] *)
}

type transition = {
  source : string;
  target : string;
  trigger : trigger;
  guard : Cm_ocl.Ast.expr option;
  effect : Cm_ocl.Ast.expr option;
  requirements : string list;
}

type t = {
  machine_name : string;
  context : string;  (** the resource whose protocol this machine is, e.g. "project" *)
  initial : string;  (** name of the initial state *)
  states : state list;
  transitions : transition list;
}

val state : ?requirements:string list -> string -> Cm_ocl.Ast.expr -> state

val transition :
  ?guard:Cm_ocl.Ast.expr ->
  ?effect:Cm_ocl.Ast.expr ->
  ?requirements:string list ->
  source:string ->
  target:string ->
  Cm_http.Meth.t ->
  string ->
  transition
(** [transition ~source ~target meth resource]. *)

val find_state : string -> t -> state option

val triggers : t -> trigger list
(** Distinct triggers, in first-appearance order — one contract is
    generated per trigger. *)

val transitions_for : trigger -> t -> transition list
(** All transitions fired by a trigger (the contract combines them). *)

val methods_on : string -> t -> Cm_http.Meth.t list
(** Methods the machine permits on a resource (drives the generated 405
    list in views.py). *)

val trigger_equal : trigger -> trigger -> bool
val pp_trigger : Format.formatter -> trigger -> unit
val pp : Format.formatter -> t -> unit
