(** A third worked example: volume snapshots — {e nested} resources.

    Snapshots live two containment levels below the project
    ([/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id}]),
    exercising the model-driven observer's ancestor binding: contracts
    range over the {e parent} volume ([volume.status], the grafted
    [volume.snapshots] listing) and the addressed snapshot.

    The protocol is a two-state machine over the parent volume: it either
    has no snapshot or some.  Creating a snapshot requires a quiesced
    (not in-use) volume; security requirements use the 3.x range. *)

val resources : Resource_model.t
(** The Cinder resource model extended with [Snapshots]/[snapshot] under
    [volume]. *)

val behavior : Behavior_model.t
val signature : Cm_ocl.Ty.signature

val s_no_snapshot : string
val s_with_snapshots : string

val security_table : Cm_rbac.Security_table.t
(** GET (3.1) for admin, member, user; POST (3.2) for admin, member;
    DELETE (3.3) for admin — on [snapshot]; plus the listing entry for
    [Snapshots] under 3.1. *)
