module Json = Cm_json.Json

type env = {
  vars : (string * Value.t) list;
  pre : env option;
  is_pre : bool;
      (* true when this env *is* a pre-state: [pre(e)] then means [e]
         (the operator is idempotent), rather than Undef *)
}

let env_of_bindings bindings =
  { vars = List.map (fun (name, json) -> (name, Value.Json json)) bindings;
    pre = None;
    is_pre = false
  }

let with_pre ~pre env = { env with pre = Some { pre with is_pre = true } }
let bind name json env = { env with vars = (name, Value.Json json) :: env.vars }

let bindings env =
  List.filter_map
    (fun (name, value) ->
      match value with
      | Value.Json json -> Some (name, json)
      | Value.Undef -> None)
    env.vars

let lookup name env =
  match List.assoc_opt name env.vars with
  | Some value -> value
  | None -> Value.Undef

let bind_value name value env = { env with vars = (name, value) :: env.vars }

let navigate value prop =
  match value with
  | Value.Undef -> Value.Undef
  | Value.Json (Json.Obj _ as obj) ->
    (match Json.member prop obj with
     | Some v -> Value.Json v
     | None -> Value.Undef)
  | Value.Json (Json.List items) ->
    (* OCL collect shorthand: navigating a collection navigates each
       element, dropping undefined results. *)
    let collected =
      List.filter_map
        (fun item ->
          match item with
          | Json.Obj _ -> Json.member prop item
          | _ -> None)
        items
    in
    Value.Json (Json.List collected)
  | Value.Json _ -> Value.Undef

let numeric = function
  | Value.Json (Json.Int n) -> Some (`Int n)
  | Value.Json (Json.Float f) -> Some (`Float f)
  | _ -> None

let arith op a b =
  match numeric a, numeric b with
  | Some (`Int x), Some (`Int y) ->
    (match op with
     | Ast.Add -> Value.of_int (x + y)
     | Ast.Sub -> Value.of_int (x - y)
     | Ast.Mul -> Value.of_int (x * y)
     | Ast.Div -> if y = 0 then Value.Undef else Value.of_int (x / y)
     | _ -> Value.Undef)
  | Some nx, Some ny ->
    let to_f = function `Int n -> float_of_int n | `Float f -> f in
    let x = to_f nx and y = to_f ny in
    (match op with
     | Ast.Add -> Value.Json (Json.Float (x +. y))
     | Ast.Sub -> Value.Json (Json.Float (x -. y))
     | Ast.Mul -> Value.Json (Json.Float (x *. y))
     | Ast.Div -> if y = 0. then Value.Undef else Value.Json (Json.Float (x /. y))
     | _ -> Value.Undef)
  | _, _ -> Value.Undef

let coll_sum items =
  let rec loop acc_int acc_float all_int = function
    | [] ->
      if all_int then Value.of_int acc_int
      else Value.Json (Json.Float (acc_float +. float_of_int acc_int))
    | item :: rest ->
      (match numeric item with
       | Some (`Int n) -> loop (acc_int + n) acc_float all_int rest
       | Some (`Float f) -> loop acc_int (acc_float +. f) false rest
       | None -> Value.Undef)
  in
  loop 0 0. true items

let rec eval env expr =
  match expr with
  | Ast.Bool_lit b -> Value.of_bool b
  | Ast.Int_lit n -> Value.of_int n
  | Ast.String_lit s -> Value.of_string s
  | Ast.Null_lit -> Value.Json Json.Null
  | Ast.Var name -> lookup name env
  | Ast.Nav (e, prop) -> navigate (eval env e) prop
  | Ast.At_pre e ->
    (match env.pre with
     | Some pre_env -> eval pre_env e
     | None -> if env.is_pre then eval env e else Value.Undef)
  | Ast.Coll (e, op) -> eval_coll env e op
  | Ast.Member (e, includes, arg) ->
    let items = Value.as_collection (eval env e) in
    let needle = eval env arg in
    (match needle with
     | Value.Undef -> Value.Undef
     | Value.Json _ ->
       let found =
         List.exists (fun item -> Value.equal_value item needle = Value.True) items
       in
       Value.of_bool (if includes then found else not found))
  | Ast.Count (e, arg) ->
    let items = Value.as_collection (eval env e) in
    let needle = eval env arg in
    (match needle with
     | Value.Undef -> Value.Undef
     | Value.Json _ ->
       Value.of_int
         (List.length
            (List.filter
               (fun item -> Value.equal_value item needle = Value.True)
               items)))
  | Ast.Iter (e, kind, var, body) -> eval_iter env e kind var body
  | Ast.Unop (Ast.Not, e) -> Value.of_tribool (Value.tri_not (Value.truth (eval env e)))
  | Ast.Unop (Ast.Neg, e) ->
    (match numeric (eval env e) with
     | Some (`Int n) -> Value.of_int (-n)
     | Some (`Float f) -> Value.Json (Json.Float (-.f))
     | None -> Value.Undef)
  | Ast.Binop (op, a, b) -> eval_binop env op a b

and eval_coll env e op =
  let value = eval env e in
  let items = Value.as_collection value in
  match op with
  | Ast.Size -> Value.of_int (List.length items)
  | Ast.Is_empty -> Value.of_bool (items = [])
  | Ast.Not_empty -> Value.of_bool (items <> [])
  | Ast.Sum -> coll_sum items
  | Ast.First -> (match items with first :: _ -> first | [] -> Value.Undef)
  | Ast.Last ->
    (match List.rev items with last :: _ -> last | [] -> Value.Undef)
  | Ast.As_set ->
    let rec dedup seen = function
      | [] -> List.rev seen
      | item :: rest ->
        if
          List.exists
            (fun s -> Value.equal_value s item = Value.True)
            seen
        then dedup seen rest
        else dedup (item :: seen) rest
    in
    let distinct =
      dedup [] items
      |> List.filter_map (function
           | Value.Json j -> Some j
           | Value.Undef -> None)
    in
    Value.Json (Json.List distinct)

and eval_iter env e kind var body =
  let items = Value.as_collection (eval env e) in
  let body_truth item = Value.truth (eval (bind_value var item env) body) in
  match kind with
  | Ast.For_all ->
    Value.of_tribool
      (List.fold_left
         (fun acc item -> Value.tri_and acc (body_truth item))
         Value.True items)
  | Ast.Exists ->
    Value.of_tribool
      (List.fold_left
         (fun acc item -> Value.tri_or acc (body_truth item))
         Value.False items)
  | Ast.One ->
    let count_true = ref 0 and unknown = ref false in
    List.iter
      (fun item ->
        match body_truth item with
        | Value.True -> incr count_true
        | Value.False -> ()
        | Value.Unknown -> unknown := true)
      items;
    if !unknown then Value.Undef else Value.of_bool (!count_true = 1)
  | Ast.Select | Ast.Reject ->
    let keep_on = if kind = Ast.Select then Value.True else Value.False in
    let rec loop acc = function
      | [] -> Value.Json (Json.List (List.rev acc))
      | item :: rest ->
        (match body_truth item with
         | Value.Unknown -> Value.Undef
         | t ->
           let acc =
             if t = keep_on then
               match item with
               | Value.Json j -> j :: acc
               | Value.Undef -> acc
             else acc
           in
           loop acc rest)
    in
    loop [] items
  | Ast.Any ->
    let rec find = function
      | [] -> Value.Undef
      | item :: rest ->
        (match body_truth item with
         | Value.True -> item
         | Value.False -> find rest
         | Value.Unknown -> Value.Undef)
    in
    find items
  | Ast.Is_unique ->
    let values = List.map (fun item -> eval (bind_value var item env) body) items in
    if List.exists (fun v -> v = Value.Undef) values then Value.Undef
    else begin
      let rec pairwise = function
        | [] -> true
        | v :: rest ->
          List.for_all (fun w -> Value.equal_value v w <> Value.True) rest
          && pairwise rest
      in
      Value.of_bool (pairwise values)
    end
  | Ast.Collect ->
    let mapped =
      List.filter_map
        (fun item ->
          match eval (bind_value var item env) body with
          | Value.Json j -> Some j
          | Value.Undef -> None)
        items
    in
    Value.Json (Json.List mapped)

and eval_binop env op a b =
  match op with
  | Ast.And ->
    Value.of_tribool
      (Value.tri_and (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Or ->
    Value.of_tribool
      (Value.tri_or (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Implies ->
    Value.of_tribool
      (Value.tri_implies (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Xor ->
    Value.of_tribool
      (Value.tri_xor (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Eq -> Value.of_tribool (Value.equal_value (eval env a) (eval env b))
  | Ast.Neq ->
    Value.of_tribool (Value.tri_not (Value.equal_value (eval env a) (eval env b)))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    (match Value.compare_order (eval env a) (eval env b) with
     | None -> Value.Undef
     | Some c ->
       let holds =
         match op with
         | Ast.Lt -> c < 0
         | Ast.Le -> c <= 0
         | Ast.Gt -> c > 0
         | Ast.Ge -> c >= 0
         | _ -> false
       in
       Value.of_bool holds)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    arith op (eval env a) (eval env b)

let check env expr = Value.truth (eval env expr)

type verdict = Holds | Violated | Undefined_verdict of string

(* Cheap structural hint: variables involved in the undefined part. *)
let pp_culprit ppf e =
  Fmt.pf ppf "undefined over {%s}" (String.concat ", " (Ast.free_vars e))

let verdict env expr =
  match check env expr with
  | Value.True -> Holds
  | Value.False -> Violated
  | Value.Unknown ->
    (* Point at the first undefined atom to aid fault localization. *)
    let rec first_undef e =
      match e with
      | Ast.Binop ((Ast.And | Ast.Or | Ast.Implies | Ast.Xor), a, b) ->
        (match Value.truth (eval env a) with
         | Value.Unknown -> first_undef a
         | _ ->
           (match Value.truth (eval env b) with
            | Value.Unknown -> first_undef b
            | _ -> e))
      | _ -> e
    in
    let culprit = first_undef expr in
    Undefined_verdict (Fmt.str "%a" pp_culprit culprit)

let pp_verdict ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Violated -> Fmt.string ppf "violated"
  | Undefined_verdict hint -> Fmt.pf ppf "undefined (%s)" hint

let verdict_equal a b =
  match a, b with
  | Holds, Holds | Violated, Violated -> true
  | Undefined_verdict _, Undefined_verdict _ -> true
  | _ -> false
