type t =
  | Bool
  | Int
  | Real
  | String
  | Collection of t
  | Object of (string * t) list
  | Any

type signature = (string * t) list

let rec equal a b =
  match a, b with
  | Bool, Bool | Int, Int | Real, Real | String, String | Any, Any -> true
  | Collection x, Collection y -> equal x y
  | Object xs, Object ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, t1) (k2, t2) -> k1 = k2 && equal t1 t2)
         (List.sort compare xs) (List.sort compare ys)
  | _ -> false

let is_numeric = function Int | Real | Any -> true | _ -> false

let rec compatible a b =
  match a, b with
  | Any, _ | _, Any -> true
  | (Int | Real), (Int | Real) -> true
  | Bool, Bool | String, String -> true
  | Collection x, Collection y -> compatible x y
  | Object xs, Object ys ->
    List.for_all
      (fun (k, tx) ->
        match List.assoc_opt k ys with
        | Some ty -> compatible tx ty
        | None -> true)
      xs
  | _ -> false

let element = function Collection t -> t | t -> t

let property name = function
  | Object props -> List.assoc_opt name props
  | Collection (Object props) ->
    (match List.assoc_opt name props with
     | Some t -> Some (Collection t)
     | None -> None)
  | Any -> Some Any
  | Collection Any -> Some (Collection Any)
  | Bool | Int | Real | String | Collection _ -> None

let rec pp ppf = function
  | Bool -> Fmt.string ppf "Boolean"
  | Int -> Fmt.string ppf "Integer"
  | Real -> Fmt.string ppf "Real"
  | String -> Fmt.string ppf "String"
  | Collection t -> Fmt.pf ppf "Collection(%a)" pp t
  | Object props ->
    let pp_prop ppf (k, t) = Fmt.pf ppf "%s: %a" k pp t in
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_prop) props
  | Any -> Fmt.string ppf "OclAny"

let to_string t = Fmt.str "%a" pp t
