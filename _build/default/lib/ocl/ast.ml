type unop = Not | Neg

type binop =
  | And
  | Or
  | Xor
  | Implies
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div

type coll_op = Size | Is_empty | Not_empty | Sum | First | Last | As_set
type iter_kind = For_all | Exists | Select | Reject | Collect | One | Any | Is_unique

type expr =
  | Bool_lit of bool
  | Int_lit of int
  | String_lit of string
  | Null_lit
  | Var of string
  | Nav of expr * string
  | At_pre of expr
  | Coll of expr * coll_op
  | Member of expr * bool * expr
  | Count of expr * expr
  | Iter of expr * iter_kind * string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr

let equal (a : expr) (b : expr) = a = b

let free_vars expr =
  let rec walk bound acc = function
    | Bool_lit _ | Int_lit _ | String_lit _ | Null_lit -> acc
    | Var name -> if List.mem name bound then acc else name :: acc
    | Nav (e, _) | At_pre e | Coll (e, _) | Unop (_, e) -> walk bound acc e
    | Member (e, _, x) | Count (e, x) -> walk bound (walk bound acc e) x
    | Iter (e, _, var, body) -> walk (var :: bound) (walk bound acc e) body
    | Binop (_, a, b) -> walk bound (walk bound acc a) b
  in
  List.sort_uniq String.compare (walk [] [] expr)

let rec has_pre = function
  | Bool_lit _ | Int_lit _ | String_lit _ | Null_lit | Var _ -> false
  | At_pre _ -> true
  | Nav (e, _) | Coll (e, _) | Unop (_, e) -> has_pre e
  | Member (e, _, x) | Count (e, x) -> has_pre e || has_pre x
  | Iter (e, _, _, body) -> has_pre e || has_pre body
  | Binop (_, a, b) -> has_pre a || has_pre b

let pre_subexprs expr =
  let rec walk acc = function
    | Bool_lit _ | Int_lit _ | String_lit _ | Null_lit | Var _ -> acc
    | At_pre e -> if List.mem e acc then acc else acc @ [ e ]
    | Nav (e, _) | Coll (e, _) | Unop (_, e) -> walk acc e
    | Member (e, _, x) | Count (e, x) -> walk (walk acc e) x
    | Iter (e, _, _, body) -> walk (walk acc e) body
    | Binop (_, a, b) -> walk (walk acc a) b
  in
  walk [] expr

let rec size = function
  | Bool_lit _ | Int_lit _ | String_lit _ | Null_lit | Var _ -> 1
  | Nav (e, _) | At_pre e | Coll (e, _) | Unop (_, e) -> 1 + size e
  | Member (e, _, x) | Count (e, x) -> 1 + size e + size x
  | Iter (e, _, _, body) -> 1 + size e + size body
  | Binop (_, a, b) -> 1 + size a + size b

let conj = function
  | [] -> Bool_lit true
  | first :: rest -> List.fold_left (fun acc e -> Binop (And, acc, e)) first rest

let disj = function
  | [] -> Bool_lit false
  | first :: rest -> List.fold_left (fun acc e -> Binop (Or, acc, e)) first rest

let ( &&& ) a b = Binop (And, a, b)
let ( ||| ) a b = Binop (Or, a, b)
let ( ==> ) a b = Binop (Implies, a, b)

let nav root props =
  List.fold_left (fun acc prop -> Nav (acc, prop)) (Var root) props

let rec map_vars subst = function
  | (Bool_lit _ | Int_lit _ | String_lit _ | Null_lit) as lit -> lit
  | Var name -> subst name
  | Nav (e, prop) -> Nav (map_vars subst e, prop)
  | At_pre e -> At_pre (map_vars subst e)
  | Coll (e, op) -> Coll (map_vars subst e, op)
  | Member (e, incl, x) -> Member (map_vars subst e, incl, map_vars subst x)
  | Count (e, x) -> Count (map_vars subst e, map_vars subst x)
  | Iter (e, kind, var, body) ->
    (* The binder shadows the context variable inside the body. *)
    let inner name = if name = var then Var name else subst name in
    Iter (map_vars subst e, kind, var, map_vars inner body)
  | Unop (op, e) -> Unop (op, map_vars subst e)
  | Binop (op, a, b) -> Binop (op, map_vars subst a, map_vars subst b)
