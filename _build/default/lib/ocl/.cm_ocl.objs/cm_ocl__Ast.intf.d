lib/ocl/ast.mli:
