lib/ocl/eval.ml: Ast Cm_json Fmt List String Value
