lib/ocl/pretty.ml: Ast Buffer Fmt List String
