lib/ocl/typecheck.ml: Ast Fmt List Pretty Printf Ty
