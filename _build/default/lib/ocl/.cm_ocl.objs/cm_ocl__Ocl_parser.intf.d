lib/ocl/ocl_parser.mli: Ast Format
