lib/ocl/value.ml: Cm_json Float Fmt Int List String
