lib/ocl/ty.ml: Fmt List
