lib/ocl/ty.mli: Format
