lib/ocl/value.mli: Cm_json Format
