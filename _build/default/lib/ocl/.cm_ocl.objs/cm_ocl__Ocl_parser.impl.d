lib/ocl/ocl_parser.ml: Ast Fmt Lexer Printf
