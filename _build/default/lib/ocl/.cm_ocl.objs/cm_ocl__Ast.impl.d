lib/ocl/ast.ml: List String
