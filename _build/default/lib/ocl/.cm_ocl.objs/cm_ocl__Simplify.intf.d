lib/ocl/simplify.mli: Ast
