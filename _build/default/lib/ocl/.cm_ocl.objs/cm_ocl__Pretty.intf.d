lib/ocl/pretty.mli: Ast Format
