lib/ocl/lexer.mli: Format
