lib/ocl/lexer.ml: Buffer Fmt List Printf String
