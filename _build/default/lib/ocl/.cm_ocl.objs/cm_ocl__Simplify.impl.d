lib/ocl/simplify.ml: Ast List
