lib/ocl/eval.mli: Ast Cm_json Format Value
