(** OCL evaluation over observed cloud state.

    An {!env} binds the model's context variables ([project], [user],
    [volume], [quota_sets], …) to JSON documents derived from cloud
    responses.  Evaluation of postconditions additionally receives the
    {e pre-state} environment — the snapshot taken before the call —
    which [pre(e)]/[e@pre] subexpressions are evaluated against. *)

type env

val env_of_bindings : (string * Cm_json.Json.t) list -> env
(** Environment with no pre-state: [pre(e)] evaluates to [Undef]. *)

val with_pre : pre:env -> env -> env
(** Attach a pre-state environment. *)

val bind : string -> Cm_json.Json.t -> env -> env
(** Add/shadow one binding. *)

val bind_value : string -> Value.t -> env -> env
(** Like {!bind} but can bind [Undef] — used by the snapshot runtime to
    carry over values that were already undefined before the call. *)

val bindings : env -> (string * Cm_json.Json.t) list

val lookup : string -> env -> Value.t

val eval : env -> Ast.expr -> Value.t
(** Total: never raises; failures yield [Value.Undef]. *)

val check : env -> Ast.expr -> Value.tribool
(** [truth (eval env e)]. *)

type verdict =
  | Holds
  | Violated
  | Undefined_verdict of string
      (** the expression did not evaluate to a boolean; the payload is a
          human-readable hint (pretty-printed subexpression) *)

val verdict : env -> Ast.expr -> verdict
val pp_verdict : Format.formatter -> verdict -> unit
val verdict_equal : verdict -> verdict -> bool
