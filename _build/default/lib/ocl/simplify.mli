(** Boolean simplification of OCL expressions.

    Generated contracts accumulate trivial conjuncts ([true and e],
    duplicated atoms, …).  The simplifier normalises them for display and
    for the generated code; it preserves the classical semantics and —
    because it only rewrites around boolean connectives with
    definedness-preserving laws — the three-valued verdicts of {!Eval}
    as well (a property-tested claim). *)

val simplify : Ast.expr -> Ast.expr
(** Fixed-point of the rewrite rules: identity/absorbing elements of
    [and]/[or], double negation, [not] over comparisons, duplicate
    conjunct/disjunct removal, [implies] with literal sides. *)

val nnf : Ast.expr -> Ast.expr
(** Negation normal form: push [not] inwards, rewrite [implies]/[xor]
    away.  Classically equivalent; may turn Unknown into a defined value
    only in the same direction as [simplify]. *)

val disjuncts : Ast.expr -> Ast.expr list
(** Top-level [or] clauses, flattened. *)

val conjuncts : Ast.expr -> Ast.expr list
(** Top-level [and] clauses, flattened. *)
