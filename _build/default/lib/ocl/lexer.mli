(** Lexer for the OCL subset. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string  (** both ['...'] (the paper's style) and ["..."] *)
  | TRUE
  | FALSE
  | NULL
  | AND
  | OR
  | XOR
  | NOT
  | IMPLIES  (** [implies], [=>] or [==>] *)
  | PRE  (** the [pre] keyword of [pre(e)] *)
  | AT_PRE  (** the [@pre] suffix *)
  | ARROW  (** [->] *)
  | DOT
  | LPAREN
  | RPAREN
  | BAR
  | COMMA
  | EQ
  | NEQ  (** [<>] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit
val pp_token : Format.formatter -> token -> unit

val tokenize : string -> ((token * int) list, error) result
(** Tokens paired with their start offsets, ending with [EOF]. *)
