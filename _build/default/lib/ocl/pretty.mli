(** Pretty-printing OCL back to concrete syntax.

    Output is re-parseable: [parse (to_string e)] yields an expression
    equal to [e] (a property-tested invariant).  String literals use the
    paper's single quotes; [pre(e)] is used for the pre-state operator. *)

val to_string : Ast.expr -> string
val pp : Format.formatter -> Ast.expr -> unit

val to_string_multiline : ?width:int -> Ast.expr -> string
(** Break top-level disjuncts/conjuncts over lines (the layout of the
    paper's Listing 1). *)
