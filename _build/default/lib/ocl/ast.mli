(** Abstract syntax of the OCL subset.

    The paper specifies state invariants, guards and effects in OCL over
    the {e addressable resources} of the REST API, e.g.

    {v project.id->size() = 1 and project.volumes->size() = 0 v}

    This subset covers everything appearing in the paper's models plus the
    collection operations needed to express realistic policies: navigation
    chains, the arrow operations ([size], [isEmpty], [notEmpty], [sum],
    [includes], [excludes], [forAll], [exists], [select], [reject],
    [collect]), boolean connectives including [implies] (the paper also
    writes [=>] and [==>]), comparisons, integer arithmetic, and the
    pre-state operator written either [pre(e)] (as in Listing 1) or the
    standard [e@pre]. *)

type unop =
  | Not
  | Neg

type binop =
  | And
  | Or
  | Xor
  | Implies
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div

(** Collection operations taking no argument ([e->size()], ...). *)
type coll_op =
  | Size
  | Is_empty
  | Not_empty
  | Sum
  | First
  | Last
  | As_set  (** distinct elements, first-occurrence order *)

(** Iterator kinds ([e->forAll(v | body)], ...). *)
type iter_kind =
  | For_all
  | Exists
  | Select
  | Reject
  | Collect
  | One
  | Any  (** first element satisfying the body; undefined when none *)
  | Is_unique  (** body values pairwise distinct *)

type expr =
  | Bool_lit of bool
  | Int_lit of int
  | String_lit of string
  | Null_lit
  | Var of string  (** context variable, e.g. [project], [user] *)
  | Nav of expr * string  (** property navigation [e.prop] *)
  | At_pre of expr  (** pre-state value: [pre(e)] or [e@pre] *)
  | Coll of expr * coll_op  (** [e->size()] and friends *)
  | Member of expr * bool * expr
      (** [e->includes(x)] ([true]) / [e->excludes(x)] ([false]) *)
  | Count of expr * expr  (** [e->count(x)]: occurrences of [x] in [e] *)
  | Iter of expr * iter_kind * string * expr
      (** [e->forAll(v | body)] and friends *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

val equal : expr -> expr -> bool

val free_vars : expr -> string list
(** Context variables used, sorted, without duplicates; iterator-bound
    variables are not free in their body. *)

val has_pre : expr -> bool
(** Does the expression mention the pre-state anywhere? *)

val pre_subexprs : expr -> expr list
(** The expressions appearing under a pre-state operator (the values a
    monitor must snapshot before forwarding a call), without duplicates,
    outermost first. *)

val size : expr -> int
(** Node count — used by the generation-scaling benches. *)

val conj : expr list -> expr
(** Conjunction of a list; [Bool_lit true] for the empty list. *)

val disj : expr list -> expr
(** Disjunction of a list; [Bool_lit false] for the empty list. *)

(** Convenience constructors used by model builders. *)

val ( &&& ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val ( ==> ) : expr -> expr -> expr
val nav : string -> string list -> expr
(** [nav "project" ["volumes"]] is [project.volumes]. *)

val map_vars : (string -> expr) -> expr -> expr
(** Substitute free context variables (capture-avoiding w.r.t. iterator
    binders). *)
