(* Precedence levels, loosest = 0 (implies) to tightest. Parentheses are
   emitted when a child's level is looser than its context requires. *)
let level = function
  | Ast.Binop (Ast.Implies, _, _) -> 0
  | Ast.Binop (Ast.Xor, _, _) -> 1
  | Ast.Binop (Ast.Or, _, _) -> 2
  | Ast.Binop (Ast.And, _, _) -> 3
  | Ast.Binop ((Ast.Eq | Ast.Neq), _, _) -> 4
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) -> 5
  | Ast.Binop ((Ast.Add | Ast.Sub), _, _) -> 6
  | Ast.Binop ((Ast.Mul | Ast.Div), _, _) -> 7
  | Ast.Unop (_, _) -> 8
  | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit
  | Ast.Var _ | Ast.Nav _ | Ast.At_pre _ | Ast.Coll _ | Ast.Member _
  | Ast.Count _ | Ast.Iter _ -> 9

let binop_text = function
  | Ast.And -> "and"
  | Ast.Or -> "or"
  | Ast.Xor -> "xor"
  | Ast.Implies -> "implies"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"

let coll_op_text = function
  | Ast.Size -> "size"
  | Ast.Is_empty -> "isEmpty"
  | Ast.Not_empty -> "notEmpty"
  | Ast.Sum -> "sum"
  | Ast.First -> "first"
  | Ast.Last -> "last"
  | Ast.As_set -> "asSet"

let iter_kind_text = function
  | Ast.For_all -> "forAll"
  | Ast.Exists -> "exists"
  | Ast.Select -> "select"
  | Ast.Reject -> "reject"
  | Ast.Collect -> "collect"
  | Ast.One -> "one"
  | Ast.Any -> "any"
  | Ast.Is_unique -> "isUnique"

let to_string expr =
  let buf = Buffer.create 64 in
  (* [ctx] is the minimum level a child may have without parentheses. *)
  let rec emit ctx e =
    let lvl = level e in
    let needs_parens = lvl < ctx in
    if needs_parens then Buffer.add_char buf '(';
    (match e with
     | Ast.Bool_lit b -> Buffer.add_string buf (string_of_bool b)
     | Ast.Int_lit n -> Buffer.add_string buf (string_of_int n)
     | Ast.String_lit s ->
       Buffer.add_char buf '\'';
       Buffer.add_string buf s;
       Buffer.add_char buf '\''
     | Ast.Null_lit -> Buffer.add_string buf "null"
     | Ast.Var name -> Buffer.add_string buf name
     | Ast.Nav (source, prop) ->
       emit 9 source;
       Buffer.add_char buf '.';
       Buffer.add_string buf prop
     | Ast.At_pre inner ->
       Buffer.add_string buf "pre(";
       emit 0 inner;
       Buffer.add_char buf ')'
     | Ast.Coll (source, op) ->
       emit 9 source;
       Buffer.add_string buf "->";
       Buffer.add_string buf (coll_op_text op);
       Buffer.add_string buf "()"
     | Ast.Member (source, includes, arg) ->
       emit 9 source;
       Buffer.add_string buf "->";
       Buffer.add_string buf (if includes then "includes" else "excludes");
       Buffer.add_char buf '(';
       emit 0 arg;
       Buffer.add_char buf ')'
     | Ast.Count (source, arg) ->
       emit 9 source;
       Buffer.add_string buf "->count(";
       emit 0 arg;
       Buffer.add_char buf ')'
     | Ast.Iter (source, kind, var, body) ->
       emit 9 source;
       Buffer.add_string buf "->";
       Buffer.add_string buf (iter_kind_text kind);
       Buffer.add_char buf '(';
       Buffer.add_string buf var;
       Buffer.add_string buf " | ";
       emit 0 body;
       Buffer.add_char buf ')'
     | Ast.Unop (Ast.Not, inner) ->
       Buffer.add_string buf "not ";
       emit 8 inner
     | Ast.Unop (Ast.Neg, inner) ->
       Buffer.add_char buf '-';
       emit 8 inner
     | Ast.Binop (op, left, right) ->
       (* [implies] is right-associative; the other binary operators
          associate left. *)
       let left_ctx, right_ctx =
         match op with
         | Ast.Implies -> (lvl + 1, lvl)
         | _ -> (lvl, lvl + 1)
       in
       emit left_ctx left;
       Buffer.add_char buf ' ';
       Buffer.add_string buf (binop_text op);
       Buffer.add_char buf ' ';
       emit right_ctx right);
    if needs_parens then Buffer.add_char buf ')'
  in
  emit 0 expr;
  Buffer.contents buf

let pp ppf expr = Fmt.string ppf (to_string expr)

let to_string_multiline ?(width = 72) expr =
  (* Top-level ors become one clause per paragraph; top-level ands within
     a clause break when the line would overflow. *)
  let rec or_clauses = function
    | Ast.Binop (Ast.Or, a, b) -> or_clauses a @ or_clauses b
    | e -> [ e ]
  in
  let rec and_clauses = function
    | Ast.Binop (Ast.And, a, b) -> and_clauses a @ and_clauses b
    | e -> [ e ]
  in
  (* A conjunct that binds looser than [and] needs parentheses once the
     conjunction is re-assembled textually. *)
  let atom_text atom =
    let text = to_string atom in
    match atom with
    | Ast.Binop ((Ast.Or | Ast.Xor | Ast.Implies), _, _) -> "(" ^ text ^ ")"
    | _ -> text
  in
  let render_clause clause =
    let atoms = and_clauses clause in
    let lines = Buffer.create 64 in
    let current = Buffer.create 64 in
    List.iteri
      (fun i atom ->
        let text = atom_text atom in
        let piece = if i = 0 then text else " and " ^ text in
        if Buffer.length current > 0
           && Buffer.length current + String.length piece > width
        then begin
          Buffer.add_string lines (Buffer.contents current);
          Buffer.add_string lines "\n     ";
          Buffer.clear current;
          Buffer.add_string current (if i = 0 then text else "and " ^ text)
        end
        else Buffer.add_string current piece)
      atoms;
    Buffer.add_string lines (Buffer.contents current);
    Buffer.contents lines
  in
  match or_clauses expr with
  | [ only ] -> render_clause only
  | clauses ->
    clauses
    |> List.map (fun clause -> "(" ^ render_clause clause ^ ")")
    |> String.concat "\n or\n"
