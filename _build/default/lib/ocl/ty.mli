(** Types for the OCL subset.

    A {!t} describes the shape of the observable state a contract ranges
    over.  Signatures are derived from the resource model (each resource
    definition's attributes and associations become an object type), so
    typechecking a guard catches misspelt properties at generation time —
    before the monitor ever runs. *)

type t =
  | Bool
  | Int
  | Real
  | String
  | Collection of t
  | Object of (string * t) list  (** property name -> type *)
  | Any  (** unknown/unconstrained — also the type after an error *)

type signature = (string * t) list
(** Context variable -> type. *)

val equal : t -> t -> bool

val compatible : t -> t -> bool
(** Can values of the two types be compared with [=]?  [Any] is
    compatible with everything; [Int] and [Real] are compatible;
    collections are compatible when elements are; objects are compatible
    when common properties are. *)

val is_numeric : t -> bool
val element : t -> t
(** Element type under collection coercion: [Collection t -> t],
    scalar [t -> t] (a scalar is a one-element collection in OCL). *)

val property : string -> t -> t option
(** Type of a property navigation, applying the collect shorthand for
    collections; [None] when the property is unknown. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
