(** Parser for the OCL subset.

    Operator precedence follows OCL 2.x, tightest first: navigation
    ([.], [->], [@pre]); unary [not]/[-]; [*] [/]; [+] [-]; relational;
    equality; [and]; [or]; [xor]; [implies] (right-associative).

    Iterator calls accept an explicit binder ([e->forAll(v | body)]) or an
    implicit one ([e->exists(body)], bound to [self]). *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit
val parse : string -> (Ast.expr, error) result
val parse_exn : string -> Ast.expr
