type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | TRUE
  | FALSE
  | NULL
  | AND
  | OR
  | XOR
  | NOT
  | IMPLIES
  | PRE
  | AT_PRE
  | ARROW
  | DOT
  | LPAREN
  | RPAREN
  | BAR
  | COMMA
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type error = { position : int; message : string }

let pp_error ppf { position; message } =
  Fmt.pf ppf "OCL lex error at offset %d: %s" position message

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | STRING s -> Fmt.pf ppf "string %S" s
  | TRUE -> Fmt.string ppf "true"
  | FALSE -> Fmt.string ppf "false"
  | NULL -> Fmt.string ppf "null"
  | AND -> Fmt.string ppf "and"
  | OR -> Fmt.string ppf "or"
  | XOR -> Fmt.string ppf "xor"
  | NOT -> Fmt.string ppf "not"
  | IMPLIES -> Fmt.string ppf "implies"
  | PRE -> Fmt.string ppf "pre"
  | AT_PRE -> Fmt.string ppf "@pre"
  | ARROW -> Fmt.string ppf "'->'"
  | DOT -> Fmt.string ppf "'.'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | BAR -> Fmt.string ppf "'|'"
  | COMMA -> Fmt.string ppf "','"
  | EQ -> Fmt.string ppf "'='"
  | NEQ -> Fmt.string ppf "'<>'"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | SLASH -> Fmt.string ppf "'/'"
  | EOF -> Fmt.string ppf "end of input"

exception Lex_error of error

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword_token = function
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "null" -> Some NULL
  | "and" -> Some AND
  | "or" -> Some OR
  | "xor" -> Some XOR
  | "not" -> Some NOT
  | "implies" -> Some IMPLIES
  | "pre" -> Some PRE
  | _ -> None

let tokenize input =
  let len = String.length input in
  let fail position message = raise (Lex_error { position; message }) in
  let rec loop pos acc =
    if pos >= len then List.rev ((EOF, pos) :: acc)
    else
      let c = input.[pos] in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> loop (pos + 1) acc
      | '(' -> loop (pos + 1) ((LPAREN, pos) :: acc)
      | ')' -> loop (pos + 1) ((RPAREN, pos) :: acc)
      | '|' -> loop (pos + 1) ((BAR, pos) :: acc)
      | ',' -> loop (pos + 1) ((COMMA, pos) :: acc)
      | '.' -> loop (pos + 1) ((DOT, pos) :: acc)
      | '+' -> loop (pos + 1) ((PLUS, pos) :: acc)
      | '*' -> loop (pos + 1) ((STAR, pos) :: acc)
      | '/' -> loop (pos + 1) ((SLASH, pos) :: acc)
      | '@' ->
        if pos + 3 < len && String.sub input (pos + 1) 3 = "pre" then
          loop (pos + 4) ((AT_PRE, pos) :: acc)
        else if pos + 4 = len && String.sub input (pos + 1) 3 = "pre" then
          loop (pos + 4) ((AT_PRE, pos) :: acc)
        else fail pos "expected @pre"
      | '-' ->
        if pos + 1 < len && input.[pos + 1] = '>' then
          loop (pos + 2) ((ARROW, pos) :: acc)
        else loop (pos + 1) ((MINUS, pos) :: acc)
      | '=' ->
        (* '=', '=>' and '==>' (the paper uses both arrow spellings). *)
        if pos + 2 < len && input.[pos + 1] = '=' && input.[pos + 2] = '>' then
          loop (pos + 3) ((IMPLIES, pos) :: acc)
        else if pos + 1 < len && input.[pos + 1] = '>' then
          loop (pos + 2) ((IMPLIES, pos) :: acc)
        else loop (pos + 1) ((EQ, pos) :: acc)
      | '<' ->
        if pos + 1 < len && input.[pos + 1] = '>' then
          loop (pos + 2) ((NEQ, pos) :: acc)
        else if pos + 1 < len && input.[pos + 1] = '=' then
          loop (pos + 2) ((LE, pos) :: acc)
        else loop (pos + 1) ((LT, pos) :: acc)
      | '>' ->
        if pos + 1 < len && input.[pos + 1] = '=' then
          loop (pos + 2) ((GE, pos) :: acc)
        else loop (pos + 1) ((GT, pos) :: acc)
      | '\'' | '"' ->
        let quote = c in
        let buf = Buffer.create 16 in
        let rec scan i =
          if i >= len then fail pos "unterminated string literal"
          else if input.[i] = quote then i + 1
          else begin
            Buffer.add_char buf input.[i];
            scan (i + 1)
          end
        in
        let next = scan (pos + 1) in
        loop next ((STRING (Buffer.contents buf), pos) :: acc)
      | c when is_digit c ->
        let rec scan i = if i < len && is_digit input.[i] then scan (i + 1) else i in
        let next = scan pos in
        let text = String.sub input pos (next - pos) in
        loop next ((INT (int_of_string text), pos) :: acc)
      | c when is_ident_start c ->
        let rec scan i =
          if i < len && is_ident_char input.[i] then scan (i + 1) else i
        in
        let next = scan pos in
        let text = String.sub input pos (next - pos) in
        let token =
          match keyword_token text with Some kw -> kw | None -> IDENT text
        in
        loop next ((token, pos) :: acc)
      | c -> fail pos (Printf.sprintf "unexpected character %C" c)
  in
  match loop 0 [] with
  | tokens -> Ok tokens
  | exception Lex_error err -> Error err
