(** Attack-surface audit: is every URI safeguarded?

    "The REST architectural style exposes each piece of information with
    a URI, which results in a large number of URIs … the security
    experts should ensure that each URI providing access to their system
    is safeguarded" (§I).  This audit enumerates the full derived URI ×
    method surface of a monitor and classifies each cell:

    - [Contracted]: a contract (behaviour {e and} authorization) governs
      the exchange;
    - [Behaviour_only]: a contract exists but no security-table entry —
      the generator fails closed at run time, but the table has a gap
      worth reviewing;
    - [Blocked]: no contract — the monitor answers 405 in Enforce mode
      (safe) but in Oracle mode the cloud's own behaviour is the only
      defence;
    - [Unmonitored_method]: methods outside the modelled set
      (HEAD/PATCH/OPTIONS) — always reported so the reviewer sees the
      entire surface. *)

type status =
  | Contracted of string list  (** SecReq ids covering the cell *)
  | Behaviour_only
  | Blocked
  | Unmonitored_method

type cell = {
  uri : string;
  meth : Cm_http.Meth.t;
  status : status;
}

val surface : Monitor.t -> cell list
(** Every (derived URI, method) pair for the four primary verbs plus any
    further verb the model mentions, in URI order. *)

val gaps : Monitor.t -> cell list
(** Only the [Behaviour_only] cells — contracts without an authorization
    row. *)

val render : cell list -> string
val status_to_string : status -> string
