type summary = {
  total : int;
  conform : int;
  denied : int;
  violations : int;
  undefined : int;
  not_monitored : int;
  by_conformance : (string * int) list;
}

let summarize outcomes =
  let bump table key =
    Hashtbl.replace table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  let table = Hashtbl.create 16 in
  let count pred = List.length (List.filter pred outcomes) in
  List.iter
    (fun (o : Outcome.t) ->
      bump table (Outcome.conformance_to_string o.conformance))
    outcomes;
  { total = List.length outcomes;
    conform =
      count (fun (o : Outcome.t) -> o.conformance = Outcome.Conform);
    denied =
      count (fun (o : Outcome.t) -> o.conformance = Outcome.Conform_denied);
    violations =
      count (fun (o : Outcome.t) -> Outcome.is_violation o.conformance);
    undefined =
      count (fun (o : Outcome.t) ->
          match o.conformance with Outcome.Undefined _ -> true | _ -> false);
    not_monitored =
      count (fun (o : Outcome.t) -> o.conformance = Outcome.Not_monitored);
    by_conformance =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  }

let violations outcomes =
  List.filter (fun (o : Outcome.t) -> Outcome.is_violation o.conformance) outcomes

let render summary ~coverage =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "=== monitoring report ===";
  line "exchanges monitored : %d" summary.total;
  line "conform             : %d" summary.conform;
  line "conform (denied)    : %d" summary.denied;
  line "violations          : %d" summary.violations;
  line "undefined           : %d" summary.undefined;
  line "not monitored       : %d" summary.not_monitored;
  if summary.by_conformance <> [] then begin
    line "";
    line "by verdict:";
    List.iter
      (fun (verdict, count) -> line "  %-45s %d" verdict count)
      summary.by_conformance
  end;
  line "";
  line "security requirement coverage:";
  List.iter
    (fun (req_id, count) ->
      if count = 0 then line "  SecReq %-6s NOT COVERED" req_id
      else line "  SecReq %-6s exercised %d time(s)" req_id count)
    coverage;
  Buffer.contents buf

let to_json summary ~coverage =
  let module Json = Cm_json.Json in
  Json.obj
    [ ("total", Json.int summary.total);
      ("conform", Json.int summary.conform);
      ("conform_denied", Json.int summary.denied);
      ("violations", Json.int summary.violations);
      ("undefined", Json.int summary.undefined);
      ("not_monitored", Json.int summary.not_monitored);
      ( "by_conformance",
        Json.obj
          (List.map (fun (k, v) -> (k, Json.int v)) summary.by_conformance) );
      ( "coverage",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) coverage) );
      ( "uncovered_requirements",
        Json.list
          (List.filter_map
             (fun (req_id, count) ->
               if count = 0 then Some (Json.string req_id) else None)
             coverage) )
    ]

let pp_summary ppf summary =
  Fmt.pf ppf "%d exchanges: %d conform, %d denied, %d violations, %d undefined"
    summary.total summary.conform summary.denied summary.violations
    summary.undefined
