(** Structured monitoring traces.

    "The invocation results can be logged for further fault localization"
    (§III-B).  Outcomes serialize to JSON (one object per exchange, JSONL
    for a whole campaign) and deserialize back, so a trace taken against
    one cloud build can be analysed offline or diffed against another
    build's trace.  {!localize} turns a trace into a fault-localization
    report: violations grouped by trigger and security requirement, with
    the verdicts that exposed them. *)

val outcome_to_json : Outcome.t -> Cm_json.Json.t
val outcome_of_json : Cm_json.Json.t -> (Outcome.t, string) result
(** Inverse of {!outcome_to_json} up to the fields a trace preserves:
    request (method/path/query), response status and body, cloud status,
    conformance, verdict strings, requirements, snapshot size, detail.
    Headers (which carry tokens) are deliberately {e not} serialized. *)

val to_jsonl : Outcome.t list -> string
val of_jsonl : string -> (Outcome.t list, string) result

(** {1 Fault localization} *)

type suspect = {
  trigger : string;  (** "DELETE /v3/{...}/volumes/{id}" style key *)
  verdicts : (string * int) list;  (** violating verdict -> count *)
  requirements : string list;  (** SecReq ids implicated *)
  example_detail : string;
}

val localize : Outcome.t list -> suspect list
(** Violating exchanges grouped by (method, path shape); most-violating
    first.  Path shapes replace concrete ids with ["{id}"] so repeated
    probes of different volumes aggregate. *)

val render_localization : suspect list -> string
