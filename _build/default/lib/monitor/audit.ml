module Meth = Cm_http.Meth
module BM = Cm_uml.Behavior_model
module Contract = Cm_contracts.Contract

type status =
  | Contracted of string list
  | Behaviour_only
  | Blocked
  | Unmonitored_method

type cell = {
  uri : string;
  meth : Meth.t;
  status : status;
}

let status_to_string = function
  | Contracted [] -> "contracted"
  | Contracted reqs -> "contracted (SecReq " ^ String.concat ", " reqs ^ ")"
  | Behaviour_only -> "BEHAVIOUR ONLY: no authorization row"
  | Blocked -> "blocked (no contract; 405 in Enforce mode)"
  | Unmonitored_method -> "outside the modelled verb set"

let primary_verbs = [ Meth.GET; Meth.POST; Meth.PUT; Meth.DELETE ]

let surface monitor =
  let config = Monitor.configuration monitor in
  (* verbs beyond the primary four only appear if the model uses them *)
  let extra_verbs =
    BM.triggers config.Monitor.behavior
    |> List.map (fun (t : BM.trigger) -> t.meth)
    |> List.filter (fun m -> not (List.mem m primary_verbs))
    |> List.sort_uniq Meth.compare
  in
  let verbs = primary_verbs @ extra_verbs in
  Monitor.uri_table monitor
  |> List.concat_map (fun (entry : Cm_uml.Paths.entry) ->
         List.map
           (fun meth ->
             let trigger = Monitor.trigger_for monitor entry meth in
             let status =
               match Monitor.contract_for_trigger monitor trigger with
               | Some contract ->
                 (match contract.Contract.auth_guard with
                  | Some _ -> Contracted contract.Contract.requirements
                  | None ->
                    if config.Monitor.security = None then
                      (* no table supplied at all: behavioural monitoring
                         only, by construction *)
                      Behaviour_only
                    else Behaviour_only)
               | None ->
                 if List.mem meth primary_verbs then Blocked
                 else Unmonitored_method
             in
             { uri = Cm_http.Uri_template.to_string entry.template;
               meth;
               status
             })
           verbs)
  |> List.sort (fun a b ->
         match String.compare a.uri b.uri with
         | 0 -> Meth.compare a.meth b.meth
         | c -> c)

let gaps monitor =
  List.filter (fun cell -> cell.status = Behaviour_only) (surface monitor)

let render cells =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-52s %-8s %s" "URI" "method" "status";
  line "%s" (String.make 100 '-');
  List.iter
    (fun cell ->
      line "%-52s %-8s %s" cell.uri (Meth.to_string cell.meth)
        (status_to_string cell.status))
    cells;
  let contracted =
    List.length
      (List.filter
         (fun c -> match c.status with Contracted _ -> true | _ -> false)
         cells)
  in
  let gaps =
    List.length (List.filter (fun c -> c.status = Behaviour_only) cells)
  in
  let blocked = List.length (List.filter (fun c -> c.status = Blocked) cells) in
  line "";
  line "surface: %d cells; %d contracted, %d blocked, %d authorization gaps"
    (List.length cells) contracted blocked gaps;
  Buffer.contents buf
