lib/monitor/monitor.mli: Cm_contracts Cm_http Cm_uml Logs Observer Outcome
