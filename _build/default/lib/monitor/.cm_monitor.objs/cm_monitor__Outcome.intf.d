lib/monitor/outcome.mli: Cm_http Cm_ocl Format
