lib/monitor/trace.ml: Buffer Cm_http Cm_json Cm_ocl Fmt Hashtbl Int List Option Outcome Printf Result String
