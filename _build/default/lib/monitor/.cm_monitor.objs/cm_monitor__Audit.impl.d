lib/monitor/audit.ml: Buffer Cm_contracts Cm_http Cm_uml List Monitor Printf String
