lib/monitor/observer.ml: Cm_http Cm_json Cm_ocl Cm_uml Int List Option String
