lib/monitor/observer.mli: Cm_http Cm_json Cm_ocl Cm_uml
