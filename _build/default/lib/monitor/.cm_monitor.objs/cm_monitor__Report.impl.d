lib/monitor/report.ml: Buffer Cm_json Fmt Hashtbl List Option Outcome Printf String
