lib/monitor/monitor.ml: Cm_contracts Cm_http Cm_json Cm_ocl Cm_uml Fmt Hashtbl Int List Logs Observer Option Outcome Printf String
