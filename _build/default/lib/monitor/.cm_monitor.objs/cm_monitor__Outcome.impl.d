lib/monitor/outcome.ml: Cm_http Cm_ocl Fmt List String
