lib/monitor/trace.mli: Cm_json Outcome
