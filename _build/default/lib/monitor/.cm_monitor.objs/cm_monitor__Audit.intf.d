lib/monitor/audit.mli: Cm_http Monitor
