lib/monitor/report.mli: Cm_json Format Outcome
