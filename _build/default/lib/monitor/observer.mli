(** Deriving the OCL environment from observable cloud state.

    The models define state invariants "as boolean expressions over the
    {e addressable} resources" (§IV-B): every value a contract mentions
    must be obtainable through GET requests.  The observer issues those
    GETs through the same backend the monitored request will travel —
    the monitor never peeks inside the cloud.

    Observation is {e model-driven}: the resource model says which URIs
    exist and how they compose, so the same observer works for any
    service (Cinder volumes, Glance-like images, …):

    - the context resource (the item contained in the root collection,
      e.g. [project]) is GET and its members become the [project]
      binding;
    - every collection reachable from it (role [volumes], [images], …)
      is GET and its listing becomes a member of the context binding
      under the role name — a failed listing simply leaves the member
      absent (size 0);
    - every singleton child (e.g. [quota_sets]) is GET and bound as a
      top-level variable under its definition name;
    - the specific item addressed by the monitored request, when given,
      is GET and bound under its definition name (e.g. [volume]).

    Response bodies are unwrapped from their single-key envelope
    ([{"volume": {...}}], [{"volumes": [...]}]) regardless of the key's
    exact spelling.

    Observation uses a service account (the monitor's own credentials),
    mirroring how OpenStack services authenticate to each other. *)

type backend = Cm_http.Request.t -> Cm_http.Response.t

type t

val create :
  backend:backend ->
  token:string ->
  model:Cm_uml.Resource_model.t ->
  project_id:string ->
  t

val observe :
  ?item:string * string ->
  ?bindings:(string * string) list ->
  t ->
  (string * Cm_json.Json.t) list
(** [?item:(resource_def_name, id)] additionally binds that one item.
    [?bindings] are the URI parameters of the monitored request: they
    let the observer reach {e nested} resources (an item whose URI needs
    its ancestors' ids, e.g.
    [/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id}]) —
    every ancestor item on the request's path is bound under its
    definition name, and each bound item additionally carries the
    listings of its own sub-collections as members under the role name.
    The context binding is produced even when the context GET fails
    (with only the members that could be observed). *)

val subject_binding : backend -> token:string -> Cm_json.Json.t option
(** Introspect a {e user's} token into the ["user"] binding
    ([{"name"; "groups"; "roles"; "role"; "id": {"groups": role}}]).
    [None] when the token is invalid. *)

val env :
  ?item:string * string ->
  ?bindings:(string * string) list ->
  ?user_token:string ->
  t ->
  Cm_ocl.Eval.env
(** Full pre-/post-state environment: {!observe} plus the ["user"]
    binding when [user_token] is given and valid. *)
