(** A model-driven test driver over the simulated cloud.

    {!Cinder_driver} hard-codes the volume API's body shapes; this
    driver derives everything else — URIs, item lookup, observation —
    from the resource model, so instantiating model-based testing for a
    new service takes one {!spec} record (which collection POST bodies
    to send, nothing more). *)

type spec = {
  resources : Cm_uml.Resource_model.t;
  behavior : Cm_uml.Behavior_model.t;
  security : Cm_contracts.Generate.security;
  create_body : string -> Cm_json.Json.t option;
      (** body for [POST] creating the given resource definition;
          [None] when creation is not supported *)
  update_body : string -> Cm_json.Json.t option;
      (** body for [PUT] on an item of the given resource definition *)
}

val cinder_spec : spec
val glance_spec : spec

val driver :
  ?faults:Cm_cloudsim.Faults.set -> spec -> Execute.driver
(** Fresh seeded cloud (the paper's [myProject] plus a service account)
    and an Oracle-mode monitor generated from [spec]'s models.  Requests
    are concretized as:

    - POST on the item's containing collection with [create_body];
    - GET on the collection URI for collection-resource triggers;
    - GET/PUT/DELETE on the lexicographically first existing item
      (discovered by listing through the cloud as the service account);
      [None] when no item exists. *)
