type expectation = Allowed | Denied_authorization | Denied_behaviour

type t = {
  case_id : string;
  description : string;
  setup : Cm_uml.Behavior_model.transition list;
  target : Cm_uml.Behavior_model.transition;
  role : string;
  expectation : expectation;
  requirements : string list;
}

let expectation_to_string = function
  | Allowed -> "allowed"
  | Denied_authorization -> "denied-authorization"
  | Denied_behaviour -> "denied-behaviour"

let pp ppf case =
  Fmt.pf ppf "%s: %a as %s, expect %s (%d setup steps)" case.case_id
    Cm_uml.Behavior_model.pp_trigger case.target.Cm_uml.Behavior_model.trigger
    case.role
    (expectation_to_string case.expectation)
    (List.length case.setup)
