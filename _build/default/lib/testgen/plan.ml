module BM = Cm_uml.Behavior_model
module ST = Cm_rbac.Security_table

let shortest_path_from (machine : BM.t) ~from ~to_state =
  if to_state = from then Some []
  else begin
    (* BFS over states; remember the incoming transition per state. *)
    let parent : (string, BM.transition) Hashtbl.t = Hashtbl.create 16 in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited from ();
    let queue = Queue.create () in
    Queue.push from queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let state = Queue.pop queue in
      List.iter
        (fun (tr : BM.transition) ->
          if tr.source = state && not (Hashtbl.mem visited tr.target) then begin
            Hashtbl.replace visited tr.target ();
            Hashtbl.replace parent tr.target tr;
            if tr.target = to_state then found := true
            else Queue.push tr.target queue
          end)
        machine.transitions
    done;
    if not !found then None
    else begin
      let rec backtrack state acc =
        if state = from then acc
        else
          match Hashtbl.find_opt parent state with
          | Some tr -> backtrack tr.BM.source (tr :: acc)
          | None -> acc
      in
      Some (backtrack to_state [])
    end
  end

let shortest_path (machine : BM.t) ~to_state =
  shortest_path_from machine ~from:machine.initial ~to_state

let unreachable (machine : BM.t) =
  List.filter_map
    (fun (s : BM.state) ->
      match shortest_path machine ~to_state:s.state_name with
      | Some _ -> None
      | None -> Some s.state_name)
    machine.states

(* Roles ordered strongest-first, as far as this toolchain knows. *)
let strength = function "admin" -> 0 | "member" -> 1 | "user" -> 2 | _ -> 3

let allowed_roles table (trigger : BM.trigger) =
  match ST.find ~resource:trigger.resource ~meth:trigger.meth table with
  | Some entry ->
    List.sort (fun a b -> Int.compare (strength a) (strength b)) entry.ST.roles
  | None -> []

let all_roles assignment =
  Cm_rbac.Role_assignment.to_list assignment
  |> List.map snd
  |> List.sort_uniq String.compare

let positive_cases (machine : BM.t) ~table ~assignment =
  ignore assignment;
  let counter = ref 0 in
  List.concat_map
    (fun (tr : BM.transition) ->
      match shortest_path machine ~to_state:tr.source with
      | None -> []
      | Some setup ->
        List.map
          (fun role ->
            incr counter;
            { Case.case_id = Printf.sprintf "P%02d" !counter;
              description =
                Fmt.str "%a from %s as %s" BM.pp_trigger tr.trigger tr.source
                  role;
              setup;
              target = tr;
              role;
              expectation = Case.Allowed;
              requirements = tr.requirements
            })
          (allowed_roles table tr.trigger))
    machine.transitions

let negative_cases (machine : BM.t) ~table ~assignment =
  let counter = ref 0 in
  List.concat_map
    (fun trigger ->
      let allowed = allowed_roles table trigger in
      let forbidden =
        List.filter (fun r -> not (List.mem r allowed)) (all_roles assignment)
      in
      (* fire from the first transition of the trigger whose source is
         reachable *)
      let candidate =
        List.find_map
          (fun (tr : BM.transition) ->
            match shortest_path machine ~to_state:tr.source with
            | Some setup -> Some (tr, setup)
            | None -> None)
          (BM.transitions_for trigger machine)
      in
      match candidate with
      | None -> []
      | Some (tr, setup) ->
        List.map
          (fun role ->
            incr counter;
            { Case.case_id = Printf.sprintf "N%02d" !counter;
              description =
                Fmt.str "%a as %s must be denied" BM.pp_trigger trigger role;
              setup;
              target = tr;
              role;
              expectation = Case.Denied_authorization;
              requirements = tr.requirements
            })
          forbidden)
    (BM.triggers machine)

let boundary_cases (machine : BM.t) ~table ~assignment =
  ignore assignment;
  let counter = ref 0 in
  List.concat_map
    (fun trigger ->
      match allowed_roles table trigger with
      | [] -> []
      | role :: _ ->
        List.filter_map
          (fun (s : BM.state) ->
            let enabled_here =
              List.exists
                (fun (tr : BM.transition) ->
                  tr.source = s.state_name
                  && BM.trigger_equal tr.trigger trigger)
                machine.transitions
            in
            if enabled_here then None
            else
              match shortest_path machine ~to_state:s.state_name with
              | None -> None
              | Some setup ->
                incr counter;
                let placeholder =
                  BM.transition ~source:s.state_name ~target:s.state_name
                    trigger.BM.meth trigger.BM.resource
                in
                Some
                  { Case.case_id = Printf.sprintf "B%02d" !counter;
                    description =
                      Fmt.str "%a in %s (not enabled) must be refused"
                        BM.pp_trigger trigger s.state_name;
                    setup;
                    target = placeholder;
                    role;
                    expectation = Case.Denied_behaviour;
                    requirements = []
                  })
          machine.states)
    (BM.triggers machine)

let all machine ~table ~assignment =
  positive_cases machine ~table ~assignment
  @ negative_cases machine ~table ~assignment
  @ boundary_cases machine ~table ~assignment
