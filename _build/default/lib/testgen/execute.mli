(** Executing generated test cases against a monitored cloud.

    The monitor is the oracle (§III-B, user 4): a case's verdict comes
    from the monitor's conformance classification of the final exchange.
    Each case runs in a fresh session (clean cloud state) so cases are
    independent and order-insensitive. *)

type session = {
  request_for :
    Cm_uml.Behavior_model.transition -> role:string -> Cm_http.Request.t option;
      (** concretize a transition into a request to fire {e now}, as a
          subject holding the role; [None] when no concrete request
          exists (e.g. no volume left to delete) *)
  observe : unit -> Cm_ocl.Eval.env;
      (** current observable state (to confirm the setup reached the
          intended source state) *)
  handle : Cm_http.Request.t -> Cm_monitor.Outcome.t;  (** via the monitor *)
}

type driver = unit -> session
(** A fresh, independent session per case. *)

type status =
  | Pass
  | Cloud_bug of string
      (** the monitor raised a violation verdict — the implementation
          disagrees with the specification *)
  | Unexpected of string
      (** no violation, but the expectation was not met (usually a
          test-harness or model issue, not a cloud bug) *)
  | Setup_failed of string
  | Setup_unreachable of string
      (** the setup path ran but the source-state invariant does not
          hold (a guard needed a configuration the fixture cannot
          produce); the case is skipped *)

type result = {
  case : Case.t;
  status : status;
}

type report = {
  results : result list;
  passed : int;
  bugs : int;
  unexpected : int;
  skipped : int;
}

val run_case :
  setup_role:(Cm_uml.Behavior_model.trigger -> string option) ->
  machine:Cm_uml.Behavior_model.t ->
  driver ->
  Case.t ->
  result

val run :
  table:Cm_rbac.Security_table.t ->
  machine:Cm_uml.Behavior_model.t ->
  driver ->
  Case.t list ->
  report
(** Setup steps use the strongest role the table allows for their
    trigger. *)

val render : report -> string
val status_to_string : status -> string
