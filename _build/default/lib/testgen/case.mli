(** Abstract test cases derived from the design models.

    A case drives the system along a {e setup path} of transitions from
    the initial state to the source state of the {e target} transition,
    then fires the target's trigger as a subject holding a given role
    and checks the expectation.  Cases are abstract: turning a
    transition into a concrete HTTP request is the job of a
    {!Execute.driver}. *)

type expectation =
  | Allowed  (** the exchange must conform *)
  | Denied_authorization
      (** the role may not perform the trigger; the cloud must deny *)
  | Denied_behaviour
      (** the trigger is not enabled in the driven state (no transition
          fires); the cloud must refuse the request *)

type t = {
  case_id : string;
  description : string;
  setup : Cm_uml.Behavior_model.transition list;
      (** transitions to execute (as an authorized subject) to reach the
          target's source state; empty when it is the initial state *)
  target : Cm_uml.Behavior_model.transition;
  role : string;  (** role of the subject firing the target trigger *)
  expectation : expectation;
  requirements : string list;  (** SecReq ids the case exercises *)
}

val pp : Format.formatter -> t -> unit
val expectation_to_string : expectation -> string
