lib/testgen/generic_driver.ml: Cm_cloudsim Cm_contracts Cm_http Cm_json Cm_monitor Cm_rbac Cm_uml Execute List Option String
