lib/testgen/case.ml: Cm_uml Fmt List
