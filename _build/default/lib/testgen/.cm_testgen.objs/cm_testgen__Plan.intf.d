lib/testgen/plan.mli: Case Cm_rbac Cm_uml
