lib/testgen/cinder_driver.mli: Cm_cloudsim Execute
