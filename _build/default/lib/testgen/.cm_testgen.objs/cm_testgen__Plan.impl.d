lib/testgen/plan.ml: Case Cm_rbac Cm_uml Fmt Hashtbl Int List Printf Queue String
