lib/testgen/execute.ml: Buffer Case Cm_http Cm_monitor Cm_ocl Cm_rbac Cm_uml Fmt Int List Plan Printf
