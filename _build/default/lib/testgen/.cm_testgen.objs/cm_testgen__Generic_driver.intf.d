lib/testgen/generic_driver.mli: Cm_cloudsim Cm_contracts Cm_json Cm_uml Execute
