lib/testgen/case.mli: Cm_uml Format
