lib/testgen/execute.mli: Case Cm_http Cm_monitor Cm_ocl Cm_rbac Cm_uml
