module BM = Cm_uml.Behavior_model
module Outcome = Cm_monitor.Outcome

type session = {
  request_for : BM.transition -> role:string -> Cm_http.Request.t option;
  observe : unit -> Cm_ocl.Eval.env;
  handle : Cm_http.Request.t -> Outcome.t;
}

type driver = unit -> session

type status =
  | Pass
  | Cloud_bug of string
  | Unexpected of string
  | Setup_failed of string
  | Setup_unreachable of string

type result = { case : Case.t; status : status }

type report = {
  results : result list;
  passed : int;
  bugs : int;
  unexpected : int;
  skipped : int;
}

let status_to_string = function
  | Pass -> "pass"
  | Cloud_bug detail -> "CLOUD BUG: " ^ detail
  | Unexpected detail -> "unexpected: " ^ detail
  | Setup_failed detail -> "setup failed: " ^ detail
  | Setup_unreachable detail -> "skipped (unreachable): " ^ detail

exception Stop of status

(* The unique state whose invariant holds in the observed environment
   (the analysis module checks exclusivity; first match wins here). *)
let current_state ~(machine : BM.t) env =
  List.find_opt
    (fun (s : BM.state) ->
      Cm_ocl.Eval.check env s.BM.invariant = Cm_ocl.Value.True)
    machine.states

let fire ~setup_role session (tr : BM.transition) =
  let role =
    match setup_role tr.BM.trigger with
    | Some role -> role
    | None ->
      raise
        (Stop
           (Setup_failed
              (Fmt.str "no role may perform setup step %a" BM.pp_trigger
                 tr.trigger)))
  in
  match session.request_for tr ~role with
  | None ->
    raise
      (Stop
         (Setup_failed
            (Fmt.str "no concrete request for setup step %a" BM.pp_trigger
               tr.trigger)))
  | Some request ->
    let outcome = session.handle request in
    if outcome.Outcome.conformance <> Outcome.Conform then
      raise
        (Stop
           (Setup_failed
              (Fmt.str "setup step %a -> %s" BM.pp_trigger tr.trigger
                 (Outcome.conformance_to_string outcome.Outcome.conformance))))

(* Adaptive setup: abstract paths under- or over-shoot on counting
   machines (one abstract POST edge may need several concrete POSTs to
   actually reach a full-quota state), so instead of replaying
   [case.setup] verbatim we repeatedly observe the concrete state,
   re-plan a shortest abstract path from it, and fire its first step —
   bounded to catch models whose guards the fixture can never satisfy. *)
let drive_to ~setup_role ~(machine : BM.t) session target_state =
  let max_steps = (4 * List.length machine.transitions) + 8 in
  let rec loop steps =
    if steps > max_steps then
      raise
        (Stop
           (Setup_unreachable
              (Printf.sprintf "gave up driving to %s after %d steps"
                 target_state max_steps)))
    else begin
      let env = session.observe () in
      match current_state ~machine env with
      | None ->
        raise
          (Stop (Setup_failed "no state invariant holds in the observed state"))
      | Some state when state.BM.state_name = target_state -> ()
      | Some state ->
        (match
           Plan.shortest_path_from machine ~from:state.BM.state_name
             ~to_state:target_state
         with
         | Some (next :: _) ->
           fire ~setup_role session next;
           loop (steps + 1)
         | Some [] -> ()
         | None ->
           raise
             (Stop
                (Setup_unreachable
                   (Printf.sprintf "no abstract path from %s to %s"
                      state.BM.state_name target_state))))
    end
  in
  loop 0

let judge (case : Case.t) (outcome : Outcome.t) =
  let conformance = outcome.Outcome.conformance in
  if Outcome.is_violation conformance then
    Cloud_bug (Outcome.conformance_to_string conformance)
  else
    match case.expectation, conformance with
    | Case.Allowed, Outcome.Conform -> Pass
    | Case.Denied_authorization, Outcome.Conform_denied -> Pass
    | Case.Denied_behaviour, Outcome.Conform_denied -> Pass
    | Case.Allowed, other ->
      Unexpected
        ("expected conform, monitor said "
        ^ Outcome.conformance_to_string other)
    | (Case.Denied_authorization | Case.Denied_behaviour), other ->
      Unexpected
        ("expected denial, monitor said "
        ^ Outcome.conformance_to_string other)

let run_case ~setup_role ~machine driver (case : Case.t) =
  let status =
    try
      let session = driver () in
      drive_to ~setup_role ~machine session case.target.BM.source;
      match session.request_for case.target ~role:case.role with
      | None ->
        (* No concrete request exists in this state (e.g. no volume to
           address): the case is vacuous here, not a failure. *)
        Setup_unreachable "no concrete request for the target transition"
      | Some request -> judge case (session.handle request)
    with Stop status -> status
  in
  { case; status }

let strength = function "admin" -> 0 | "member" -> 1 | "user" -> 2 | _ -> 3

let run ~table ~machine driver cases =
  let setup_role (trigger : BM.trigger) =
    match
      Cm_rbac.Security_table.find ~resource:trigger.BM.resource
        ~meth:trigger.BM.meth table
    with
    | Some entry ->
      (match
         List.sort
           (fun a b -> Int.compare (strength a) (strength b))
           entry.Cm_rbac.Security_table.roles
       with
       | strongest :: _ -> Some strongest
       | [] -> None)
    | None -> None
  in
  let results = List.map (run_case ~setup_role ~machine driver) cases in
  let count pred = List.length (List.filter pred results) in
  { results;
    passed = count (fun r -> r.status = Pass);
    bugs = count (fun r -> match r.status with Cloud_bug _ -> true | _ -> false);
    unexpected =
      count (fun r ->
          match r.status with
          | Unexpected _ | Setup_failed _ -> true
          | _ -> false);
    skipped =
      count (fun r ->
          match r.status with Setup_unreachable _ -> true | _ -> false)
  }

let render report =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "generated test campaign: %d cases" (List.length report.results);
  line "  passed     : %d" report.passed;
  line "  cloud bugs : %d" report.bugs;
  line "  unexpected : %d" report.unexpected;
  line "  skipped    : %d" report.skipped;
  List.iter
    (fun r ->
      match r.status with
      | Pass -> ()
      | status ->
        line "  %-6s %-55s %s" r.case.Case.case_id r.case.Case.description
          (status_to_string status))
    report.results;
  Buffer.contents buf
