(** Test-case generation from the models (model-based testing, §III).

    Two complementary coverage goals:

    - {b transition coverage} ({!positive_cases}): one case per
      (transition, allowed role) pair — the trigger is fired by a
      subject the security table permits, after a shortest setup path
      reaches the transition's source state; expectation {!Case.Allowed}.
    - {b authorization coverage} ({!negative_cases}): one case per
      (trigger, role) pair the table {e forbids} — the trigger is fired
      from some state that enables it; expectation
      {!Case.Denied_authorization}.  This is the probe matrix that kills
      wrong-authorization mutants.

    Setup paths are shortest paths in the state graph; transitions on
    the path are executed by the strongest role the table allows for
    their trigger.  A transition whose source state is unreachable in
    the graph yields no case (reported by {!unreachable}). *)

val shortest_path :
  Cm_uml.Behavior_model.t ->
  to_state:string ->
  Cm_uml.Behavior_model.transition list option
(** BFS from the initial state; [Some []] when [to_state] is initial. *)

val shortest_path_from :
  Cm_uml.Behavior_model.t ->
  from:string ->
  to_state:string ->
  Cm_uml.Behavior_model.transition list option
(** BFS from an arbitrary state — the executor re-plans from whatever
    state the cloud is actually observed in (abstract paths under- or
    over-shoot on counting machines: reaching a full-quota state takes
    as many POSTs as the quota, not as many as the abstract path has
    edges). *)

val positive_cases :
  Cm_uml.Behavior_model.t ->
  table:Cm_rbac.Security_table.t ->
  assignment:Cm_rbac.Role_assignment.t ->
  Case.t list

val negative_cases :
  Cm_uml.Behavior_model.t ->
  table:Cm_rbac.Security_table.t ->
  assignment:Cm_rbac.Role_assignment.t ->
  Case.t list

val boundary_cases :
  Cm_uml.Behavior_model.t ->
  table:Cm_rbac.Security_table.t ->
  assignment:Cm_rbac.Role_assignment.t ->
  Case.t list
(** Behavioural-negative coverage: for each (trigger, reachable state)
    pair where the state has {e no} outgoing transition for the trigger,
    drive to the state and fire the trigger with an allowed role — the
    cloud must refuse (e.g. POST at full quota).  The target transition
    recorded in the case is a placeholder self-loop on the state. *)

val all :
  Cm_uml.Behavior_model.t ->
  table:Cm_rbac.Security_table.t ->
  assignment:Cm_rbac.Role_assignment.t ->
  Case.t list
(** [positive_cases @ negative_cases @ boundary_cases]. *)

val unreachable : Cm_uml.Behavior_model.t -> string list
(** States with no path from the initial state (no cases target their
    outgoing transitions). *)
