(** Concrete test driver for the Cinder models over the simulated cloud.

    Each session is a fresh simulated cloud seeded with the paper's
    [myProject] (admin alice, member bob, plain-user carol, monitor
    service account) and an Oracle-mode monitor generated from the
    Cinder models and Table I.  Transition concretization:

    - [POST(volume)] posts a 10 GiB volume to the collection URI;
    - [GET/PUT/DELETE(volume)] address the lexicographically first
      existing volume ([None] when the project has none);
    - [GET(Volumes)] lists the collection.

    [faults] are activated on the cloud before the monitor observes
    anything — the knob the mutation experiments turn. *)

val driver : ?faults:Cm_cloudsim.Faults.set -> unit -> Execute.driver

val quota : int
(** The fixture's volume quota (3, as in the paper's setup). *)
