(** OpenStack-style [policy.json].

    OpenStack services define their permitted requests in a
    [policy.json] file mapping actions ("volume:delete") to rule
    expressions ("role:admin or role:member").  The simulated cloud
    enforces such a policy, and the generator can derive one from the
    security table — so the specification (table), the monitor contracts
    and the cloud's enforcement all share a single source. *)

type rule =
  | Role of string  (** "role:<name>" *)
  | Group of string  (** "group:<name>" *)
  | Any  (** "" — everyone *)
  | Nobody  (** "!" *)
  | Or of rule * rule
  | And of rule * rule

type t
(** A policy: action name -> rule.  Missing actions are denied. *)

val empty : t
val add : string -> rule -> t -> t
val of_list : (string * rule) list -> t
val to_list : t -> (string * rule) list
val find : string -> t -> rule option

val action_of : resource:string -> meth:Cm_http.Meth.t -> string
(** OpenStack action naming: GET -> [<resource>:get], POST ->
    [<resource>:create], PUT -> [<resource>:update], DELETE ->
    [<resource>:delete], others by lowercase verb. *)

val satisfies : rule -> roles:string list -> groups:string list -> bool

val authorize :
  t -> action:string -> roles:string list -> groups:string list -> bool
(** Fail-closed: unknown actions are denied. *)

val of_table : Security_table.t -> t
(** Derive from the security table ([Or] over role atoms). *)

(** {1 Rule text syntax} *)

val rule_to_string : rule -> string
val rule_of_string : string -> (rule, string) result
(** Parses the textual sub-language: ["role:x"], ["group:y"], ["@"]/[""]
    (any), ["!"] (nobody), [or], [and], parentheses. *)

(** {1 JSON file format} *)

val to_json : t -> Cm_json.Json.t
val of_json : Cm_json.Json.t -> (t, string) result
val to_file_text : t -> string
val of_file_text : string -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
