type rule =
  | Role of string
  | Group of string
  | Any
  | Nobody
  | Or of rule * rule
  | And of rule * rule

type t = (string * rule) list

let empty = []
let add action rule t = t @ [ (action, rule) ]
let of_list pairs = pairs
let to_list t = t
let find action t = List.assoc_opt action t

let action_of ~resource ~meth =
  let verb =
    match meth with
    | Cm_http.Meth.GET -> "get"
    | Cm_http.Meth.POST -> "create"
    | Cm_http.Meth.PUT -> "update"
    | Cm_http.Meth.DELETE -> "delete"
    | other -> String.lowercase_ascii (Cm_http.Meth.to_string other)
  in
  String.lowercase_ascii resource ^ ":" ^ verb

let rec satisfies rule ~roles ~groups =
  match rule with
  | Role name -> List.mem name roles
  | Group name -> List.mem name groups
  | Any -> true
  | Nobody -> false
  | Or (a, b) -> satisfies a ~roles ~groups || satisfies b ~roles ~groups
  | And (a, b) -> satisfies a ~roles ~groups && satisfies b ~roles ~groups

let authorize t ~action ~roles ~groups =
  match find action t with
  | Some rule -> satisfies rule ~roles ~groups
  | None -> false

let of_table table =
  List.map
    (fun (e : Security_table.entry) ->
      let rule =
        match e.roles with
        | [] -> Nobody
        | first :: rest ->
          List.fold_left (fun acc role -> Or (acc, Role role)) (Role first) rest
      in
      (action_of ~resource:e.resource ~meth:e.meth, rule))
    table

let rec rule_to_string = function
  | Role name -> "role:" ^ name
  | Group name -> "group:" ^ name
  | Any -> "@"
  | Nobody -> "!"
  | Or (a, b) -> rule_to_string a ^ " or " ^ rule_to_string b
  | And (a, b) -> and_operand a ^ " and " ^ and_operand b

(* "and" binds tighter than "or", so an Or under an And needs parens. *)
and and_operand = function
  | Or (_, _) as r -> "(" ^ rule_to_string r ^ ")"
  | r -> rule_to_string r

(* Textual rule parser: atoms are "role:x", "group:y", "@", "!", with
   "and" binding tighter than "or" and parentheses for grouping. *)
let rule_of_string text =
  (* Tokenizer: split on spaces but keep parens as tokens. *)
  let lex input =
    let out = ref [] in
    let buf = Buffer.create 16 in
    let flush () =
      if Buffer.length buf > 0 then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
    in
    String.iter
      (fun c ->
        match c with
        | ' ' | '\t' | '\n' -> flush ()
        | '(' | ')' ->
          flush ();
          out := String.make 1 c :: !out
        | c -> Buffer.add_char buf c)
      input;
    flush ();
    List.rev !out
  in
  let tokens = ref (lex text) in
  let peek () = match !tokens with t :: _ -> Some t | [] -> None in
  let advance () = match !tokens with _ :: rest -> tokens := rest | [] -> () in
  let exception Bad of string in
  let atom_of_token t =
    if t = "@" then Any
    else if t = "!" then Nobody
    else
      match String.index_opt t ':' with
      | Some i ->
        let kind = String.sub t 0 i in
        let name = String.sub t (i + 1) (String.length t - i - 1) in
        (match kind with
         | "role" -> Role name
         | "group" -> Group name
         | _ -> raise (Bad (Printf.sprintf "unknown atom kind %S" kind)))
      | None -> raise (Bad (Printf.sprintf "unknown token %S" t))
  in
  let rec parse_or () =
    let left = parse_and () in
    match peek () with
    | Some "or" ->
      advance ();
      Or (left, parse_or ())
    | _ -> left
  and parse_and () =
    let left = parse_atom () in
    match peek () with
    | Some "and" ->
      advance ();
      And (left, parse_and ())
    | _ -> left
  and parse_atom () =
    match peek () with
    | Some "(" ->
      advance ();
      let inner = parse_or () in
      (match peek () with
       | Some ")" ->
         advance ();
         inner
       | _ -> raise (Bad "missing closing parenthesis"))
    | Some t ->
      advance ();
      atom_of_token t
    | None -> raise (Bad "unexpected end of rule")
  in
  if String.trim text = "" then Ok Any
  else
    match
      let rule = parse_or () in
      (match peek () with
       | Some t -> raise (Bad (Printf.sprintf "trailing token %S" t))
       | None -> ());
      rule
    with
    | rule -> Ok rule
    | exception Bad msg -> Error msg

let to_json t =
  Cm_json.Json.obj
    (List.map (fun (action, rule) ->
         (action, Cm_json.Json.string (rule_to_string rule)))
       t)

let of_json json =
  match json with
  | Cm_json.Json.Obj members ->
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | (action, Cm_json.Json.String rule_text) :: rest ->
        (match rule_of_string rule_text with
         | Ok rule -> build ((action, rule) :: acc) rest
         | Error msg -> Error (Printf.sprintf "%s: %s" action msg))
      | (action, _) :: _ ->
        Error (Printf.sprintf "%s: rule must be a string" action)
    in
    build [] members
  | _ -> Error "policy must be a JSON object"

let to_file_text t = Cm_json.Printer.to_string_pretty (to_json t) ^ "\n"

let of_file_text text =
  match Cm_json.Parser.parse text with
  | Error err -> Error (Fmt.str "%a" Cm_json.Parser.pp_error err)
  | Ok json -> of_json json

let equal a b =
  let canon t =
    List.sort compare (List.map (fun (k, r) -> (k, rule_to_string r)) t)
  in
  canon a = canon b

let pp ppf t =
  List.iter
    (fun (action, rule) -> Fmt.pf ppf "%s: %s@." action (rule_to_string rule))
    t
