lib/rbac/role_assignment.ml: Cm_json Fmt Int List String Subject
