lib/rbac/subject.ml: Cm_json Fmt List String
