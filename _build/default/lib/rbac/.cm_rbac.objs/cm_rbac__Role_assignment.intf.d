lib/rbac/role_assignment.mli: Cm_json Format Subject
