lib/rbac/security_table.ml: Buffer Cm_http Cm_ocl Fmt List Printf Role_assignment String
