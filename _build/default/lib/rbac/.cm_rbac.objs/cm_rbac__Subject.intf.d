lib/rbac/subject.mli: Cm_json Format
