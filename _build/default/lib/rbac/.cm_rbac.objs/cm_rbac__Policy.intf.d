lib/rbac/policy.mli: Cm_http Cm_json Format Security_table
