lib/rbac/security_table.mli: Cm_http Cm_ocl Format Role_assignment Subject
