lib/rbac/policy.ml: Buffer Cm_http Cm_json Fmt List Printf Security_table String
