(** Usergroup-to-role assignments within a project.

    "The projects are created by the cloud administrator using Keystone
    and users or usergroups are assigned the roles in these projects"
    (§IV-B).  This table is the link between what a token proves (group
    membership) and what a policy grants (roles). *)

type t

val empty : t
val assign : group:string -> role:string -> t -> t
val of_list : (string * string) list -> t
(** [(group, role)] pairs. *)

val to_list : t -> (string * string) list

val roles_of_group : string -> t -> string list
val groups_of_role : string -> t -> string list

val roles_of : Subject.t -> t -> string list
(** All roles the subject holds through any of its groups, sorted. *)

val has_role : Subject.t -> string -> t -> bool

val enrich : Subject.t -> t -> Cm_json.Json.t
(** The full [user] binding for contract evaluation: subject fields plus
    ["role"] (the subject's strongest single role for display; contracts
    should use ["roles"]), ["roles"] (all roles) and ["id"] ([{"groups":
    <primary role>}] — the paper's Listing 1 navigates [user.id.groups]
    to reach the role name, so we expose the same path). *)

val pp : Format.formatter -> t -> unit
