(** Authorization subjects: users and their usergroup memberships.

    RBAC in OpenStack (and in the paper's Table I) distinguishes
    {e roles} (admin, member, user) from {e usergroups}
    (proj_administrator, service_architect, business_analyst): users
    belong to groups; a {!Role_assignment.t} maps groups to roles within
    a project. *)

type t = {
  user_name : string;
  groups : string list;  (** usergroup names, e.g. ["proj_administrator"] *)
}

val make : string -> string list -> t
val in_group : string -> t -> bool

val to_json : t -> Cm_json.Json.t
(** The binding shape contracts evaluate over:
    [{"name": ..., "groups": [...], "role": ..., "id": {"groups": ...}}] —
    [role] and [id.groups] are filled in by {!Role_assignment.enrich}. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
