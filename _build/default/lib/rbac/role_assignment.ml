type t = (string * string) list
(* (group, role) pairs, in assignment order *)

let empty = []
let assign ~group ~role t = t @ [ (group, role) ]
let of_list pairs = pairs
let to_list t = t

let roles_of_group group t =
  List.filter_map (fun (g, r) -> if g = group then Some r else None) t
  |> List.sort_uniq String.compare

let groups_of_role role t =
  List.filter_map (fun (g, r) -> if r = role then Some g else None) t
  |> List.sort_uniq String.compare

let roles_of subject t =
  subject.Subject.groups
  |> List.concat_map (fun g -> roles_of_group g t)
  |> List.sort_uniq String.compare

let has_role subject role t = List.mem role (roles_of subject t)

(* Roles ordered by privilege for picking the "primary" one. *)
let privilege = function "admin" -> 0 | "member" -> 1 | "user" -> 2 | _ -> 3

let enrich subject t =
  let roles = roles_of subject t in
  let primary =
    match List.sort (fun a b -> Int.compare (privilege a) (privilege b)) roles with
    | strongest :: _ -> strongest
    | [] -> ""
  in
  let base =
    match Subject.to_json subject with
    | Cm_json.Json.Obj members -> members
    | _ -> []
  in
  Cm_json.Json.obj
    (base
    @ [ ("role", Cm_json.Json.string primary);
        ("roles", Cm_json.Json.list (List.map Cm_json.Json.string roles));
        ( "id",
          Cm_json.Json.obj [ ("groups", Cm_json.Json.string primary) ] )
      ])

let pp ppf t =
  let pp_pair ppf (g, r) = Fmt.pf ppf "%s->%s" g r in
  Fmt.(list ~sep:(any ", ") pp_pair) ppf t
