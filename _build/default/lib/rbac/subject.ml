type t = { user_name : string; groups : string list }

let make user_name groups = { user_name; groups }
let in_group group subject = List.mem group subject.groups

let to_json subject =
  Cm_json.Json.obj
    [ ("name", Cm_json.Json.string subject.user_name);
      ( "groups",
        Cm_json.Json.list (List.map Cm_json.Json.string subject.groups) )
    ]

let equal a b = a.user_name = b.user_name && a.groups = b.groups

let pp ppf subject =
  Fmt.pf ppf "%s[%s]" subject.user_name (String.concat "," subject.groups)
