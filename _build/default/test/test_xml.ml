(* Tests for the XML substrate: parser, printer, queries. *)

module Xml = Cm_xml.Xml
module Xml_parse = Cm_xml.Xml_parse
module Xml_print = Cm_xml.Xml_print

let xml_testable = Alcotest.testable Xml.pp Xml.equal

let parse_ok input expected () =
  match Xml_parse.parse input with
  | Ok el -> Alcotest.check xml_testable input expected el
  | Error err ->
    Alcotest.failf "parse %S failed: %a" input Xml_parse.pp_error err

let parse_err input () =
  match Xml_parse.parse input with
  | Ok el -> Alcotest.failf "parse %S unexpectedly gave %a" input Xml.pp el
  | Error _ -> ()

let el = Xml.element
let node e = Xml.Element e

let parser_tests =
  [ Alcotest.test_case "empty element" `Quick (parse_ok "<a/>" (el "a"));
    Alcotest.test_case "empty element with close tag" `Quick
      (parse_ok "<a></a>" (el "a"));
    Alcotest.test_case "attributes single and double quoted" `Quick
      (parse_ok {|<a x="1" y='two'/>|}
         (el "a" ~attrs:[ ("x", "1"); ("y", "two") ]));
    Alcotest.test_case "nested elements and text" `Quick
      (parse_ok "<a><b>hi</b><c/></a>"
         (el "a"
            ~children:
              [ node (el "b" ~children:[ Xml.text "hi" ]); node (el "c") ]));
    Alcotest.test_case "namespaced names kept verbatim" `Quick
      (parse_ok {|<xmi:XMI xmi:version="2.1"/>|}
         (el "xmi:XMI" ~attrs:[ ("xmi:version", "2.1") ]));
    Alcotest.test_case "entities decoded" `Quick
      (parse_ok "<a>x &lt; y &amp;&amp; y &gt; z &#65;&#x42;</a>"
         (el "a" ~children:[ Xml.text "x < y && y > z AB" ]));
    Alcotest.test_case "entities in attributes" `Quick
      (parse_ok {|<a v="a&quot;b&apos;c"/>|} (el "a" ~attrs:[ ("v", "a\"b'c") ]));
    Alcotest.test_case "CDATA passes through verbatim" `Quick
      (parse_ok "<a><![CDATA[x < y && z]]></a>"
         (el "a" ~children:[ Xml.text "x < y && z" ]));
    Alcotest.test_case "comments kept" `Quick (fun () ->
        match Xml_parse.parse "<a><!-- note --><b/></a>" with
        | Ok parsed ->
          Alcotest.(check int) "children" 2 (List.length parsed.Xml.children)
        | Error _ -> Alcotest.fail "parse failed");
    Alcotest.test_case "declaration and leading comment skipped" `Quick
      (parse_ok "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- hi -->\n<a/>"
         (el "a"));
    Alcotest.test_case "errors" `Quick (fun () ->
        parse_err "" ();
        parse_err "<a>" ();
        parse_err "<a></b>" ();
        parse_err "<a b=/>" ();
        parse_err "<a 'x'/>" ();
        parse_err "text only" ();
        parse_err "<a/><b/>" ();
        parse_err "<a>&unknown;</a>" ())
  ]

let query_tests =
  [ Alcotest.test_case "find_children / find_child" `Quick (fun () ->
        let doc =
          Xml_parse.parse_exn
            "<m><p name='a'/><q/><p name='b'/><p name='c'/></m>"
        in
        Alcotest.(check int) "three p" 3 (List.length (Xml.find_children "p" doc));
        Alcotest.(check (option string))
          "first p" (Some "a")
          (Option.bind (Xml.find_child "p" doc) (Xml.attr "name")));
    Alcotest.test_case "descendants walks the whole tree" `Quick (fun () ->
        let doc = Xml_parse.parse_exn "<a><b><c/><c/></b><c/></a>" in
        Alcotest.(check int) "three c" 3 (List.length (Xml.descendants "c" doc)));
    Alcotest.test_case "text_content concatenates" `Quick (fun () ->
        let doc = Xml_parse.parse_exn "<a>one<b>two</b>three</a>" in
        Alcotest.(check string) "text" "onetwothree" (Xml.text_content doc));
    Alcotest.test_case "attr_exn raises on absent" `Quick (fun () ->
        let doc = Xml_parse.parse_exn "<a x='1'/>" in
        Alcotest.(check string) "x" "1" (Xml.attr_exn "x" doc);
        Alcotest.check_raises "absent"
          (Invalid_argument
             "Xml.attr_exn: element <a> has no attribute \"y\"") (fun () ->
            ignore (Xml.attr_exn "y" doc)))
  ]

let printer_tests =
  [ Alcotest.test_case "escaping in output" `Quick (fun () ->
        let doc =
          el "a" ~attrs:[ ("v", "x\"y<z") ] ~children:[ Xml.text "1 < 2 & 3" ]
        in
        let text = Xml_print.to_string ~declaration:false doc in
        Alcotest.(check string)
          "escaped" "<a v=\"x&#34;y&lt;z\">1 &lt; 2 &amp; 3</a>" text);
    Alcotest.test_case "pretty output reparses equal" `Quick (fun () ->
        let doc =
          el "root"
            ~attrs:[ ("k", "v") ]
            ~children:
              [ node (el "child" ~children:[ Xml.text "body" ]);
                node (el "empty");
                Xml.comment "a comment"
              ]
        in
        let printed = Xml_print.to_string_pretty doc in
        Alcotest.check xml_testable "roundtrip" doc (Xml_parse.parse_exn printed))
  ]

(* ---- property tests: print |> parse round-trips ---- *)

let gen_name =
  QCheck2.Gen.(
    map
      (fun (c, rest) -> String.make 1 c ^ rest)
      (pair (char_range 'a' 'z')
         (string_size ~gen:(char_range 'a' 'z') (int_range 0 6))))

let gen_text =
  QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 1 12))

let gen_xml =
  QCheck2.Gen.(
    sized @@ fix (fun self size ->
        let attrs = list_size (int_range 0 3) (pair gen_name gen_text) in
        (* attribute names must be distinct *)
        let attrs =
          map
            (fun pairs ->
              let rec dedup seen = function
                | [] -> []
                | (k, v) :: rest ->
                  if List.mem k seen then dedup seen rest
                  else (k, v) :: dedup (k :: seen) rest
              in
              dedup [] pairs)
            attrs
        in
        (* Adjacent text nodes merge on reparse, so coalesce them. *)
        let coalesce children =
          let rec loop = function
            | Xml.Text a :: Xml.Text b :: rest ->
              loop (Xml.Text (a ^ b) :: rest)
            | first :: rest -> first :: loop rest
            | [] -> []
          in
          loop children
        in
        if size <= 0 then
          map2 (fun name attrs -> Xml.element ~attrs name) gen_name attrs
        else
          map3
            (fun name attrs children ->
              Xml.element ~attrs ~children:(coalesce children) name)
            gen_name attrs
            (list_size (int_range 0 3)
               (oneof
                  [ map (fun e -> Xml.Element e) (self (size / 2));
                    map Xml.text gen_text
                  ]))))

let prop_print_parse =
  QCheck2.Test.make ~count:200 ~name:"compact print |> parse" gen_xml
    (fun doc ->
      match Xml_parse.parse (Xml_print.to_string doc) with
      | Ok parsed -> Xml.equal doc parsed
      | Error _ -> false)

let prop_pretty_parse =
  QCheck2.Test.make ~count:200 ~name:"pretty print |> parse" gen_xml
    (fun doc ->
      match Xml_parse.parse (Xml_print.to_string_pretty doc) with
      | Ok parsed -> Xml.equal doc parsed
      | Error _ -> false)

let properties =
  List.map QCheck_alcotest.to_alcotest [ prop_print_parse; prop_pretty_parse ]

let () =
  Alcotest.run "cm_xml"
    [ ("parser", parser_tests);
      ("queries", query_tests);
      ("printer", printer_tests);
      ("properties", properties)
    ]
