(* Tests for the simulated OpenStack: identity, block storage, compute,
   policy enforcement, quota, fault injection. *)

module Cloud = Cm_cloudsim.Cloud
module Identity = Cm_cloudsim.Identity
module Store = Cm_cloudsim.Store
module Faults = Cm_cloudsim.Faults
module Request = Cm_http.Request
module Response = Cm_http.Response
module Meth = Cm_http.Meth
module Json = Cm_json.Json
module Subject = Cm_rbac.Subject

let fresh () =
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  cloud

let login cloud user pw =
  match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
  | Ok t -> t
  | Error e -> failwith e

let req ?token ?body meth path =
  let r = Request.make ?body meth path in
  match token with Some t -> Request.with_auth_token t r | None -> r

let volume_body ?(size = 10) name =
  Json.obj
    [ ("volume", Json.obj [ ("name", Json.string name); ("size", Json.int size) ]) ]

let create_volume cloud token ?size name =
  let resp =
    Cloud.handle cloud
      (req ~token ~body:(volume_body ?size name) Meth.POST "/v3/myProject/volumes")
  in
  match resp.Response.body with
  | Some body ->
    (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
     | Some (Json.String id) -> (resp, id)
     | _ -> (resp, "?"))
  | None -> (resp, "?")

let identity_tests =
  [ Alcotest.test_case "login success and failure" `Quick (fun () ->
        let cloud = fresh () in
        ignore (login cloud "alice" "alice-pw");
        Alcotest.(check bool) "wrong password" true
          (Result.is_error
             (Cloud.login cloud ~user:"alice" ~password:"nope"
                ~project_id:"myProject"));
        Alcotest.(check bool) "unknown user" true
          (Result.is_error
             (Cloud.login cloud ~user:"eve" ~password:"x" ~project_id:"myProject")));
    Alcotest.test_case "auth endpoint issues tokens" `Quick (fun () ->
        let cloud = fresh () in
        let resp =
          Cloud.handle cloud
            (req Meth.POST "/identity/v3/auth/tokens"
               ~body:
                 (Json.obj
                    [ ( "auth",
                        Json.obj
                          [ ("user", Json.string "bob");
                            ("password", Json.string "bob-pw");
                            ("project_id", Json.string "myProject")
                          ] )
                    ]))
        in
        Alcotest.(check int) "201" 201 resp.Response.status;
        match resp.Response.body with
        | Some body ->
          Alcotest.(check bool) "has roles" true
            (Cm_json.Pointer.get [ Key "token"; Key "roles" ] body <> None)
        | None -> Alcotest.fail "no body");
    Alcotest.test_case "auth endpoint rejects bad credentials" `Quick (fun () ->
        let cloud = fresh () in
        let resp =
          Cloud.handle cloud
            (req Meth.POST "/identity/v3/auth/tokens"
               ~body:
                 (Json.obj
                    [ ( "auth",
                        Json.obj
                          [ ("user", Json.string "bob");
                            ("password", Json.string "wrong");
                            ("project_id", Json.string "myProject")
                          ] )
                    ]))
        in
        Alcotest.(check int) "401" 401 resp.Response.status);
    Alcotest.test_case "token introspection" `Quick (fun () ->
        let cloud = fresh () in
        let token = login cloud "carol" "carol-pw" in
        let r =
          { (req Meth.GET "/identity/v3/auth/tokens") with
            Request.headers =
              Cm_http.Headers.of_list [ ("X-Subject-Token", token) ]
          }
        in
        let resp = Cloud.handle cloud r in
        Alcotest.(check int) "200" 200 resp.Response.status;
        match resp.Response.body with
        | Some body ->
          Alcotest.(check (option string)) "user" (Some "carol")
            (Option.bind
               (Cm_json.Pointer.get [ Key "token"; Key "user" ] body)
               Json.to_string)
        | None -> Alcotest.fail "no body");
    Alcotest.test_case "revoked token is invalid" `Quick (fun () ->
        let cloud = fresh () in
        let token = login cloud "alice" "alice-pw" in
        Identity.revoke (Cloud.identity cloud) ~token;
        let resp =
          Cloud.handle cloud (req ~token Meth.GET "/v3/myProject/volumes")
        in
        Alcotest.(check int) "401" 401 resp.Response.status)
  ]

let volume_tests =
  [ Alcotest.test_case "CRUD lifecycle" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let resp, id = create_volume cloud alice "data" in
        Alcotest.(check int) "created" 201 resp.Response.status;
        (* list *)
        let listing =
          Cloud.handle cloud (req ~token:alice Meth.GET "/v3/myProject/volumes")
        in
        Alcotest.(check int) "list 200" 200 listing.Response.status;
        (match listing.Response.body with
         | Some body ->
           (match Json.member "volumes" body with
            | Some (Json.List vols) ->
              Alcotest.(check int) "one volume" 1 (List.length vols)
            | _ -> Alcotest.fail "no volumes array")
         | None -> Alcotest.fail "no body");
        (* show *)
        let show =
          Cloud.handle cloud
            (req ~token:alice Meth.GET ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "show 200" 200 show.Response.status;
        (* update *)
        let update =
          Cloud.handle cloud
            (req ~token:alice Meth.PUT
               ("/v3/myProject/volumes/" ^ id)
               ~body:
                 (Json.obj
                    [ ("volume", Json.obj [ ("name", Json.string "renamed") ]) ]))
        in
        Alcotest.(check int) "update 200" 200 update.Response.status;
        (* delete *)
        let delete =
          Cloud.handle cloud
            (req ~token:alice Meth.DELETE ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "delete 204" 204 delete.Response.status;
        let gone =
          Cloud.handle cloud
            (req ~token:alice Meth.GET ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "404 after delete" 404 gone.Response.status);
    Alcotest.test_case "quota enforcement (count)" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        for i = 1 to 3 do
          let resp, _ = create_volume cloud alice (Printf.sprintf "v%d" i) in
          Alcotest.(check int) "created" 201 resp.Response.status
        done;
        let resp, _ = create_volume cloud alice "v4" in
        Alcotest.(check int) "413 over quota" 413 resp.Response.status);
    Alcotest.test_case "quota enforcement (gigabytes)" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let resp, _ = create_volume cloud alice ~size:90 "big" in
        Alcotest.(check int) "created" 201 resp.Response.status;
        let resp, _ = create_volume cloud alice ~size:20 "too-big" in
        Alcotest.(check int) "413" 413 resp.Response.status);
    Alcotest.test_case "invalid size rejected" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let resp, _ = create_volume cloud alice ~size:(-1) "bad" in
        Alcotest.(check int) "400" 400 resp.Response.status);
    Alcotest.test_case "attach blocks delete and update" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let _, id = create_volume cloud alice "data" in
        let attach =
          Cloud.handle cloud
            (req ~token:alice Meth.POST
               ("/v3/myProject/volumes/" ^ id ^ "/action")
               ~body:
                 (Json.obj
                    [ ( "os-attach",
                        Json.obj [ ("instance_uuid", Json.string "srv-x") ] )
                    ]))
        in
        Alcotest.(check int) "attach 202" 202 attach.Response.status;
        let del =
          Cloud.handle cloud
            (req ~token:alice Meth.DELETE ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "delete 400" 400 del.Response.status;
        let upd =
          Cloud.handle cloud
            (req ~token:alice Meth.PUT
               ("/v3/myProject/volumes/" ^ id)
               ~body:(Json.obj [ ("volume", Json.obj []) ]))
        in
        Alcotest.(check int) "update 400" 400 upd.Response.status;
        let detach =
          Cloud.handle cloud
            (req ~token:alice Meth.POST
               ("/v3/myProject/volumes/" ^ id ^ "/action")
               ~body:(Json.obj [ ("os-detach", Json.obj []) ]))
        in
        Alcotest.(check int) "detach 202" 202 detach.Response.status;
        let del2 =
          Cloud.handle cloud
            (req ~token:alice Meth.DELETE ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "delete 204" 204 del2.Response.status);
    Alcotest.test_case "quota and project endpoints" `Quick (fun () ->
        let cloud = fresh () in
        let carol = login cloud "carol" "carol-pw" in
        let quota =
          Cloud.handle cloud (req ~token:carol Meth.GET "/v3/myProject/quota_sets")
        in
        Alcotest.(check int) "quota 200" 200 quota.Response.status;
        (match quota.Response.body with
         | Some body ->
           Alcotest.(check (option int)) "volumes quota" (Some 3)
             (Option.bind
                (Cm_json.Pointer.get [ Key "quota_set"; Key "volumes" ] body)
                Json.to_int)
         | None -> Alcotest.fail "no body");
        let project =
          Cloud.handle cloud (req ~token:carol Meth.GET "/v3/myProject")
        in
        Alcotest.(check int) "project 200" 200 project.Response.status;
        let groups =
          Cloud.handle cloud (req ~token:carol Meth.GET "/v3/myProject/usergroups")
        in
        Alcotest.(check int) "usergroups 200" 200 groups.Response.status)
  ]

let listing_tests =
  [ Alcotest.test_case "limit / marker pagination" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let ids =
          List.map
            (fun i -> snd (create_volume cloud alice (Printf.sprintf "v%d" i)))
            [ 1; 2; 3 ]
        in
        let list_with query =
          let resp =
            Cloud.handle cloud
              (req ~token:alice Meth.GET ("/v3/myProject/volumes" ^ query))
          in
          match resp.Response.body with
          | Some body ->
            (match Json.member "volumes" body with
             | Some (Json.List vols) ->
               ( resp.Response.status,
                 List.filter_map
                   (fun v ->
                     Option.bind (Json.member "id" v) Json.to_string)
                   vols )
             | _ -> (resp.Response.status, []))
          | None -> (resp.Response.status, [])
        in
        let _, all = list_with "" in
        Alcotest.(check int) "all three" 3 (List.length all);
        let _, limited = list_with "?limit=2" in
        Alcotest.(check int) "limit=2" 2 (List.length limited);
        let _, after = list_with ("?marker=" ^ List.hd ids) in
        Alcotest.(check int) "after first" 2 (List.length after);
        Alcotest.(check bool) "marker excluded" false
          (List.mem (List.hd ids) after);
        let _, page = list_with ("?marker=" ^ List.hd ids ^ "&limit=1") in
        Alcotest.(check int) "marker+limit" 1 (List.length page);
        let status, _ = list_with "?marker=ghost" in
        Alcotest.(check int) "unknown marker 400" 400 status;
        let status, _ = list_with "?limit=-1" in
        Alcotest.(check int) "bad limit 400" 400 status);
    Alcotest.test_case "status filter" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let _, v1 = create_volume cloud alice "a" in
        ignore (create_volume cloud alice "b");
        ignore
          (Cloud.handle cloud
             (req ~token:alice Meth.POST
                ("/v3/myProject/volumes/" ^ v1 ^ "/action")
                ~body:
                  (Json.obj
                     [ ( "os-attach",
                         Json.obj [ ("instance_uuid", Json.string "s") ] )
                     ])));
        let resp =
          Cloud.handle cloud
            (req ~token:alice Meth.GET "/v3/myProject/volumes?status=in-use")
        in
        match resp.Response.body with
        | Some body ->
          (match Json.member "volumes" body with
           | Some (Json.List vols) ->
             Alcotest.(check int) "one in-use" 1 (List.length vols)
           | _ -> Alcotest.fail "no volumes")
        | None -> Alcotest.fail "no body")
  ]

let policy_tests =
  [ Alcotest.test_case "role-based denials" `Quick (fun () ->
        let cloud = fresh () in
        let bob = login cloud "bob" "bob-pw" in
        let carol = login cloud "carol" "carol-pw" in
        let alice = login cloud "alice" "alice-pw" in
        let _, id = create_volume cloud alice "data" in
        (* carol (user role) cannot create *)
        let resp, _ = create_volume cloud carol "nope" in
        Alcotest.(check int) "carol create 403" 403 resp.Response.status;
        (* bob (member) cannot delete *)
        let del =
          Cloud.handle cloud
            (req ~token:bob Meth.DELETE ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "bob delete 403" 403 del.Response.status;
        (* everyone can read *)
        let show =
          Cloud.handle cloud
            (req ~token:carol Meth.GET ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "carol read 200" 200 show.Response.status);
    Alcotest.test_case "missing token is 401" `Quick (fun () ->
        let cloud = fresh () in
        let resp = Cloud.handle cloud (req Meth.GET "/v3/myProject/volumes") in
        Alcotest.(check int) "401" 401 resp.Response.status);
    Alcotest.test_case "cross-project token is 403" `Quick (fun () ->
        let cloud = fresh () in
        ignore
          (Store.add_project (Cloud.store cloud) ~id:"other" ~name:"other"
             ~quota_volumes:1 ~quota_gigabytes:10 ());
        Identity.set_assignment (Cloud.identity cloud) ~project_id:"other"
          Cm_rbac.Security_table.cinder_assignment;
        let alice = login cloud "alice" "alice-pw" in
        (* alice's token is scoped to myProject *)
        let resp =
          Cloud.handle cloud (req ~token:alice Meth.GET "/v3/other/volumes")
        in
        Alcotest.(check int) "403" 403 resp.Response.status);
    Alcotest.test_case "unknown path is 404, wrong method 405" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let resp404 =
          Cloud.handle cloud (req ~token:alice Meth.GET "/nonsense")
        in
        Alcotest.(check int) "404" 404 resp404.Response.status;
        let resp405 =
          Cloud.handle cloud (req ~token:alice Meth.DELETE "/v3/myProject/quota_sets")
        in
        Alcotest.(check int) "405" 405 resp405.Response.status)
  ]

let compute_tests =
  [ Alcotest.test_case "server lifecycle with attachment" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let _, vol = create_volume cloud alice "disk" in
        let boot =
          Cloud.handle cloud
            (req ~token:alice Meth.POST "/v3/myProject/servers"
               ~body:
                 (Json.obj
                    [ ("server", Json.obj [ ("name", Json.string "app") ]) ]))
        in
        Alcotest.(check int) "boot 201" 201 boot.Response.status;
        let srv =
          match boot.Response.body with
          | Some body ->
            (match Cm_json.Pointer.get [ Key "server"; Key "id" ] body with
             | Some (Json.String id) -> id
             | _ -> "?")
          | None -> "?"
        in
        let attach =
          Cloud.handle cloud
            (req ~token:alice Meth.POST
               ("/v3/myProject/servers/" ^ srv ^ "/attach")
               ~body:(Json.obj [ ("volume_id", Json.string vol) ]))
        in
        Alcotest.(check int) "attach 202" 202 attach.Response.status;
        (* double attach conflicts *)
        let again =
          Cloud.handle cloud
            (req ~token:alice Meth.POST
               ("/v3/myProject/servers/" ^ srv ^ "/attach")
               ~body:(Json.obj [ ("volume_id", Json.string vol) ]))
        in
        Alcotest.(check int) "conflict 409" 409 again.Response.status;
        (* deleting the server releases the volume *)
        let teardown =
          Cloud.handle cloud
            (req ~token:alice Meth.DELETE ("/v3/myProject/servers/" ^ srv))
        in
        Alcotest.(check int) "teardown 204" 204 teardown.Response.status;
        let project =
          match Store.find_project (Cloud.store cloud) "myProject" with
          | Some p -> p
          | None -> Alcotest.fail "project gone"
        in
        (match Store.find_volume project vol with
         | Some v ->
           Alcotest.(check string) "available again" "available" v.Store.status
         | None -> Alcotest.fail "volume gone"))
  ]

let fault_tests =
  [ Alcotest.test_case "policy override opens delete to member" `Quick
      (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let bob = login cloud "bob" "bob-pw" in
        let _, id = create_volume cloud alice "v" in
        Cloud.set_faults cloud
          (Faults.of_list
             [ Faults.Policy_override
                 ( "volume:delete",
                   Cm_rbac.Policy.Or
                     (Cm_rbac.Policy.Role "admin", Cm_rbac.Policy.Role "member")
                 )
             ]);
        let del =
          Cloud.handle cloud
            (req ~token:bob Meth.DELETE ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "mutant allows member delete" 204
          del.Response.status);
    Alcotest.test_case "skip check allows everyone" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let carol = login cloud "carol" "carol-pw" in
        let _, id = create_volume cloud alice "v" in
        Cloud.set_faults cloud
          (Faults.of_list [ Faults.Skip_policy_check "volume:update" ]);
        let upd =
          Cloud.handle cloud
            (req ~token:carol Meth.PUT
               ("/v3/myProject/volumes/" ^ id)
               ~body:(Json.obj [ ("volume", Json.obj []) ]))
        in
        Alcotest.(check int) "mutant allows carol update" 200 upd.Response.status);
    Alcotest.test_case "quota ignored" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        Cloud.set_faults cloud (Faults.of_list [ Faults.Ignore_quota ]);
        for i = 1 to 5 do
          let resp, _ = create_volume cloud alice (Printf.sprintf "v%d" i) in
          Alcotest.(check int) "created beyond quota" 201 resp.Response.status
        done);
    Alcotest.test_case "zombie delete keeps the volume" `Quick (fun () ->
        let cloud = fresh () in
        let alice = login cloud "alice" "alice-pw" in
        let _, id = create_volume cloud alice "v" in
        Cloud.set_faults cloud (Faults.of_list [ Faults.Zombie_delete ]);
        let del =
          Cloud.handle cloud
            (req ~token:alice Meth.DELETE ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "claims 204" 204 del.Response.status;
        let show =
          Cloud.handle cloud
            (req ~token:alice Meth.GET ("/v3/myProject/volumes/" ^ id))
        in
        Alcotest.(check int) "still there" 200 show.Response.status);
    Alcotest.test_case "faults can be cleared" `Quick (fun () ->
        let cloud = fresh () in
        Cloud.set_faults cloud (Faults.of_list [ Faults.Ignore_quota ]);
        Cloud.set_faults cloud Faults.none;
        Alcotest.(check int) "no faults" 0
          (List.length (Faults.to_list (Cloud.faults cloud))))
  ]

let () =
  Alcotest.run "cm_cloudsim"
    [ ("identity", identity_tests);
      ("volumes", volume_tests);
      ("listing", listing_tests);
      ("policy", policy_tests);
      ("compute", compute_tests);
      ("faults", fault_tests)
    ]
