(* Tests for contract generation (§V / Listing 1), snapshots and the
   contract-checking runtime. *)

module Ast = Cm_ocl.Ast
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module Simplify = Cm_ocl.Simplify
module Contract = Cm_contracts.Contract
module Generate = Cm_contracts.Generate
module Snapshot = Cm_contracts.Snapshot
module Runtime = Cm_contracts.Runtime
module BM = Cm_uml.Behavior_model
module Cinder = Cm_uml.Cinder_model
module Meth = Cm_http.Meth
module Json = Cm_json.Json

let security =
  { Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let delete_trigger = { BM.meth = Meth.DELETE; resource = "volume" }

let delete_contract =
  match Generate.contract_for ~security Cinder.behavior delete_trigger with
  | Ok c -> c
  | Error msg -> failwith msg

let ocl = Cm_ocl.Ocl_parser.parse_exn

let listing1_tests =
  [ Alcotest.test_case "DELETE pre has three disjuncts" `Quick (fun () ->
        Alcotest.(check int) "3 branches" 3
          (List.length delete_contract.Contract.branches);
        Alcotest.(check int) "3 disjuncts" 3
          (List.length (Simplify.disjuncts delete_contract.Contract.pre)));
    Alcotest.test_case "DELETE post is three implications" `Quick (fun () ->
        let conjuncts = Simplify.conjuncts delete_contract.Contract.post in
        Alcotest.(check int) "3 implications" 3 (List.length conjuncts);
        List.iter
          (fun c ->
            match c with
            | Ast.Binop (Ast.Implies, Ast.At_pre _, _) -> ()
            | other ->
              Alcotest.failf "not `pre(...) implies ...': %s"
                (Cm_ocl.Pretty.to_string other))
          conjuncts);
    Alcotest.test_case "post mentions pre(project.volumes->size())" `Quick
      (fun () ->
        Alcotest.(check bool) "has pre()" true
          (Ast.has_pre delete_contract.Contract.post);
        let slots = Ast.pre_subexprs delete_contract.Contract.post in
        Alcotest.(check bool) "size() snapshotted" true
          (List.exists
             (Ast.equal (ocl "project.volumes->size()"))
             slots));
    Alcotest.test_case "each branch pre conjoins invariant, guard, auth" `Quick
      (fun () ->
        List.iter
          (fun (b : Contract.branch) ->
            let atoms = Simplify.conjuncts b.branch_pre in
            (* invariant atom *)
            Alcotest.(check bool) "project.id->size() = 1" true
              (List.exists (Ast.equal (ocl "project.id->size() = 1")) atoms);
            (* guard atom *)
            Alcotest.(check bool) "volume.status <> 'in-use'" true
              (List.exists (Ast.equal (ocl "volume.status <> 'in-use'")) atoms);
            (* auth atom: DELETE is admin-only = proj_administrator group *)
            Alcotest.(check bool) "auth" true
              (List.exists
                 (Ast.equal (ocl "user.groups->includes('proj_administrator')"))
                 atoms))
          delete_contract.Contract.branches);
    Alcotest.test_case "requirements traced" `Quick (fun () ->
        Alcotest.(check (list string)) "1.4" [ "1.4" ]
          delete_contract.Contract.requirements);
    Alcotest.test_case "auth guard separated" `Quick (fun () ->
        match delete_contract.Contract.auth_guard with
        | Some guard ->
          Alcotest.(check string) "admin group only"
            "user.groups->includes('proj_administrator')"
            (Cm_ocl.Pretty.to_string guard)
        | None -> Alcotest.fail "no auth guard");
    Alcotest.test_case "functional pre has no user atoms" `Quick (fun () ->
        Alcotest.(check bool) "no user" true
          (not (List.mem "user" (Ast.free_vars delete_contract.Contract.functional_pre))));
    Alcotest.test_case "contracts typecheck against the resource model" `Quick
      (fun () ->
        match Generate.all ~security Cinder.behavior with
        | Error msg -> Alcotest.fail msg
        | Ok contracts ->
          List.iter
            (fun c ->
              match Generate.typecheck Cinder.resources c with
              | [] -> ()
              | errs ->
                Alcotest.failf "%a: %a" BM.pp_trigger c.Contract.trigger
                  Fmt.(list ~sep:(any "; ") Cm_ocl.Typecheck.pp_error)
                  errs)
            contracts);
    Alcotest.test_case "one contract per distinct trigger" `Quick (fun () ->
        match Generate.all ~security Cinder.behavior with
        | Error msg -> Alcotest.fail msg
        | Ok contracts ->
          Alcotest.(check int) "five" 5 (List.length contracts));
    Alcotest.test_case "unknown trigger is an error" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Generate.contract_for Cinder.behavior
                { BM.meth = Meth.PATCH; resource = "volume" })));
    Alcotest.test_case "no security entry means false guard (fail closed)"
      `Quick (fun () ->
        (* PUT on Volumes collection is not in the table; wire a machine
           that uses it. *)
        let machine =
          { Cinder.behavior with
            BM.transitions =
              [ BM.transition ~source:Cinder.s_no_volume
                  ~target:Cinder.s_no_volume Meth.PUT "Volumes"
              ]
          }
        in
        match
          Generate.contract_for ~security machine
            { BM.meth = Meth.PUT; resource = "Volumes" }
        with
        | Error msg -> Alcotest.fail msg
        | Ok c ->
          Alcotest.(check bool) "pre is false" true
            (Ast.equal c.Contract.pre (Ast.Bool_lit false)))
  ]

(* ---- snapshots ---- *)

let volume_json status =
  Json.obj [ ("id", Json.string "v1"); ("status", Json.string status) ]

let env_with n quota =
  Eval.env_of_bindings
    [ ( "project",
        Json.obj
          [ ("id", Json.string "p");
            ("volumes", Json.list (List.init n (fun _ -> volume_json "available")))
          ] );
      ("quota_sets", Json.obj [ ("volumes", Json.int quota) ]);
      ("volume", volume_json "available");
      ( "user",
        Json.obj [ ("groups", Json.list [ Json.string "proj_administrator" ]) ]
      )
    ]

let snapshot_tests =
  [ Alcotest.test_case "compile shares identical slots" `Quick (fun () ->
        let post =
          ocl
            "project.volumes->size() = pre(project.volumes->size()) - 1 and \
             pre(project.volumes->size()) >= 1"
        in
        let compiled = Snapshot.compile post in
        Alcotest.(check int) "one slot" 1 (List.length compiled.Snapshot.slots);
        Alcotest.(check bool) "rewritten has no pre" true
          (not (Ast.has_pre compiled.Snapshot.rewritten_post)));
    Alcotest.test_case "lean check equals full check (delete case)" `Quick
      (fun () ->
        let pre_env = env_with 2 3 in
        let post_env = env_with 1 3 in
        let compiled = Snapshot.compile delete_contract.Contract.post in
        let taken = Snapshot.take compiled pre_env in
        let lean = Snapshot.check_post_lean compiled taken post_env in
        let full =
          Snapshot.check_post_full delete_contract.Contract.post ~pre:pre_env
            post_env
        in
        Alcotest.(check bool) "agree" true (lean = full);
        Alcotest.(check bool) "holds" true (lean = Value.True));
    Alcotest.test_case "lean snapshot is tiny, full is the world" `Quick
      (fun () ->
        let pre_env = env_with 3 3 in
        let compiled = Snapshot.compile delete_contract.Contract.post in
        let taken = Snapshot.take compiled pre_env in
        let lean_bytes = Snapshot.size_bytes taken in
        let full_bytes = Snapshot.full_size_bytes pre_env in
        Alcotest.(check bool) "lean nonzero" true (lean_bytes > 0);
        Alcotest.(check bool)
          (Printf.sprintf "lean (%d) < full (%d) / 4" lean_bytes full_bytes)
          true
          (lean_bytes * 4 < full_bytes));
    Alcotest.test_case "violation detected when nothing was deleted" `Quick
      (fun () ->
        let pre_env = env_with 2 3 in
        let post_env = env_with 2 3 (* unchanged! *) in
        let compiled = Snapshot.compile delete_contract.Contract.post in
        let taken = Snapshot.take compiled pre_env in
        Alcotest.(check bool) "violated" true
          (Snapshot.check_post_lean compiled taken post_env = Value.False))
  ]

(* ---- runtime ---- *)

let runtime_tests =
  [ Alcotest.test_case "check_pre verdicts" `Quick (fun () ->
        let prepared = Runtime.prepare delete_contract in
        Alcotest.(check bool) "holds with 2 volumes" true
          (Runtime.check_pre prepared (env_with 2 3) = Eval.Holds);
        Alcotest.(check bool) "violated with 0 volumes" true
          (Runtime.check_pre prepared (env_with 0 3) = Eval.Violated));
    Alcotest.test_case "covered requirements from active branches" `Quick
      (fun () ->
        let prepared = Runtime.prepare delete_contract in
        Alcotest.(check (list string)) "1.4" [ "1.4" ]
          (Runtime.covered_requirements prepared (env_with 2 3));
        Alcotest.(check (list string)) "none when pre fails" []
          (Runtime.covered_requirements prepared (env_with 0 3)));
    Alcotest.test_case "lean and full strategies agree on verdicts" `Quick
      (fun () ->
        let lean = Runtime.prepare ~strategy:Runtime.Lean delete_contract in
        let full = Runtime.prepare ~strategy:Runtime.Full delete_contract in
        let pre_env = env_with 3 3 in
        let post_env = env_with 2 3 in
        let v_lean =
          Runtime.check_post lean (Runtime.take_snapshot lean pre_env) post_env
        in
        let v_full =
          Runtime.check_post full (Runtime.take_snapshot full pre_env) post_env
        in
        Alcotest.(check bool) "agree" true
          (Eval.verdict_equal v_lean v_full);
        Alcotest.(check bool) "holds" true (v_lean = Eval.Holds))
  ]

(* property: lean and full postcondition checking agree on all contracts
   and state pairs *)
let gen_state = QCheck2.Gen.(pair (int_range 0 4) (int_range 1 4))

let all_contracts =
  match Generate.all ~security Cinder.behavior with
  | Ok cs -> cs
  | Error msg -> failwith msg

let prop_lean_full_agree =
  QCheck2.Test.make ~count:300 ~name:"lean = full snapshot verdicts"
    QCheck2.Gen.(
      triple (int_range 0 (List.length all_contracts - 1)) gen_state gen_state)
    (fun (i, (n1, q1), (n2, q2)) ->
      let contract = List.nth all_contracts i in
      let pre_env = env_with n1 q1 in
      let post_env = env_with n2 q2 in
      let compiled = Snapshot.compile contract.Contract.post in
      let taken = Snapshot.take compiled pre_env in
      Snapshot.check_post_lean compiled taken post_env
      = Snapshot.check_post_full contract.Contract.post ~pre:pre_env post_env)

(* property: the combined pre equals the disjunction of branch pres *)
let prop_pre_is_branch_disjunction =
  QCheck2.Test.make ~count:300 ~name:"pre = disjunction of branch pres"
    QCheck2.Gen.(
      pair (int_range 0 (List.length all_contracts - 1)) gen_state)
    (fun (i, (n, q)) ->
      let contract = List.nth all_contracts i in
      let env = env_with n q in
      let combined = Eval.check env contract.Contract.pre in
      let branches =
        List.fold_left
          (fun acc (b : Contract.branch) ->
            Value.tri_or acc (Eval.check env b.branch_pre))
          Value.False contract.Contract.branches
      in
      combined = branches)

(* ---- release evolution ---- *)

module Evolution = Cm_contracts.Evolution

let sample = Cm_uml.Analysis.cinder_sample ()
let table = Cm_rbac.Security_table.cinder
let assignment = Cm_rbac.Security_table.cinder_assignment
let version machine tbl = (machine, tbl, assignment)

let evolution_tests =
  [ Alcotest.test_case "identical releases show no drift" `Quick (fun () ->
        match
          Evolution.compare
            ~old_version:(version Cinder.behavior table)
            ~new_version:(version Cinder.behavior table)
            ~sample
        with
        | Error msg -> Alcotest.fail msg
        | Ok report ->
          Alcotest.(check int) "no changes" 0 (List.length report.Evolution.changes));
    Alcotest.test_case "opening DELETE to members is flagged as security drift"
      `Quick (fun () ->
        let new_table =
          List.map
            (fun (e : Cm_rbac.Security_table.entry) ->
              if e.meth = Meth.DELETE then
                { e with Cm_rbac.Security_table.roles = [ "admin"; "member" ] }
              else e)
            table
        in
        match
          Evolution.compare
            ~old_version:(version Cinder.behavior table)
            ~new_version:(version Cinder.behavior new_table)
            ~sample
        with
        | Error msg -> Alcotest.fail msg
        | Ok report ->
          Alcotest.(check bool) "auth change found" true
            (List.exists
               (function
                 | Evolution.Authorization_changed
                     (_, { roles_gained = [ "member" ]; roles_lost = [] }) ->
                   true
                 | _ -> false)
               report.Evolution.changes);
          Alcotest.(check bool) "security relevant" true
            (report.Evolution.security_relevant <> []);
          Alcotest.(check bool) "render flags SECURITY" true
            (Astring_contains.contains (Evolution.render report) "[SECURITY]"));
    Alcotest.test_case "dropping the in-use guard weakens the precondition"
      `Quick (fun () ->
        let new_machine =
          { Cinder.behavior with
            BM.transitions =
              List.map
                (fun (tr : BM.transition) ->
                  if tr.trigger.meth = Meth.DELETE then { tr with guard = None }
                  else tr)
                Cinder.behavior.BM.transitions
          }
        in
        match
          Evolution.compare
            ~old_version:(version Cinder.behavior table)
            ~new_version:(version new_machine table)
            ~sample
        with
        | Error msg -> Alcotest.fail msg
        | Ok report ->
          (match
             List.find_opt
               (function
                 | Evolution.Precondition_changed
                     ({ BM.meth = Meth.DELETE; _ }, _) -> true
                 | _ -> false)
               report.Evolution.changes
           with
           | Some (Evolution.Precondition_changed (_, change)) ->
             Alcotest.(check bool) "weakened somewhere" true
               (change.Evolution.weakened_on > 0);
             Alcotest.(check int) "not strengthened" 0
               change.Evolution.strengthened_on
           | _ -> Alcotest.fail "no precondition change reported");
          Alcotest.(check bool) "weakening is security relevant" true
            (report.Evolution.security_relevant <> []));
    Alcotest.test_case "removed and added triggers" `Quick (fun () ->
        let without_delete =
          Cm_uml.Slice.behavior
            (Cm_uml.Slice.Union
               [ Cm_uml.Slice.By_methods [ Meth.GET; Meth.POST; Meth.PUT ] ])
            Cinder.behavior
        in
        match
          Evolution.compare
            ~old_version:(version Cinder.behavior table)
            ~new_version:(version without_delete table)
            ~sample
        with
        | Error msg -> Alcotest.fail msg
        | Ok report ->
          Alcotest.(check bool) "removal flagged" true
            (List.exists
               (function
                 | Evolution.Trigger_removed { BM.meth = Meth.DELETE; _ } ->
                   true
                 | _ -> false)
               report.Evolution.changes));
    Alcotest.test_case "changed effect is postcondition drift, not security"
      `Quick (fun () ->
        let new_machine =
          { Cinder.behavior with
            BM.transitions =
              List.map
                (fun (tr : BM.transition) ->
                  if
                    tr.trigger.meth = Meth.GET
                    && tr.trigger.resource = "Volumes"
                  then
                    { tr with
                      effect =
                        Some (ocl "project.volumes->size() >= 0")
                    }
                  else tr)
                Cinder.behavior.BM.transitions
          }
        in
        match
          Evolution.compare
            ~old_version:(version Cinder.behavior table)
            ~new_version:(version new_machine table)
            ~sample
        with
        | Error msg -> Alcotest.fail msg
        | Ok report ->
          Alcotest.(check bool) "post drift reported" true
            (List.exists
               (function
                 | Evolution.Postcondition_changed (_, _) -> true
                 | _ -> false)
               report.Evolution.changes);
          Alcotest.(check bool) "not security relevant" true
            (List.for_all
               (function
                 | Evolution.Postcondition_changed (_, _) -> false
                 | _ -> true)
               report.Evolution.security_relevant))
  ]

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lean_full_agree; prop_pre_is_branch_disjunction ]

let () =
  Alcotest.run "cm_contracts"
    [ ("listing1", listing1_tests);
      ("snapshot", snapshot_tests);
      ("runtime", runtime_tests);
      ("evolution", evolution_tests);
      ("properties", properties)
    ]
