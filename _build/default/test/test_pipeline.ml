(* End-to-end pipeline tests (Fig. 4): XMI text -> models -> contracts ->
   monitor -> verdicts, and XMI -> Django files; plus the umbrella
   Cloudmon API. *)

module C = Cloudmon
module Xmi = Cm_uml.Xmi
module Cinder = Cm_uml.Cinder_model
module Meth = Cm_http.Meth
module Json = Cm_json.Json

let cinder_xmi =
  Xmi.write
    { Xmi.resource_model = Cinder.resources;
      behavior_models = [ Cinder.behavior ]
    }

let with_cloud f =
  let cloud = C.Cloudsim.create () in
  C.Cloudsim.seed cloud C.Cloudsim.my_project;
  C.Identity.add_user (C.Cloudsim.identity cloud) ~password:"svc"
    (C.Rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match C.Cloudsim.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  f cloud login

let pipeline_tests =
  [ Alcotest.test_case "monitor_of_xmi equals monitor_of_models" `Quick
      (fun () ->
        with_cloud (fun cloud login ->
            let service = login "svc" "svc" in
            let from_xmi =
              match
                C.monitor_of_xmi ~service_token:service
                  ~security:C.cinder_security cinder_xmi
                  (C.Cloudsim.handle cloud)
              with
              | Ok m -> m
              | Error msgs -> failwith (String.concat "; " msgs)
            in
            let from_models =
              match
                C.monitor_of_models ~service_token:service
                  ~security:C.cinder_security Cinder.resources Cinder.behavior
                  (C.Cloudsim.handle cloud)
              with
              | Ok m -> m
              | Error msgs -> failwith (String.concat "; " msgs)
            in
            (* The two monitors must carry syntactically equal contracts. *)
            let contracts m =
              List.map
                (fun (c : C.Contracts.Contract.t) ->
                  ( c.trigger,
                    Cm_ocl.Pretty.to_string c.pre,
                    Cm_ocl.Pretty.to_string c.post ))
                (C.Monitor.contracts m)
            in
            Alcotest.(check bool) "same contracts" true
              (contracts from_xmi = contracts from_models)));
    Alcotest.test_case "XMI-built monitor passes verdicts end to end" `Quick
      (fun () ->
        with_cloud (fun cloud login ->
            let service = login "svc" "svc" in
            let monitor =
              match
                C.monitor_of_xmi ~service_token:service
                  ~security:C.cinder_security cinder_xmi
                  (C.Cloudsim.handle cloud)
              with
              | Ok m -> m
              | Error msgs -> failwith (String.concat "; " msgs)
            in
            let alice = login "alice" "alice-pw" in
            let outcome =
              C.Monitor.handle monitor
                (C.Http.Request.make Meth.POST "/v3/myProject/volumes"
                   ~body:
                     (Json.obj
                        [ ( "volume",
                            Json.obj
                              [ ("name", Json.string "x"); ("size", Json.int 1) ]
                          )
                        ])
                |> C.Http.Request.with_auth_token alice)
            in
            Alcotest.(check bool) "conform" true
              (outcome.C.Outcome.conformance = C.Outcome.Conform)));
    Alcotest.test_case "django_of_xmi produces the project files" `Quick
      (fun () ->
        match
          C.django_of_xmi ~project_name:"cmon" ~security:C.cinder_security
            cinder_xmi
        with
        | Error msg -> Alcotest.fail msg
        | Ok files ->
          Alcotest.(check int) "eight files" 8 (List.length files);
          let views =
            List.find
              (fun (f : C.Codegen.Django_project.file) ->
                f.path = "cmon/views.py")
              files
          in
          Alcotest.(check bool) "contracts embedded" true
            (Astring_contains.contains views.content "PreCondition"));
    Alcotest.test_case "empty XMI rejected" `Quick (fun () ->
        let no_machines =
          Xmi.write
            { Xmi.resource_model = Cinder.resources; behavior_models = [] }
        in
        Alcotest.(check bool) "monitor" true
          (Result.is_error
             (C.monitor_of_xmi ~service_token:"t" no_machines (fun _ ->
                  C.Http.Response.no_content)));
        Alcotest.(check bool) "django" true
          (Result.is_error (C.django_of_xmi ~project_name:"x" no_machines)));
    Alcotest.test_case "validate_cloud defaults to the paper mutants" `Slow
      (fun () ->
        match C.validate_cloud () with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok results ->
          Alcotest.(check int) "baseline + three" 4 (List.length results);
          Alcotest.(check bool) "reproduced" true
            (C.Mutation.Campaign.all_killed results))
  ]

let () = Alcotest.run "pipeline" [ ("pipeline", pipeline_tests) ]
