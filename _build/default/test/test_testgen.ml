(* Tests for model-based test generation: plans, adaptive execution, and
   the generated suite's bug-finding power. *)

module Plan = Cm_testgen.Plan
module Case = Cm_testgen.Case
module Execute = Cm_testgen.Execute
module Driver = Cm_testgen.Cinder_driver
module Mutant = Cm_mutation.Mutant
module BM = Cm_uml.Behavior_model
module Meth = Cm_http.Meth
module Cinder = Cm_uml.Cinder_model

let table = Cm_rbac.Security_table.cinder
let assignment = Cm_rbac.Security_table.cinder_assignment

let plan_tests =
  [ Alcotest.test_case "shortest paths" `Quick (fun () ->
        (match Plan.shortest_path Cinder.behavior ~to_state:Cinder.s_no_volume with
         | Some [] -> ()
         | _ -> Alcotest.fail "initial state should need no steps");
        (match Plan.shortest_path Cinder.behavior ~to_state:Cinder.s_full with
         | Some path ->
           (* the direct quota=1 POST edge makes it one abstract step *)
           Alcotest.(check int) "one abstract step" 1 (List.length path)
         | None -> Alcotest.fail "full state unreachable");
        (match
           Plan.shortest_path_from Cinder.behavior ~from:Cinder.s_full
             ~to_state:Cinder.s_no_volume
         with
         | Some path ->
           Alcotest.(check int) "back down" 2 (List.length path)
         | None -> Alcotest.fail "no path down"));
    Alcotest.test_case "unreachable states reported" `Quick (fun () ->
        Alcotest.(check (list string)) "none in cinder" []
          (Plan.unreachable Cinder.behavior);
        let machine =
          { Cinder.behavior with
            BM.states =
              Cinder.behavior.BM.states
              @ [ BM.state "island" (Cm_ocl.Ast.Bool_lit false) ]
          }
        in
        Alcotest.(check (list string)) "island" [ "island" ]
          (Plan.unreachable machine));
    Alcotest.test_case "positive cases: one per transition x allowed role"
      `Quick (fun () ->
        let cases = Plan.positive_cases Cinder.behavior ~table ~assignment in
        (* 14 transitions; roles per trigger: POST 2, DELETE 1, GET(volume) 3,
           GET(Volumes) 3, PUT 2 *)
        let expected =
          (4 * 2) (* POST *) + (3 * 1) (* DELETE *) + (2 * 3)
          (* GET volume *) + (3 * 3) (* GET Volumes *) + (2 * 2)
          (* PUT *)
        in
        Alcotest.(check int) "count" expected (List.length cases);
        Alcotest.(check bool) "all Allowed" true
          (List.for_all (fun c -> c.Case.expectation = Case.Allowed) cases));
    Alcotest.test_case "negative cases: forbidden roles per trigger" `Quick
      (fun () ->
        let cases = Plan.negative_cases Cinder.behavior ~table ~assignment in
        (* POST: user; DELETE: member,user; GET: none; PUT: user *)
        Alcotest.(check int) "count" 4 (List.length cases);
        Alcotest.(check bool) "all denials" true
          (List.for_all
             (fun c -> c.Case.expectation = Case.Denied_authorization)
             cases));
    Alcotest.test_case "boundary cases: trigger not enabled in state" `Quick
      (fun () ->
        let cases = Plan.boundary_cases Cinder.behavior ~table ~assignment in
        (* POST in s_full; GET(volume)/PUT/DELETE in s_no_volume *)
        Alcotest.(check int) "count" 4 (List.length cases);
        Alcotest.(check bool) "POST at full quota present" true
          (List.exists
             (fun c ->
               c.Case.target.BM.trigger.meth = Meth.POST
               && c.Case.target.BM.source = Cinder.s_full)
             cases))
  ]

let execution_tests =
  [ Alcotest.test_case "correct cloud: all cases pass or skip" `Quick (fun () ->
        let cases = Plan.all Cinder.behavior ~table ~assignment in
        let report =
          Execute.run ~table ~machine:Cinder.behavior (Driver.driver ()) cases
        in
        Alcotest.(check int) "no bugs" 0 report.Execute.bugs;
        Alcotest.(check int) "no unexpected" 0 report.Execute.unexpected;
        Alcotest.(check int) "passes" 35 report.Execute.passed;
        Alcotest.(check int) "skips (unconcretizable boundaries)" 3
          report.Execute.skipped);
    Alcotest.test_case "adaptive driving reaches the full-quota state" `Quick
      (fun () ->
        (* the abstract path to s_full has 2 edges but needs 3 POSTs; a
           passing DELETE-from-full case proves the driver got there *)
        let cases =
          Plan.positive_cases Cinder.behavior ~table ~assignment
          |> List.filter (fun c ->
                 c.Case.target.BM.trigger.meth = Meth.DELETE
                 && c.Case.target.BM.source = Cinder.s_full)
        in
        Alcotest.(check int) "one such case" 1 (List.length cases);
        let report =
          Execute.run ~table ~machine:Cinder.behavior (Driver.driver ()) cases
        in
        Alcotest.(check int) "passed" 1 report.Execute.passed);
    Alcotest.test_case "generated suite kills the paper mutants" `Slow
      (fun () ->
        let cases = Plan.all Cinder.behavior ~table ~assignment in
        List.iter
          (fun m ->
            let report =
              Execute.run ~table ~machine:Cinder.behavior
                (Driver.driver ~faults:m.Mutant.faults ())
                cases
            in
            Alcotest.(check bool) (m.Mutant.name ^ " killed") true
              (report.Execute.bugs > 0))
          Mutant.paper_mutants);
    Alcotest.test_case "generated suite kills the quota mutant (boundary)"
      `Slow (fun () ->
        match Mutant.find "M4-quota-ignored" with
        | None -> Alcotest.fail "missing mutant"
        | Some m ->
          let cases = Plan.boundary_cases Cinder.behavior ~table ~assignment in
          let report =
            Execute.run ~table ~machine:Cinder.behavior
              (Driver.driver ~faults:m.Mutant.faults ())
              cases
          in
          Alcotest.(check bool) "killed" true (report.Execute.bugs > 0));
    Alcotest.test_case "render mentions failures" `Quick (fun () ->
        match Mutant.find "M1-delete-privilege-escalation" with
        | None -> Alcotest.fail "missing mutant"
        | Some m ->
          let cases = Plan.negative_cases Cinder.behavior ~table ~assignment in
          let report =
            Execute.run ~table ~machine:Cinder.behavior
              (Driver.driver ~faults:m.Mutant.faults ())
              cases
          in
          Alcotest.(check bool) "bug found" true (report.Execute.bugs > 0);
          Alcotest.(check bool) "rendered" true
            (Astring_contains.contains (Execute.render report) "CLOUD BUG"))
  ]

let generic_driver_tests =
  [ Alcotest.test_case "generic driver reproduces the Cinder results" `Slow
      (fun () ->
        let cases = Plan.all Cinder.behavior ~table ~assignment in
        let report =
          Execute.run ~table ~machine:Cinder.behavior
            (Cm_testgen.Generic_driver.driver Cm_testgen.Generic_driver.cinder_spec)
            cases
        in
        Alcotest.(check int) "no bugs" 0 report.Execute.bugs;
        Alcotest.(check int) "passes" 35 report.Execute.passed);
    Alcotest.test_case "generated campaign runs on the Glance models too"
      `Slow (fun () ->
        let glance_table = Cm_rbac.Security_table.glance in
        let machine = Cm_uml.Glance_model.behavior in
        let cases = Plan.all machine ~table:glance_table ~assignment in
        Alcotest.(check bool) "cases generated" true (List.length cases > 20);
        let report =
          Execute.run ~table:glance_table ~machine
            (Cm_testgen.Generic_driver.driver Cm_testgen.Generic_driver.glance_spec)
            cases
        in
        Alcotest.(check int) "no bugs" 0 report.Execute.bugs;
        Alcotest.(check int) "no unexpected" 0 report.Execute.unexpected;
        Alcotest.(check bool) "mostly passing" true
          (report.Execute.passed > 20));
    Alcotest.test_case "generic driver kills an image mutant" `Slow (fun () ->
        let glance_table = Cm_rbac.Security_table.glance in
        let machine = Cm_uml.Glance_model.behavior in
        let cases = Plan.negative_cases machine ~table:glance_table ~assignment in
        let faults =
          Cm_cloudsim.Faults.of_list
            [ Cm_cloudsim.Faults.Skip_policy_check "image:delete" ]
        in
        let report =
          Execute.run ~table:glance_table ~machine
            (Cm_testgen.Generic_driver.driver ~faults
               Cm_testgen.Generic_driver.glance_spec)
            cases
        in
        Alcotest.(check bool) "killed" true (report.Execute.bugs > 0))
  ]

let () =
  Alcotest.run "cm_testgen"
    [ ("plan", plan_tests);
      ("execute", execution_tests);
      ("generic-driver", generic_driver_tests)
    ]
