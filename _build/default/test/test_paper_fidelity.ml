(* Paper-fidelity tests: the verbatim artifacts of the paper are
   consumed by this implementation.

   Listing 1's precondition text is parsed exactly as printed (the
   paper's own OCL dialect: `=>`/`==>` for implies, `pre(...)`,
   single-quoted strings, `user.id.groups`), and after mechanically
   applying the documented editorial fixes (EXPERIMENTS.md, L1) it is
   verdict-equivalent to the contract this toolchain generates, over the
   full sampled observation space. *)

module Ast = Cm_ocl.Ast
module P = Cm_ocl.Ocl_parser
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module Simplify = Cm_ocl.Simplify

(* Listing 1, PreCondition(DELETE(.../volumes)), verbatim modulo
   whitespace. *)
let paper_pre_text =
  "(project.id ->size()=1 and project.volumes->size()>=1 and \
   project.volumes < quota_sets.volume and volume.status <> 'in-use' and \
   user.id.groups='admin') or (project.id ->size()=1 and \
   project.volumes->size()>=1 and project.volumes < quota_sets.volume and \
   project.volumes->size() >1 and volume.status <> 'in-use' and \
   user.id.groups= 'admin') or (project.id ->size()=1 and \
   project.volumes->size()>=1 and project.volumes = quota_sets.volume and \
   volume.status <> 'in-use' and user.id.groups= 'admin')"

(* The second implication of the paper's PostCondition, verbatim —
   exercising `=>` and `pre(...)` in one expression. *)
let paper_post_fragment =
  "(project.id ->size()=1 and project.volumes->size()>=1 and \
   project.volumes < quota_sets.volume and project.volumes->size() >1 and \
   volume.status <> 'in-use' and user.id.groups='admin') => project.id \
   ->size()=1 and project.volumes->size()>=1 and project.volumes < \
   quota_sets.volume and project.volumes->size() < \
   pre(project.volumes->size())"

(* The documented editorial fixes, as a mechanical rewrite:
   - `quota_sets.volume` is the quota count: `quota_sets.volumes`;
   - a bare `project.volumes` compared against a number means its
     cardinality: wrap in `->size()`. *)
let rec fix_paper_typos expr =
  let is_bare_volumes = function
    | Ast.Nav (Ast.Var "project", "volumes") -> true
    | _ -> false
  in
  let wrap e =
    let e = fix_paper_typos e in
    if is_bare_volumes e then Ast.Coll (e, Ast.Size) else e
  in
  match expr with
  | Ast.Nav (Ast.Var "quota_sets", "volume") ->
    Ast.Nav (Ast.Var "quota_sets", "volumes")
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Neq) as op), a, b)
    -> Ast.Binop (op, wrap a, wrap b)
  | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit
  | Ast.Var _ -> expr
  | Ast.Nav (e, p) -> Ast.Nav (fix_paper_typos e, p)
  | Ast.At_pre e -> Ast.At_pre (fix_paper_typos e)
  | Ast.Coll (e, op) -> Ast.Coll (fix_paper_typos e, op)
  | Ast.Member (e, incl, x) ->
    Ast.Member (fix_paper_typos e, incl, fix_paper_typos x)
  | Ast.Count (e, x) -> Ast.Count (fix_paper_typos e, fix_paper_typos x)
  | Ast.Iter (e, k, v, b) ->
    Ast.Iter (fix_paper_typos e, k, v, fix_paper_typos b)
  | Ast.Unop (op, e) -> Ast.Unop (op, fix_paper_typos e)
  | Ast.Binop (op, a, b) ->
    Ast.Binop (op, fix_paper_typos a, fix_paper_typos b)

let security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let our_delete_contract =
  match
    Cm_contracts.Generate.contract_for ~security Cm_uml.Cinder_model.behavior
      { Cm_uml.Behavior_model.meth = Cm_http.Meth.DELETE; resource = "volume" }
  with
  | Ok c -> c
  | Error msg -> failwith msg

let parsing_tests =
  [ Alcotest.test_case "Listing 1 precondition parses verbatim" `Quick
      (fun () ->
        let expr = P.parse_exn paper_pre_text in
        Alcotest.(check int) "three disjuncts" 3
          (List.length (Simplify.disjuncts expr));
        Alcotest.(check (list string)) "context variables"
          [ "project"; "quota_sets"; "user"; "volume" ]
          (Ast.free_vars expr));
    Alcotest.test_case "Listing 1 postcondition fragment parses verbatim"
      `Quick (fun () ->
        let expr = P.parse_exn paper_post_fragment in
        Alcotest.(check bool) "mentions the pre-state" true (Ast.has_pre expr);
        (match expr with
         | Ast.Binop (Ast.Implies, _, _) -> ()
         | _ -> Alcotest.fail "expected an implication"));
    Alcotest.test_case "paper dialect spellings all accepted" `Quick (fun () ->
        List.iter
          (fun text -> ignore (P.parse_exn text))
          [ "a => b";
            "a ==> b";
            "pre(project.volumes->size())";
            "project.volumes->size() < pre(project.volumes->size())";
            "user.id.groups='admin'"
          ])
  ]

let equivalence_tests =
  [ Alcotest.test_case
      "typo-fixed paper precondition == generated contract (72-state sample)"
      `Quick (fun () ->
        let paper = fix_paper_typos (P.parse_exn paper_pre_text) in
        let sample = Cm_uml.Analysis.cinder_sample () in
        let disagreements =
          List.filter
            (fun env ->
              let paper_verdict = Eval.check env paper in
              let ours =
                Eval.check env our_delete_contract.Cm_contracts.Contract.pre
              in
              paper_verdict <> ours)
            sample
        in
        Alcotest.(check int)
          "verdicts agree on every sampled state" 0
          (List.length disagreements));
    Alcotest.test_case "the fix rewrite is what EXPERIMENTS.md documents"
      `Quick (fun () ->
        let fixed = fix_paper_typos (P.parse_exn "project.volumes < quota_sets.volume") in
        Alcotest.(check string) "rewritten"
          "project.volumes->size() < quota_sets.volumes"
          (Cm_ocl.Pretty.to_string fixed))
  ]

let table_tests =
  [ Alcotest.test_case "Table I text: every row string appears in the render"
      `Quick (fun () ->
        let rendered =
          Cm_rbac.Security_table.render ~resources:[ "volume" ]
            Cm_rbac.Security_table.cinder
            Cm_rbac.Security_table.cinder_assignment
        in
        (* the paper's cells, verbatim *)
        List.iter
          (fun cell ->
            Alcotest.(check bool) cell true
              (Astring_contains.contains rendered cell))
          [ "Volume" |> String.lowercase_ascii;
            "1.1"; "1.2"; "1.3"; "1.4";
            "GET"; "PUT"; "POST"; "DELETE";
            "admin"; "member"; "user";
            "proj_administrator"; "service_architect"; "business_analyst"
          ])
  ]

let curl_tests =
  [ Alcotest.test_case "the paper's cURL invocation shape" `Quick (fun () ->
        (* curl -X DELETE -d id=4 http://127.0.0.1:8000/cmonitor/volumes/4 *)
        let req =
          Cm_http.Request.make Cm_http.Meth.DELETE "/cmonitor/volumes/4"
        in
        let curl = Cm_http.Request.to_curl req in
        Alcotest.(check bool) "method" true
          (Astring_contains.contains curl "curl -X DELETE");
        Alcotest.(check bool) "uri" true
          (Astring_contains.contains curl "http://127.0.0.1:8000/cmonitor/volumes/4"))
  ]

let () =
  Alcotest.run "paper-fidelity"
    [ ("listing1-parsing", parsing_tests);
      ("listing1-equivalence", equivalence_tests);
      ("table1", table_tests);
      ("curl", curl_tests)
    ]
