(* Tests for the JSON substrate: parser, printer, pointer, decoders. *)

module Json = Cm_json.Json
module Parser = Cm_json.Parser
module Printer = Cm_json.Printer
module Pointer = Cm_json.Pointer
module Decode = Cm_json.Decode

let json_testable = Alcotest.testable Json.pp Json.equal

let parse_ok input expected () =
  match Parser.parse input with
  | Ok value -> Alcotest.check json_testable input expected value
  | Error err -> Alcotest.failf "parse %S failed: %a" input Parser.pp_error err

let parse_err input () =
  match Parser.parse input with
  | Ok value -> Alcotest.failf "parse %S unexpectedly gave %a" input Json.pp value
  | Error _ -> ()

let parser_tests =
  [ Alcotest.test_case "null" `Quick (parse_ok "null" Json.Null);
    Alcotest.test_case "true/false" `Quick (fun () ->
        parse_ok "true" (Json.Bool true) ();
        parse_ok "false" (Json.Bool false) ());
    Alcotest.test_case "integers" `Quick (fun () ->
        parse_ok "0" (Json.Int 0) ();
        parse_ok "-42" (Json.Int (-42)) ();
        parse_ok "123456789" (Json.Int 123456789) ());
    Alcotest.test_case "floats" `Quick (fun () ->
        parse_ok "1.5" (Json.Float 1.5) ();
        parse_ok "-0.25" (Json.Float (-0.25)) ();
        parse_ok "1e3" (Json.Float 1000.) ();
        parse_ok "2.5E-1" (Json.Float 0.25) ());
    Alcotest.test_case "strings" `Quick (fun () ->
        parse_ok {|"hello"|} (Json.String "hello") ();
        parse_ok {|""|} (Json.String "") ();
        parse_ok {|"a\"b"|} (Json.String {|a"b|}) ();
        parse_ok {|"tab\there"|} (Json.String "tab\there") ();
        parse_ok {|"\\"|} (Json.String "\\") ());
    Alcotest.test_case "unicode escapes" `Quick (fun () ->
        parse_ok {|"A"|} (Json.String "A") ();
        parse_ok {|"é"|} (Json.String "\xc3\xa9") ();
        (* surrogate pair: U+1F600 *)
        parse_ok {|"😀"|} (Json.String "\xf0\x9f\x98\x80") ());
    Alcotest.test_case "arrays" `Quick (fun () ->
        parse_ok "[]" (Json.List []) ();
        parse_ok "[1, 2, 3]" (Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ])
          ();
        parse_ok "[[1],[2]]"
          (Json.List [ Json.List [ Json.Int 1 ]; Json.List [ Json.Int 2 ] ])
          ());
    Alcotest.test_case "objects" `Quick (fun () ->
        parse_ok "{}" (Json.Obj []) ();
        parse_ok {|{"a": 1, "b": [true]}|}
          (Json.Obj
             [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ])
          ());
    Alcotest.test_case "nested realistic body" `Quick
      (parse_ok
         {|{"volume": {"id": "vol-1", "status": "in-use", "size": 10, "attachments": [{"server_id": "srv-1"}]}}|}
         (Json.obj
            [ ( "volume",
                Json.obj
                  [ ("id", Json.string "vol-1");
                    ("status", Json.string "in-use");
                    ("size", Json.int 10);
                    ( "attachments",
                      Json.list
                        [ Json.obj [ ("server_id", Json.string "srv-1") ] ] )
                  ] )
            ]));
    Alcotest.test_case "whitespace tolerated" `Quick
      (parse_ok "  { \"a\" :\n[ 1 ,\t2 ] }  "
         (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]));
    Alcotest.test_case "duplicate keys keep first on lookup" `Quick (fun () ->
        let doc = Parser.parse_exn {|{"k": 1, "k": 2}|} in
        Alcotest.check (Alcotest.option json_testable) "first wins"
          (Some (Json.Int 1)) (Json.member "k" doc));
    Alcotest.test_case "errors" `Quick (fun () ->
        parse_err "" ();
        parse_err "{" ();
        parse_err "[1,]" ();
        parse_err "{\"a\":}" ();
        parse_err "nul" ();
        parse_err "01" ();
        parse_err "1 2" ();
        parse_err "\"unterminated" ();
        parse_err "{\"a\" 1}" ();
        parse_err "\"bad \\x escape\"" ();
        parse_err "\"\\ud800\"" () (* unpaired surrogate *));
    Alcotest.test_case "trailing garbage rejected" `Quick (parse_err "{}x")
  ]

let printer_tests =
  [ Alcotest.test_case "compact output" `Quick (fun () ->
        Alcotest.(check string)
          "compact" {|{"a":1,"b":[true,null],"c":"x"}|}
          (Printer.to_string
             (Json.obj
                [ ("a", Json.int 1);
                  ("b", Json.list [ Json.bool true; Json.null ]);
                  ("c", Json.string "x")
                ])));
    Alcotest.test_case "string escaping" `Quick (fun () ->
        Alcotest.(check string)
          "escapes" {|"a\"b\\c\nd"|}
          (Printer.to_string (Json.string "a\"b\\c\nd")));
    Alcotest.test_case "control characters escaped" `Quick (fun () ->
        Alcotest.(check string)
          "u0001" "\"\\u0001\""
          (Printer.to_string (Json.string "\001")));
    Alcotest.test_case "floats keep a decimal point" `Quick (fun () ->
        Alcotest.(check string) "2.0" "2.0" (Printer.to_string (Json.float 2.)));
    Alcotest.test_case "pretty is reparseable" `Quick (fun () ->
        let doc =
          Json.obj
            [ ("list", Json.list [ Json.int 1; Json.obj [ ("k", Json.null) ] ]);
              ("empty", Json.obj [])
            ]
        in
        Alcotest.check json_testable "roundtrip" doc
          (Parser.parse_exn (Printer.to_string_pretty doc)))
  ]

let pointer_tests =
  [ Alcotest.test_case "parse paths" `Quick (fun () ->
        Alcotest.(check bool)
          "keys" true
          (Pointer.parse_exn "volume.status"
          = [ Pointer.Key "volume"; Pointer.Key "status" ]);
        Alcotest.(check bool)
          "index" true
          (Pointer.parse_exn "volumes.0.id"
          = [ Pointer.Key "volumes"; Pointer.Index 0; Pointer.Key "id" ]);
        Alcotest.(check bool) "empty" true (Pointer.parse_exn "" = []));
    Alcotest.test_case "get" `Quick (fun () ->
        let doc =
          Parser.parse_exn
            {|{"volumes": [{"id": "v1"}, {"id": "v2"}], "quota": {"volumes": 3}}|}
        in
        Alcotest.check (Alcotest.option json_testable) "deep"
          (Some (Json.String "v2"))
          (Pointer.get (Pointer.parse_exn "volumes.1.id") doc);
        Alcotest.check (Alcotest.option json_testable) "missing" None
          (Pointer.get (Pointer.parse_exn "volumes.5.id") doc);
        Alcotest.check (Alcotest.option json_testable) "wrong shape" None
          (Pointer.get (Pointer.parse_exn "quota.volumes.x") doc));
    Alcotest.test_case "set replaces existing only" `Quick (fun () ->
        let doc = Parser.parse_exn {|{"a": {"b": 1}}|} in
        (match Pointer.set (Pointer.parse_exn "a.b") (Json.Int 2) doc with
         | Some updated ->
           Alcotest.check (Alcotest.option json_testable) "updated"
             (Some (Json.Int 2))
             (Pointer.get (Pointer.parse_exn "a.b") updated)
         | None -> Alcotest.fail "set failed");
        Alcotest.(check bool)
          "no implicit creation" true
          (Pointer.set (Pointer.parse_exn "a.c") (Json.Int 2) doc = None))
  ]

let merge_patch_tests =
  [ Alcotest.test_case "RFC 7386 examples" `Quick (fun () ->
        let check_mp name target patch expected =
          Alcotest.check json_testable name (Parser.parse_exn expected)
            (Json.merge_patch (Parser.parse_exn target)
               ~patch:(Parser.parse_exn patch))
        in
        check_mp "overwrite" {|{"a":"b"}|} {|{"a":"c"}|} {|{"a":"c"}|};
        check_mp "add" {|{"a":"b"}|} {|{"b":"c"}|} {|{"a":"b","b":"c"}|};
        check_mp "delete" {|{"a":"b"}|} {|{"a":null}|} {|{}|};
        check_mp "delete among" {|{"a":"b","b":"c"}|} {|{"a":null}|} {|{"b":"c"}|};
        check_mp "array replaces" {|{"a":["b"]}|} {|{"a":"c"}|} {|{"a":"c"}|};
        check_mp "nested merge" {|{"a":{"b":"c"}}|} {|{"a":{"b":"d","c":null}}|}
          {|{"a":{"b":"d"}}|};
        check_mp "non-object patch replaces" {|{"a":"b"}|} {|["c"]|} {|["c"]|};
        check_mp "object over scalar" {|{"a":"b"}|} {|{"a":{"c":1}}|}
          {|{"a":{"c":1}}|});
    Alcotest.test_case "patching null/absent creates" `Quick (fun () ->
        Alcotest.check json_testable "from null"
          (Parser.parse_exn {|{"k":1}|})
          (Json.merge_patch Json.Null ~patch:(Parser.parse_exn {|{"k":1}|})))
  ]

let decode_tests =
  [ Alcotest.test_case "primitives" `Quick (fun () ->
        Alcotest.(check (result int string))
          "int" (Ok 5)
          (Decode.run Decode.int (Json.Int 5));
        Alcotest.(check (result string string))
          "wrong type"
          (Error "expected string, found int")
          (Decode.run Decode.string (Json.Int 5)));
    Alcotest.test_case "fields and paths" `Quick (fun () ->
        let doc = Parser.parse_exn {|{"volume": {"size": 10}}|} in
        Alcotest.(check (result int string))
          "at" (Ok 10)
          (Decode.run (Decode.at [ "volume"; "size" ] Decode.int) doc);
        Alcotest.(check (result (option int) string))
          "field_opt absent" (Ok None)
          (Decode.run (Decode.field_opt "nope" Decode.int) doc);
        (match Decode.run (Decode.field "missing" Decode.int) doc with
         | Error msg ->
           Alcotest.(check bool) "mentions key" true
             (String.length msg > 0
             && String.sub msg 0 13 = "missing field")
         | Ok _ -> Alcotest.fail "expected error"));
    Alcotest.test_case "list decoder reports index" `Quick (fun () ->
        match
          Decode.run (Decode.list Decode.int)
            (Json.List [ Json.Int 1; Json.String "x" ])
        with
        | Error msg ->
          Alcotest.(check bool) "has index" true (String.sub msg 0 4 = "[1]:")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "map / bind / both / keys" `Quick (fun () ->
        let doc = Parser.parse_exn {|{"a": 2, "b": 3}|} in
        Alcotest.(check (result int string))
          "map" (Ok 4)
          (Decode.run (Decode.map (fun n -> n * 2) (Decode.field "a" Decode.int)) doc);
        Alcotest.(check (result int string))
          "bind" (Ok 5)
          (Decode.run
             (Decode.bind
                (fun a -> Decode.map (fun b -> a + b) (Decode.field "b" Decode.int))
                (Decode.field "a" Decode.int))
             doc);
        Alcotest.(check (result (pair int int) string))
          "both" (Ok (2, 3))
          (Decode.run
             (Decode.both (Decode.field "a" Decode.int) (Decode.field "b" Decode.int))
             doc);
        Alcotest.(check (result (list string) string))
          "keys" (Ok [ "a"; "b" ])
          (Decode.run Decode.keys doc);
        Alcotest.(check (result int string))
          "succeed" (Ok 9)
          (Decode.run (Decode.succeed 9) Json.Null);
        Alcotest.(check (result int string))
          "fail" (Error "nope")
          (Decode.run (Decode.fail "nope") Json.Null));
    Alcotest.test_case "one_of and default" `Quick (fun () ->
        let int_or_string =
          Decode.one_of
            [ Decode.map string_of_int Decode.int; Decode.string ]
        in
        Alcotest.(check (result string string))
          "first" (Ok "3")
          (Decode.run int_or_string (Json.Int 3));
        Alcotest.(check (result string string))
          "second" (Ok "x")
          (Decode.run int_or_string (Json.String "x"));
        Alcotest.(check (result int string))
          "default" (Ok 9)
          (Decode.run (Decode.default 9 Decode.int) Json.Null))
  ]

(* ---- property-based tests ---- *)

let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self size ->
        let scalar =
          oneof
            [ return Json.Null;
              map Json.bool bool;
              map Json.int (int_range (-1000) 1000);
              map Json.string (string_size ~gen:printable (int_range 0 8))
            ]
        in
        if size <= 0 then scalar
        else
          oneof
            [ scalar;
              map Json.list (list_size (int_range 0 4) (self (size / 2)));
              map Json.obj
                (list_size (int_range 0 4)
                   (pair
                      (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
                      (self (size / 2))))
            ]))

let prop_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"print |> parse is the identity" gen_json
    (fun doc ->
      match Parser.parse (Printer.to_string doc) with
      | Ok parsed -> Json.equal doc parsed
      | Error _ -> false)

let prop_pretty_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"pretty print |> parse is the identity"
    gen_json (fun doc ->
      match Parser.parse (Printer.to_string_pretty doc) with
      | Ok parsed -> Json.equal doc parsed
      | Error _ -> false)

let prop_sort_keys_idempotent =
  QCheck2.Test.make ~count:200 ~name:"sort_keys is idempotent" gen_json
    (fun doc -> Json.sort_keys (Json.sort_keys doc) = Json.sort_keys doc)

let prop_equal_reflexive =
  QCheck2.Test.make ~count:200 ~name:"equal is reflexive" gen_json (fun doc ->
      Json.equal doc doc)

let prop_compare_antisym =
  QCheck2.Test.make ~count:200 ~name:"compare antisymmetric"
    (QCheck2.Gen.pair gen_json gen_json) (fun (a, b) ->
      Json.compare a b = -Json.compare b a)

let prop_merge_patch_idempotent =
  QCheck2.Test.make ~count:200 ~name:"merge_patch is idempotent"
    (QCheck2.Gen.pair gen_json gen_json) (fun (target, patch) ->
      let once = Json.merge_patch target ~patch in
      Json.equal (Json.merge_patch once ~patch) once)

let prop_merge_patch_empty =
  QCheck2.Test.make ~count:200 ~name:"empty object patch preserves objects"
    gen_json (fun doc ->
      match doc with
      | Json.Obj _ -> Json.equal (Json.merge_patch doc ~patch:(Json.Obj [])) doc
      | _ -> true)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_patch_idempotent;
      prop_merge_patch_empty;
      prop_roundtrip;
      prop_pretty_roundtrip;
      prop_sort_keys_idempotent;
      prop_equal_reflexive;
      prop_compare_antisym
    ]

let () =
  Alcotest.run "cm_json"
    [ ("parser", parser_tests);
      ("printer", printer_tests);
      ("pointer", pointer_tests);
      ("merge-patch", merge_patch_tests);
      ("decode", decode_tests);
      ("properties", properties)
    ]
