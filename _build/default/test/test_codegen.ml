(* Tests for the Django code generation (Listings 2-3): models.py,
   urls.py, views.py, OCL-to-Python translation, project assembly. *)

module Models_py = Cm_codegen.Models_py
module Urls_py = Cm_codegen.Urls_py
module Views_py = Cm_codegen.Views_py
module Django = Cm_codegen.Django_project
module O2P = Cm_codegen.Ocl_to_python
module Cinder = Cm_uml.Cinder_model

let security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let contains = Astring_contains.contains
let ocl = Cm_ocl.Ocl_parser.parse_exn

let translate_tests =
  [ Alcotest.test_case "comparisons and connectives" `Quick (fun () ->
        Alcotest.(check string) "size eq" "(len(project__volumes) == 0)"
          (O2P.translate (ocl "project.volumes->size() = 0"));
        Alcotest.(check string) "neq" "(volume__status != 'in-use')"
          (O2P.translate (ocl "volume.status <> 'in-use'"));
        Alcotest.(check string) "implies"
          "(not ((x == 1)) or ((y == 2)))"
          (O2P.translate (ocl "x = 1 implies y = 2")));
    Alcotest.test_case "pre() becomes pre_ variables" `Quick (fun () ->
        Alcotest.(check string) "pre size"
          "(len(project__volumes) == (len(pre_project__volumes) - 1))"
          (O2P.translate
             (ocl
                "project.volumes->size() = pre(project.volumes->size()) - 1")));
    Alcotest.test_case "membership" `Quick (fun () ->
        Alcotest.(check string) "includes"
          "('admin' in user__groups)"
          (O2P.translate (ocl "user.groups->includes('admin')"));
        Alcotest.(check string) "excludes"
          "('x' not in user__groups)"
          (O2P.translate (ocl "user.groups->excludes('x')")));
    Alcotest.test_case "iterators become comprehensions" `Quick (fun () ->
        Alcotest.(check string) "forAll"
          "all((v__status != 'error') for v in project__volumes)"
          (O2P.translate (ocl "project.volumes->forAll(v | v.status <> 'error')")));
    Alcotest.test_case "variables collects flattened names" `Quick (fun () ->
        Alcotest.(check (list string)) "vars"
          [ "pre_project__volumes"; "project__volumes"; "user__groups" ]
          (O2P.variables
             (ocl
                "project.volumes->size() = pre(project.volumes->size()) and \
                 user.groups->includes('x')")))
  ]

let models_tests =
  [ Alcotest.test_case "tables for normal resources only" `Quick (fun () ->
        let text = Models_py.generate Cinder.resources in
        Alcotest.(check bool) "Project" true (contains text "class Project(models.Model):");
        Alcotest.(check bool) "Volume" true (contains text "class Volume(models.Model):");
        Alcotest.(check bool) "no Volumes collection table" false
          (contains text "class Volumes(models.Model):"));
    Alcotest.test_case "foreign keys skip collections" `Quick (fun () ->
        let text = Models_py.generate Cinder.resources in
        Alcotest.(check bool) "volume FK to project" true
          (contains text
             "models.ForeignKey(Project, related_name='volumes', \
              on_delete=models.CASCADE)"));
    Alcotest.test_case "field types" `Quick (fun () ->
        let text = Models_py.generate Cinder.resources in
        Alcotest.(check bool) "size int" true
          (contains text "size = models.IntegerField(default=0)");
        Alcotest.(check bool) "id pk" true
          (contains text "id = models.CharField(max_length=255, primary_key=True)"))
  ]

let urls_tests =
  [ Alcotest.test_case "regexes with named groups (Listing 3)" `Quick (fun () ->
        let text = Urls_py.generate ~project_name:"cmonitor" Cinder.resources in
        Alcotest.(check bool) "volumes collection" true
          (contains text
             "url(r'^v3/(?P<project_id>[^/]+)/volumes/$', \
              'cmonitor.views.volumes')");
        Alcotest.(check bool) "volume item" true
          (contains text
             "url(r'^v3/(?P<project_id>[^/]+)/volumes/(?P<volume_id>[^/]+)/$', \
              'cmonitor.views.volume')"));
    Alcotest.test_case "regex conversion" `Quick (fun () ->
        Alcotest.(check string) "converted"
          "^v3/(?P<p>[^/]+)/volumes/$"
          (Urls_py.regex_of_template
             (Cm_http.Uri_template.parse_exn "/v3/{p}/volumes")))
  ]

let views_text =
  match
    Views_py.generate ~project_name:"cmonitor"
      ~cloud_base:"http://130.232.85.9" ~security Cinder.resources
      Cinder.behavior
  with
  | Ok text -> text
  | Error msg -> failwith msg

let views_tests =
  [ Alcotest.test_case "dispatcher checks permitted methods (Listing 2)" `Quick
      (fun () ->
        Alcotest.(check bool) "volume dispatcher" true
          (contains views_text "def volume(request, project_id, volume_id):");
        Alcotest.(check bool) "not allowed" true
          (contains views_text "return HttpResponseNotAllowed"));
    Alcotest.test_case "method views embed contracts" `Quick (fun () ->
        Alcotest.(check bool) "delete view" true
          (contains views_text "def volume_delete(request, project_id, volume_id):");
        Alcotest.(check bool) "pre check" true
          (contains views_text "return HttpResponseForbidden('precondition violated')");
        Alcotest.(check bool) "post check" true
          (contains views_text "return HttpResponseServerError('postcondition violated')"));
    Alcotest.test_case "traceability variables (step 4)" `Quick (fun () ->
        Alcotest.(check bool) "SEC_REQS for delete" true
          (contains views_text "SEC_REQS = ['1.4']"));
    Alcotest.test_case "forwarding code (urllib2, Listing 2)" `Quick (fun () ->
        Alcotest.(check bool) "urllib2" true
          (contains views_text "opener = urllib2.build_opener(urllib2.HTTPHandler)");
        Alcotest.(check bool) "method override" true
          (contains views_text "RequestWithMethod(url, method='DELETE')");
        Alcotest.(check bool) "delete code check" true
          (contains views_text "if response.code in (202, 204):"));
    Alcotest.test_case "snapshot assignments come after observation" `Quick
      (fun () ->
        let obs_index = ref (-1) and snap_index = ref (-1) in
        String.split_on_char '\n' views_text
        |> List.iteri (fun i line ->
               if !obs_index < 0 && contains line "project__volumes = None" then
                 obs_index := i;
               if
                 !snap_index < 0
                 && contains line "pre_project__volumes = project__volumes"
               then snap_index := i);
        Alcotest.(check bool) "both present" true
          (!obs_index >= 0 && !snap_index >= 0);
        Alcotest.(check bool) "ordered" true (!obs_index < !snap_index))
  ]

let project_tests =
  [ Alcotest.test_case "full project file set" `Quick (fun () ->
        match
          Django.generate ~project_name:"cm" ~security Cinder.resources
            Cinder.behavior
        with
        | Error msg -> Alcotest.fail msg
        | Ok files ->
          let paths = List.map (fun (f : Django.file) -> f.path) files in
          List.iter
            (fun expected ->
              Alcotest.(check bool) expected true (List.mem expected paths))
            [ "manage.py"; "API.md"; "cm/__init__.py"; "cm/settings.py";
              "cm/models.py"; "cm/urls.py"; "cm/views.py"; "cm/policy.json"
            ]);
    Alcotest.test_case "generation is deterministic" `Quick (fun () ->
        let generate () =
          match
            Django.generate ~project_name:"cm" ~security Cinder.resources
              Cinder.behavior
          with
          | Ok files -> files
          | Error msg -> failwith msg
        in
        Alcotest.(check bool) "equal" true (generate () = generate ()));
    Alcotest.test_case "broken model refuses generation" `Quick (fun () ->
        let broken =
          { Cinder.resources with Cm_uml.Resource_model.root = "volume" }
        in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Django.generate ~project_name:"cm" broken Cinder.behavior)));
    Alcotest.test_case "write_to_dir materializes files" `Quick (fun () ->
        let dir = Filename.temp_file "cmgen" "" in
        Sys.remove dir;
        (match
           Django.generate ~project_name:"cm" ~security Cinder.resources
             Cinder.behavior
         with
         | Ok files ->
           Django.write_to_dir ~dir files;
           Alcotest.(check bool) "views.py exists" true
             (Sys.file_exists (Filename.concat dir "cm/views.py"))
         | Error msg -> Alcotest.fail msg))
  ]

let docs_tests =
  let docs =
    match
      Cm_codegen.Api_docs.generate ~title:"Cinder spec" ~security
        Cinder.resources Cinder.behavior
    with
    | Ok text -> text
    | Error msg -> failwith msg
  in
  [ Alcotest.test_case "API.md carries all the sections" `Quick (fun () ->
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains docs needle))
          [ "# Cinder spec"; "## Resources"; "## Protocol";
            "## Security requirements"; "## Method contracts";
            "### DELETE(volume)"; "```ocl";
            "/v3/{project_id}/volumes/{volume_id}";
            "project_with_volume_and_full_quota"; "proj_administrator"
          ]);
    Alcotest.test_case "API.md is deterministic" `Quick (fun () ->
        let again =
          match
            Cm_codegen.Api_docs.generate ~title:"Cinder spec" ~security
              Cinder.resources Cinder.behavior
          with
          | Ok text -> text
          | Error msg -> failwith msg
        in
        Alcotest.(check bool) "equal" true (docs = again));
    Alcotest.test_case "generated policy.json parses and matches Table I"
      `Quick (fun () ->
        match
          Cm_codegen.Django_project.generate ~project_name:"cm" ~security
            Cinder.resources Cinder.behavior
        with
        | Error msg -> Alcotest.fail msg
        | Ok files ->
          let policy_file =
            List.find
              (fun (f : Cm_codegen.Django_project.file) ->
                f.path = "cm/policy.json")
              files
          in
          (match Cm_rbac.Policy.of_file_text policy_file.content with
           | Error msg -> Alcotest.fail msg
           | Ok policy ->
             Alcotest.(check bool) "equals of_table" true
               (Cm_rbac.Policy.equal policy
                  (Cm_rbac.Policy.of_table Cm_rbac.Security_table.cinder));
             (* and a cloud booted from it behaves like the table *)
             Alcotest.(check bool) "delete admin-only" true
               (Cm_rbac.Policy.authorize policy ~action:"volume:delete"
                  ~roles:[ "admin" ] ~groups:[]);
             Alcotest.(check bool) "member denied" false
               (Cm_rbac.Policy.authorize policy ~action:"volume:delete"
                  ~roles:[ "member" ] ~groups:[])))
  ]

(* property: translated Python expressions are balanced in parentheses
   (a cheap syntactic sanity check over random contract expressions) *)
let prop_balanced =
  let gen =
    QCheck2.Gen.(
      sized @@ fix (fun self size ->
          let atom =
            oneof
              [ return (ocl "project.volumes->size() = 0");
                return (ocl "volume.status <> 'in-use'");
                return (ocl "user.groups->includes('admin')");
                return (ocl "pre(project.volumes->size()) = 1")
              ]
          in
          if size <= 0 then atom
          else
            oneof
              [ atom;
                map2
                  (fun a b -> Cm_ocl.Ast.Binop (Cm_ocl.Ast.And, a, b))
                  (self (size / 2)) (self (size / 2));
                map2
                  (fun a b -> Cm_ocl.Ast.Binop (Cm_ocl.Ast.Implies, a, b))
                  (self (size / 2)) (self (size / 2));
                map (fun e -> Cm_ocl.Ast.Unop (Cm_ocl.Ast.Not, e)) (self (size / 2))
              ]))
  in
  QCheck2.Test.make ~count:300 ~name:"python translation has balanced parens"
    gen (fun expr ->
      let text = O2P.translate expr in
      let depth = ref 0 and ok = ref true in
      String.iter
        (fun c ->
          if c = '(' then incr depth
          else if c = ')' then begin
            decr depth;
            if !depth < 0 then ok := false
          end)
        text;
      !ok && !depth = 0)

let properties = [ QCheck_alcotest.to_alcotest prop_balanced ]

let () =
  Alcotest.run "cm_codegen"
    [ ("ocl-to-python", translate_tests);
      ("models.py", models_tests);
      ("urls.py", urls_tests);
      ("views.py", views_tests);
      ("project", project_tests);
      ("api-docs", docs_tests);
      ("properties", properties)
    ]
