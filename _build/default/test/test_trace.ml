(* Tests for trace serialization and fault localization. *)

module Trace = Cm_monitor.Trace
module Outcome = Cm_monitor.Outcome
module Scenario = Cm_mutation.Scenario
module Mutant = Cm_mutation.Mutant

let outcomes_of faults =
  match Scenario.setup ~faults () with
  | Error msgs -> failwith (String.concat "; " msgs)
  | Ok ctx ->
    Scenario.standard ctx;
    Cm_monitor.Monitor.outcomes ctx.Scenario.monitor

let trace_tests =
  [ Alcotest.test_case "jsonl round-trip preserves the analyzed fields" `Quick
      (fun () ->
        let outcomes = outcomes_of Cm_cloudsim.Faults.none in
        match Trace.of_jsonl (Trace.to_jsonl outcomes) with
        | Error msg -> Alcotest.fail msg
        | Ok decoded ->
          Alcotest.(check int) "count" (List.length outcomes)
            (List.length decoded);
          List.iter2
            (fun (a : Outcome.t) (b : Outcome.t) ->
              Alcotest.(check string) "conformance"
                (Outcome.conformance_to_string a.conformance)
                (Outcome.conformance_to_string b.conformance);
              Alcotest.(check int) "status" a.response.Cm_http.Response.status
                b.response.Cm_http.Response.status;
              Alcotest.(check string) "path" a.request.Cm_http.Request.path
                b.request.Cm_http.Request.path;
              Alcotest.(check (list string)) "requirements"
                a.covered_requirements b.covered_requirements)
            outcomes decoded);
    Alcotest.test_case "tokens never leak into traces" `Quick (fun () ->
        let outcomes = outcomes_of Cm_cloudsim.Faults.none in
        let text = Trace.to_jsonl outcomes in
        Alcotest.(check bool) "no token text" false
          (Astring_contains.contains text "tok-"));
    Alcotest.test_case "malformed jsonl reported with line number" `Quick
      (fun () ->
        match Trace.of_jsonl "{\"method\": \"GET\"}\nnot json\n" with
        | Error msg ->
          Alcotest.(check bool) "line number" true
            (Astring_contains.contains msg "line 1"
            || Astring_contains.contains msg "line 2")
        | Ok _ -> Alcotest.fail "expected error")
  ]

let localize_tests =
  [ Alcotest.test_case "clean run localizes nothing" `Quick (fun () ->
        let outcomes = outcomes_of Cm_cloudsim.Faults.none in
        Alcotest.(check int) "no suspects" 0
          (List.length (Trace.localize outcomes)));
    Alcotest.test_case "mutant violations group by request shape" `Quick
      (fun () ->
        match Mutant.find "M1-delete-privilege-escalation" with
        | None -> Alcotest.fail "missing mutant"
        | Some m ->
          let outcomes = outcomes_of m.Mutant.faults in
          let suspects = Trace.localize outcomes in
          Alcotest.(check bool) "at least one suspect" true (suspects <> []);
          let first = List.hd suspects in
          Alcotest.(check bool) "DELETE implicated" true
            (Astring_contains.contains first.Trace.trigger "DELETE");
          Alcotest.(check bool) "ids abstracted" true
            (Astring_contains.contains first.Trace.trigger "{id}");
          Alcotest.(check bool) "requirement traced" true
            (List.mem "1.4" first.Trace.requirements);
          Alcotest.(check bool) "rendered" true
            (Astring_contains.contains
               (Trace.render_localization suspects)
               "DELETE"))
  ]

let () =
  Alcotest.run "cm_trace"
    [ ("serialization", trace_tests); ("localization", localize_tests) ]
