test/test_snapshots.mli:
