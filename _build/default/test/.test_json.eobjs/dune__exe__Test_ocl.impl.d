test/test_ocl.ml: Alcotest Cm_json Cm_ocl Fmt List QCheck2 QCheck_alcotest Result String
