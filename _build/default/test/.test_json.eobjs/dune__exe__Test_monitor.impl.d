test/test_monitor.ml: Alcotest Astring_contains Cm_cloudsim Cm_contracts Cm_http Cm_json Cm_monitor Cm_ocl Cm_rbac Cm_uml List Option Printf Result String
