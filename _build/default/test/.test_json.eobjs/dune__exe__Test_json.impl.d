test/test_json.ml: Alcotest Cm_json List QCheck2 QCheck_alcotest String
