test/test_http.ml: Alcotest Astring_contains Cm_http Cm_json List QCheck2 QCheck_alcotest Result String
