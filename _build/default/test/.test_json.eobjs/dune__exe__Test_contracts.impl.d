test/test_contracts.ml: Alcotest Astring_contains Cm_contracts Cm_http Cm_json Cm_ocl Cm_rbac Cm_uml Fmt List Printf QCheck2 QCheck_alcotest Result
