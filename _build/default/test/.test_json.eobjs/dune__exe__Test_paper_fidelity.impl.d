test/test_paper_fidelity.ml: Alcotest Astring_contains Cm_contracts Cm_http Cm_ocl Cm_rbac Cm_uml List String
