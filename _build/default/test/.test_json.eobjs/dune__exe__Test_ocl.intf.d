test/test_ocl.mli:
