test/test_mutation.ml: Alcotest Astring_contains Cm_json Cm_monitor Cm_mutation List Option Printf String
