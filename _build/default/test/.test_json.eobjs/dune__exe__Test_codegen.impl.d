test/test_codegen.ml: Alcotest Astring_contains Cm_codegen Cm_contracts Cm_http Cm_ocl Cm_rbac Cm_uml Filename List QCheck2 QCheck_alcotest Result String Sys
