test/test_testgen.ml: Alcotest Astring_contains Cm_cloudsim Cm_http Cm_mutation Cm_ocl Cm_rbac Cm_testgen Cm_uml List
