test/test_uml.ml: Alcotest Astring_contains Cm_contracts Cm_http Cm_ocl Cm_rbac Cm_uml Fmt List Option Printf QCheck2 QCheck_alcotest Result String
