test/test_rbac.ml: Alcotest Astring_contains Cm_http Cm_json Cm_ocl Cm_rbac List Option QCheck2 QCheck_alcotest Result String
