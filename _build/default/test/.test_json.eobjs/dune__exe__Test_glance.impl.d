test/test_glance.ml: Alcotest Cm_cloudsim Cm_contracts Cm_http Cm_json Cm_monitor Cm_ocl Cm_rbac Cm_uml Fmt List Printf String
