test/test_glance.mli:
