test/test_trace.ml: Alcotest Astring_contains Cm_cloudsim Cm_http Cm_monitor Cm_mutation List String
