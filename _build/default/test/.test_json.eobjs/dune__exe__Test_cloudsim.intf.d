test/test_cloudsim.mli:
