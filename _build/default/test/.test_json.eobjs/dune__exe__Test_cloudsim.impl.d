test/test_cloudsim.ml: Alcotest Cm_cloudsim Cm_http Cm_json Cm_rbac List Option Printf Result
