test/test_xml.ml: Alcotest Cm_xml List Option QCheck2 QCheck_alcotest String
