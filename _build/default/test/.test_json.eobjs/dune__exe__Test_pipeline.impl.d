test/test_pipeline.ml: Alcotest Astring_contains Cloudmon Cm_http Cm_json Cm_ocl Cm_uml List Result String
