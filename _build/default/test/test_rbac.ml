(* Tests for RBAC: subjects, role assignments, the Table I security
   table, the policy.json rule language. *)

module Subject = Cm_rbac.Subject
module RA = Cm_rbac.Role_assignment
module ST = Cm_rbac.Security_table
module Policy = Cm_rbac.Policy
module Meth = Cm_http.Meth
module Json = Cm_json.Json

let alice = Subject.make "alice" [ "proj_administrator" ]
let bob = Subject.make "bob" [ "service_architect" ]
let carol = Subject.make "carol" [ "business_analyst" ]
let mallory = Subject.make "mallory" [ "contractors" ]
let assignment = ST.cinder_assignment

let assignment_tests =
  [ Alcotest.test_case "roles_of resolves through groups" `Quick (fun () ->
        Alcotest.(check (list string)) "alice" [ "admin" ] (RA.roles_of alice assignment);
        Alcotest.(check (list string)) "bob" [ "member" ] (RA.roles_of bob assignment);
        Alcotest.(check (list string)) "carol" [ "user" ] (RA.roles_of carol assignment);
        Alcotest.(check (list string)) "mallory none" [] (RA.roles_of mallory assignment));
    Alcotest.test_case "multi-group subject accumulates roles" `Quick (fun () ->
        let both = Subject.make "b" [ "proj_administrator"; "business_analyst" ] in
        Alcotest.(check (list string)) "two roles" [ "admin"; "user" ]
          (RA.roles_of both assignment));
    Alcotest.test_case "groups_of_role inverts" `Quick (fun () ->
        Alcotest.(check (list string)) "admin group" [ "proj_administrator" ]
          (RA.groups_of_role "admin" assignment));
    Alcotest.test_case "enrich produces the user binding" `Quick (fun () ->
        let json = RA.enrich alice assignment in
        Alcotest.(check (option string)) "role"
          (Some "admin")
          (Option.bind (Json.member "role" json) Json.to_string);
        Alcotest.(check (option string)) "paper's user.id.groups path"
          (Some "admin")
          (Option.bind
             (Cm_json.Pointer.get [ Key "id"; Key "groups" ] json)
             Json.to_string))
  ]

let table_tests =
  [ Alcotest.test_case "Table I decisions" `Quick (fun () ->
        let decide subject meth =
          ST.allowed ST.cinder assignment ~resource:"volume" ~meth subject
        in
        (* GET: everyone in a role *)
        Alcotest.(check bool) "alice GET" true (decide alice Meth.GET);
        Alcotest.(check bool) "bob GET" true (decide bob Meth.GET);
        Alcotest.(check bool) "carol GET" true (decide carol Meth.GET);
        Alcotest.(check bool) "mallory GET" false (decide mallory Meth.GET);
        (* PUT/POST: admin and member *)
        Alcotest.(check bool) "alice PUT" true (decide alice Meth.PUT);
        Alcotest.(check bool) "bob POST" true (decide bob Meth.POST);
        Alcotest.(check bool) "carol PUT" false (decide carol Meth.PUT);
        Alcotest.(check bool) "carol POST" false (decide carol Meth.POST);
        (* DELETE: admin only *)
        Alcotest.(check bool) "alice DELETE" true (decide alice Meth.DELETE);
        Alcotest.(check bool) "bob DELETE" false (decide bob Meth.DELETE);
        Alcotest.(check bool) "carol DELETE" false (decide carol Meth.DELETE));
    Alcotest.test_case "fail closed on unknown pairs" `Quick (fun () ->
        Alcotest.(check bool) "PATCH denied" false
          (ST.allowed ST.cinder assignment ~resource:"volume" ~meth:Meth.PATCH
             alice);
        Alcotest.(check bool) "unknown resource denied" false
          (ST.allowed ST.cinder assignment ~resource:"snapshots" ~meth:Meth.GET
             alice));
    Alcotest.test_case "auth_guard is a group disjunction" `Quick (fun () ->
        match ST.find ~resource:"volume" ~meth:Meth.PUT ST.cinder with
        | None -> Alcotest.fail "no PUT entry"
        | Some entry ->
          let guard = ST.auth_guard entry assignment in
          Alcotest.(check string) "guard text"
            "user.groups->includes('proj_administrator') or \
             user.groups->includes('service_architect')"
            (Cm_ocl.Pretty.to_string guard));
    Alcotest.test_case "requirement ids" `Quick (fun () ->
        Alcotest.(check (list string)) "ids" [ "1.1"; "1.2"; "1.3"; "1.4" ]
          (ST.requirement_ids ST.cinder));
    Alcotest.test_case "rendered Table I matches the paper's rows" `Quick
      (fun () ->
        let rendered = ST.render ~resources:[ "volume" ] ST.cinder assignment in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true
              (Astring_contains.contains rendered needle))
          [ "1.1";
            "1.2";
            "1.3";
            "1.4";
            "GET";
            "PUT";
            "POST";
            "DELETE";
            "proj_administrator";
            "service_architect";
            "business_analyst"
          ];
        (* DELETE row: admin only, so service_architect must not appear
           after the 1.4 row *)
        let delete_index =
          let rec find i =
            if i + 3 > String.length rendered then -1
            else if String.sub rendered i 3 = "1.4" then i
            else find (i + 1)
          in
          find 0
        in
        let tail =
          String.sub rendered delete_index (String.length rendered - delete_index)
        in
        Alcotest.(check bool) "no architect after 1.4" false
          (Astring_contains.contains tail "service_architect"))
  ]

let rule_roundtrip rule =
  match Policy.rule_of_string (Policy.rule_to_string rule) with
  | Ok parsed -> Policy.rule_to_string parsed = Policy.rule_to_string rule
  | Error _ -> false

let policy_tests =
  [ Alcotest.test_case "rule parsing" `Quick (fun () ->
        let ok text expected =
          match Policy.rule_of_string text with
          | Ok rule ->
            Alcotest.(check string) text expected (Policy.rule_to_string rule)
          | Error msg -> Alcotest.failf "%s: %s" text msg
        in
        ok "role:admin" "role:admin";
        ok "role:admin or role:member" "role:admin or role:member";
        ok "group:x and role:y" "group:x and role:y";
        ok "(role:a or role:b) and group:g" "(role:a or role:b) and group:g";
        ok "@" "@";
        ok "!" "!";
        ok "" "@";
        Alcotest.(check bool) "bad atom" true
          (Result.is_error (Policy.rule_of_string "wizard:gandalf"));
        Alcotest.(check bool) "unbalanced" true
          (Result.is_error (Policy.rule_of_string "(role:a")));
    Alcotest.test_case "satisfies" `Quick (fun () ->
        let r = Policy.Or (Policy.Role "admin", Policy.Role "member") in
        Alcotest.(check bool) "admin" true
          (Policy.satisfies r ~roles:[ "admin" ] ~groups:[]);
        Alcotest.(check bool) "other" false
          (Policy.satisfies r ~roles:[ "user" ] ~groups:[]);
        Alcotest.(check bool) "any" true
          (Policy.satisfies Policy.Any ~roles:[] ~groups:[]);
        Alcotest.(check bool) "nobody" false
          (Policy.satisfies Policy.Nobody ~roles:[ "admin" ] ~groups:[]);
        Alcotest.(check bool) "and" true
          (Policy.satisfies
             (Policy.And (Policy.Role "admin", Policy.Group "g"))
             ~roles:[ "admin" ] ~groups:[ "g" ]));
    Alcotest.test_case "authorize fails closed" `Quick (fun () ->
        let p = Policy.of_list [ ("volume:get", Policy.Any) ] in
        Alcotest.(check bool) "known" true
          (Policy.authorize p ~action:"volume:get" ~roles:[] ~groups:[]);
        Alcotest.(check bool) "unknown" false
          (Policy.authorize p ~action:"volume:delete" ~roles:[ "admin" ]
             ~groups:[]));
    Alcotest.test_case "action naming" `Quick (fun () ->
        Alcotest.(check string) "get" "volume:get"
          (Policy.action_of ~resource:"volume" ~meth:Meth.GET);
        Alcotest.(check string) "create" "volume:create"
          (Policy.action_of ~resource:"Volume" ~meth:Meth.POST);
        Alcotest.(check string) "update" "volume:update"
          (Policy.action_of ~resource:"volume" ~meth:Meth.PUT);
        Alcotest.(check string) "delete" "volume:delete"
          (Policy.action_of ~resource:"volume" ~meth:Meth.DELETE));
    Alcotest.test_case "of_table mirrors Table I" `Quick (fun () ->
        let p = Policy.of_table ST.cinder in
        let roles_ok action roles expected =
          Alcotest.(check bool)
            (action ^ " " ^ String.concat "," roles)
            expected
            (Policy.authorize p ~action ~roles ~groups:[])
        in
        roles_ok "volume:delete" [ "admin" ] true;
        roles_ok "volume:delete" [ "member" ] false;
        roles_ok "volume:create" [ "member" ] true;
        roles_ok "volume:get" [ "user" ] true);
    Alcotest.test_case "json file round-trip" `Quick (fun () ->
        let p = Policy.of_table ST.cinder in
        match Policy.of_file_text (Policy.to_file_text p) with
        | Ok parsed -> Alcotest.(check bool) "equal" true (Policy.equal p parsed)
        | Error msg -> Alcotest.fail msg)
  ]

(* property: rule pretty-print round-trips *)
let gen_rule =
  QCheck2.Gen.(
    sized @@ fix (fun self size ->
        let atom =
          oneof
            [ map (fun s -> Policy.Role s)
                (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
              map (fun s -> Policy.Group s)
                (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
              return Policy.Any;
              return Policy.Nobody
            ]
        in
        if size <= 0 then atom
        else
          oneof
            [ atom;
              map2 (fun a b -> Policy.Or (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Policy.And (a, b)) (self (size / 2)) (self (size / 2))
            ]))

let prop_rule_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"rule print |> parse round-trips" gen_rule
    rule_roundtrip

let gen_subject_roles =
  QCheck2.Gen.(
    pair
      (list_size (int_range 0 3)
         (oneofl [ "proj_administrator"; "service_architect"; "business_analyst"; "other" ]))
      (oneofl [ Meth.GET; Meth.PUT; Meth.POST; Meth.DELETE ]))

let prop_table_policy_agree =
  QCheck2.Test.make ~count:300
    ~name:"security table and derived policy.json agree" gen_subject_roles
    (fun (groups, meth) ->
      let subject = Subject.make "s" groups in
      let table_says =
        ST.allowed ST.cinder assignment ~resource:"volume" ~meth subject
      in
      let policy_says =
        Policy.authorize (Policy.of_table ST.cinder)
          ~action:(Policy.action_of ~resource:"volume" ~meth)
          ~roles:(RA.roles_of subject assignment)
          ~groups
      in
      table_says = policy_says)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rule_roundtrip; prop_table_policy_agree ]

let () =
  Alcotest.run "cm_rbac"
    [ ("assignment", assignment_tests);
      ("security-table", table_tests);
      ("policy", policy_tests);
      ("properties", properties)
    ]
