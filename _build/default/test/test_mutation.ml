(* Tests for the mutation experiment (§VI-D): the paper's three mutants
   are killed, the baseline is clean, the extended catalog is killed. *)

module Mutant = Cm_mutation.Mutant
module Campaign = Cm_mutation.Campaign
module Scenario = Cm_mutation.Scenario
module Outcome = Cm_monitor.Outcome

let catalog_tests =
  [ Alcotest.test_case "three paper mutants" `Quick (fun () ->
        Alcotest.(check int) "three" 3 (List.length Mutant.paper_mutants);
        List.iter
          (fun m -> Alcotest.(check bool) m.Mutant.name true m.Mutant.from_paper)
          Mutant.paper_mutants);
    Alcotest.test_case "names are unique" `Quick (fun () ->
        let names = List.map (fun m -> m.Mutant.name) Mutant.all in
        Alcotest.(check int) "no dups" (List.length names)
          (List.length (List.sort_uniq String.compare names)));
    Alcotest.test_case "find" `Quick (fun () ->
        Alcotest.(check bool) "found" true
          (Mutant.find "M1-delete-privilege-escalation" <> None);
        Alcotest.(check bool) "absent" true (Mutant.find "M99" = None))
  ]

let baseline_tests =
  [ Alcotest.test_case "baseline run is violation-free" `Quick (fun () ->
        match Campaign.run_one None with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok result ->
          Alcotest.(check bool) "clean" false result.Campaign.killed;
          Alcotest.(check bool) "ran the workload" true
            (result.Campaign.exchanges > 10));
    Alcotest.test_case "baseline covers every requirement" `Quick (fun () ->
        match Scenario.setup () with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok ctx ->
          Scenario.standard ctx;
          let coverage =
            Cm_monitor.Monitor.coverage ctx.Scenario.monitor
          in
          List.iter
            (fun (req_id, count) ->
              Alcotest.(check bool) ("SecReq " ^ req_id) true (count > 0))
            coverage)
  ]

let paper_result_tests =
  [ Alcotest.test_case "all three paper mutants killed (the paper's result)"
      `Slow (fun () ->
        match Campaign.run Mutant.paper_mutants with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok results ->
          Alcotest.(check bool) "all killed, baseline clean" true
            (Campaign.all_killed results));
    Alcotest.test_case "authorization mutants die by security verdicts" `Slow
      (fun () ->
        let expected =
          [ ("M1-delete-privilege-escalation", "SECURITY:unauthorized-request-allowed");
            ("M2-update-check-missing", "SECURITY:unauthorized-request-allowed");
            ("M3-get-wrongly-denied", "SECURITY:authorized-request-denied")
          ]
        in
        List.iter
          (fun (name, expected_verdict) ->
            match Mutant.find name with
            | None -> Alcotest.failf "mutant %s missing" name
            | Some m ->
              (match Campaign.run_one (Some m) with
               | Error msgs -> Alcotest.fail (String.concat "; " msgs)
               | Ok result ->
                 Alcotest.(check bool) (name ^ " killed") true result.Campaign.killed;
                 Alcotest.(check bool)
                   (name ^ " has verdict " ^ expected_verdict)
                   true
                   (List.exists
                      (fun (o : Outcome.t) ->
                        Outcome.conformance_to_string o.conformance
                        = expected_verdict)
                      result.Campaign.violations)))
          expected)
  ]

let extended_tests =
  [ Alcotest.test_case "extended catalog killed" `Slow (fun () ->
        match Campaign.run Mutant.extended_mutants with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok results ->
          List.iter
            (fun (r : Campaign.result) ->
              match r.mutant with
              | None -> Alcotest.(check bool) "baseline clean" false r.killed
              | Some m ->
                Alcotest.(check bool) (m.Mutant.name ^ " killed") true r.killed)
            results);
    Alcotest.test_case "campaign exports to JSON" `Slow (fun () ->
        match Campaign.run Mutant.paper_mutants with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok results ->
          let json = Campaign.to_json results in
          Alcotest.(check (option bool)) "all killed" (Some true)
            (Option.bind
               (Cm_json.Json.member "all_killed" json)
               Cm_json.Json.to_bool);
          (match Cm_json.Json.member "runs" json with
           | Some (Cm_json.Json.List runs) ->
             Alcotest.(check int) "baseline + 3" 4 (List.length runs)
           | _ -> Alcotest.fail "no runs"));
    Alcotest.test_case "kill matrix renders every row" `Slow (fun () ->
        match Campaign.run Mutant.paper_mutants with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok results ->
          let matrix = Campaign.kill_matrix results in
          List.iter
            (fun m ->
              Alcotest.(check bool) m.Mutant.name true
                (Astring_contains.contains matrix m.Mutant.name))
            Mutant.paper_mutants;
          Alcotest.(check bool) "baseline row" true
            (Astring_contains.contains matrix "baseline"))
  ]

let oracle_independence_tests =
  [ Alcotest.test_case "enforce mode also blocks what oracle flags" `Quick
      (fun () ->
        (* Under M1, oracle mode flags the escalation; enforce mode must
           prevent it outright. *)
        match Mutant.find "M1-delete-privilege-escalation" with
        | None -> Alcotest.fail "mutant missing"
        | Some m ->
          (match
             Scenario.setup ~mode:Cm_monitor.Monitor.Enforce
               ~faults:m.Mutant.faults ()
           with
           | Error msgs -> Alcotest.fail (String.concat "; " msgs)
           | Ok ctx ->
             Scenario.standard ctx;
             let outcomes = Cm_monitor.Monitor.outcomes ctx.Scenario.monitor in
             (* No security violation can be *observed* because the
                monitor blocks the forbidden calls before the cloud. *)
             Alcotest.(check bool) "no unauthorized-allowed observed" true
               (not
                  (List.exists
                     (fun (o : Outcome.t) ->
                       o.conformance = Outcome.Security_unauthorized_allowed)
                     outcomes))))
  ]

let explorer_tests =
  [ Alcotest.test_case "random walk on a correct cloud never violates" `Slow
      (fun () ->
        List.iter
          (fun seed ->
            match
              Cm_mutation.Explorer.run
                ~config:{ Cm_mutation.Explorer.seed; steps = 120 }
                ()
            with
            | Error msgs -> Alcotest.fail (String.concat "; " msgs)
            | Ok result ->
              Alcotest.(check int)
                (Printf.sprintf "seed %d clean" seed)
                0
                (List.length result.Cm_mutation.Explorer.violations);
              Alcotest.(check bool) "walk did something" true
                (result.Cm_mutation.Explorer.exchanges > 50))
          [ 1; 7; 42 ]);
    Alcotest.test_case "random walk is deterministic in its seed" `Quick
      (fun () ->
        let run () =
          match
            Cm_mutation.Explorer.run
              ~config:{ Cm_mutation.Explorer.seed = 5; steps = 60 }
              ()
          with
          | Ok r -> (r.Cm_mutation.Explorer.exchanges, r.verdict_counts, r.actions_tried)
          | Error msgs -> failwith (String.concat "; " msgs)
        in
        Alcotest.(check bool) "same trace summary" true (run () = run ()));
    Alcotest.test_case "random walk finds the escalation mutant" `Slow
      (fun () ->
        match Mutant.find "M1-delete-privilege-escalation" with
        | None -> Alcotest.fail "missing mutant"
        | Some m ->
          (match
             Cm_mutation.Explorer.run
               ~config:{ Cm_mutation.Explorer.seed = 3; steps = 200 }
               ~faults:m.Mutant.faults ()
           with
           | Error msgs -> Alcotest.fail (String.concat "; " msgs)
           | Ok result ->
             Alcotest.(check bool) "violations found" true
               (result.Cm_mutation.Explorer.violations <> [])))
  ]

let () =
  Alcotest.run "cm_mutation"
    [ ("catalog", catalog_tests);
      ("baseline", baseline_tests);
      ("paper-result", paper_result_tests);
      ("extended", extended_tests);
      ("enforce", oracle_independence_tests);
      ("explorer", explorer_tests)
    ]
