(* A multi-service scenario: Cinder volumes interact with Nova-lite
   servers and with nested snapshots.  Attaching a volume to a server
   flips it to in-use, which both the volume-protocol guards (no delete
   while attached) and the snapshot-protocol guards (no snapshot of a
   non-quiesced volume) observe.  Two monitors — one per behavioral
   model — watch the same cloud side by side.

   Run with: dune exec examples/multi_service.exe *)

module C = Cloudmon

let () =
  let cloud = C.Cloudsim.create () in
  C.Cloudsim.seed cloud C.Cloudsim.my_project;
  C.Identity.add_user (C.Cloudsim.identity cloud) ~password:"svc"
    (C.Rbac.Subject.make "svc" [ "proj_administrator" ]);
  let token user pw =
    match C.Cloudsim.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service_token = token "svc" "svc" in
  let monitor =
    match
      C.monitor_of_models ~mode:C.Monitor.Oracle ~service_token
        ~security:C.cinder_security C.Uml.Cinder_model.resources
        C.Uml.Cinder_model.behavior (C.Cloudsim.handle cloud)
    with
    | Ok m -> m
    | Error msgs ->
      List.iter prerr_endline msgs;
      exit 1
  in
  let alice = token "alice" "alice-pw" in
  let carol = token "carol" "carol-pw" in
  let step label user meth path ?body () =
    let req =
      C.Http.Request.make ?body meth path |> C.Http.Request.with_auth_token user
    in
    let outcome = C.Monitor.handle monitor req in
    Fmt.pr "%-48s -> %3d %a@." label
      outcome.C.Outcome.response.C.Http.Response.status
      C.Outcome.pp_conformance outcome.C.Outcome.conformance;
    outcome
  in
  let json_id member outcome =
    match outcome.C.Outcome.cloud_response with
    | Some { C.Http.Response.body = Some body; _ } ->
      (match C.Json.member member body with
       | Some doc ->
         (match C.Json.member "id" doc with
          | Some (C.Json.String id) -> id
          | _ -> failwith "no id in response")
       | None -> failwith ("no " ^ member ^ " in response"))
    | _ -> failwith "no response body"
  in
  print_endline "== Cinder + Nova-lite: attachment lifecycle ==";
  let volumes = "/v3/myProject/volumes" in
  let servers = "/v3/myProject/servers" in
  let vol =
    json_id "volume"
      (step "create database volume" alice C.Http.Meth.POST volumes
         ~body:
           (C.Json.obj
              [ ( "volume",
                  C.Json.obj
                    [ ("name", C.Json.string "db-disk");
                      ("size", C.Json.int 20)
                    ] )
              ])
         ())
  in
  let srv =
    json_id "server"
      (step "boot application server (Nova, unmodelled)" alice C.Http.Meth.POST
         servers
         ~body:
           (C.Json.obj
              [ ("server", C.Json.obj [ ("name", C.Json.string "app-1") ]) ])
         ())
  in
  ignore
    (step "attach volume to server (Nova, unmodelled)" alice C.Http.Meth.POST
       (servers ^ "/" ^ srv ^ "/attach")
       ~body:(C.Json.obj [ ("volume_id", C.Json.string vol) ])
       ());
  ignore
    (step "volume is now in-use" alice C.Http.Meth.GET (volumes ^ "/" ^ vol) ());
  ignore
    (step "delete attached volume (spec forbids)" alice C.Http.Meth.DELETE
       (volumes ^ "/" ^ vol) ());
  ignore
    (step "tear down the server (detaches)" alice C.Http.Meth.DELETE
       (servers ^ "/" ^ srv) ());
  ignore
    (step "delete volume after detach" alice C.Http.Meth.DELETE
       (volumes ^ "/" ^ vol) ());
  (* --- the snapshot protocol, watched by its own monitor --- *)
  print_endline "";
  print_endline "== nested snapshots under their own monitor ==";
  let snapshot_monitor =
    match
      C.monitor_of_models ~service_token
        ~security:
          { C.Contracts.Generate.table = C.Uml.Snapshot_model.security_table;
            assignment = C.Rbac.Security_table.cinder_assignment
          }
        C.Uml.Snapshot_model.resources C.Uml.Snapshot_model.behavior
        (C.Cloudsim.handle cloud)
    with
    | Ok m -> m
    | Error msgs ->
      List.iter prerr_endline msgs;
      exit 1
  in
  let snap_step label user meth path ?body () =
    let req =
      C.Http.Request.make ?body meth path |> C.Http.Request.with_auth_token user
    in
    let outcome = C.Monitor.handle snapshot_monitor req in
    Fmt.pr "%-48s -> %3d %a@." label
      outcome.C.Outcome.response.C.Http.Response.status
      C.Outcome.pp_conformance outcome.C.Outcome.conformance;
    outcome
  in
  let vol2 =
    json_id "volume"
      (step "create a second volume for snapshotting" alice C.Http.Meth.POST
         volumes
         ~body:
           (C.Json.obj
              [ ( "volume",
                  C.Json.obj
                    [ ("name", C.Json.string "db-disk-2");
                      ("size", C.Json.int 10)
                    ] )
              ])
         ())
  in
  let snaps = volumes ^ "/" ^ vol2 ^ "/snapshots" in
  let snap_body name =
    C.Json.obj [ ("snapshot", C.Json.obj [ ("name", C.Json.string name) ]) ]
  in
  let snap_id =
    json_id "snapshot"
      (snap_step "snapshot the quiesced volume" alice C.Http.Meth.POST snaps
         ~body:(snap_body "pre-upgrade") ())
  in
  ignore
    (snap_step "carol tries to snapshot (forbidden)" carol C.Http.Meth.POST
       snaps ~body:(snap_body "forbidden") ());
  ignore (snap_step "list snapshots" carol C.Http.Meth.GET snaps ());
  ignore
    (snap_step "delete the snapshot" alice C.Http.Meth.DELETE
       (snaps ^ "/" ^ snap_id) ());

  print_endline "";
  let summary = C.Report.summarize (C.Monitor.outcomes monitor) in
  Fmt.pr "%a@." C.Report.pp_summary summary;
  if summary.C.Report.violations = 0 then
    print_endline "cloud conforms to the models across both services"
  else begin
    print_endline "UNEXPECTED VIOLATIONS:";
    List.iter
      (fun o -> Fmt.pr "  %a@." C.Outcome.pp o)
      (C.Report.violations (C.Monitor.outcomes monitor));
    exit 1
  end
