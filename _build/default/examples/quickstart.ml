(* Quickstart: build a monitor from the paper's Cinder models, run one
   monitored request against the simulated cloud, and print the verdict.

   Run with: dune exec examples/quickstart.exe *)

module C = Cloudmon

let () =
  (* 1. A private cloud (the simulated OpenStack), seeded with the
     paper's project and users. *)
  let cloud = C.Cloudsim.create () in
  C.Cloudsim.seed cloud C.Cloudsim.my_project;
  C.Identity.add_user (C.Cloudsim.identity cloud) ~password:"svc"
    (C.Rbac.Subject.make "svc" [ "proj_administrator" ]);
  let token user pw =
    match C.Cloudsim.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service_token = token "svc" "svc" in

  (* 2. The monitor, generated from the models and Table I. *)
  let monitor =
    match
      C.monitor_of_models ~service_token ~security:C.cinder_security
        C.Uml.Cinder_model.resources C.Uml.Cinder_model.behavior
        (C.Cloudsim.handle cloud)
    with
    | Ok m -> m
    | Error msgs ->
      List.iter prerr_endline msgs;
      exit 1
  in

  (* 3. One monitored request: alice (admin) creates a volume. *)
  let request =
    C.Http.Request.make C.Http.Meth.POST "/v3/myProject/volumes"
      ~body:
        (C.Json.obj
           [ ( "volume",
               C.Json.obj
                 [ ("name", C.Json.string "quickstart-volume");
                   ("size", C.Json.int 10)
                 ] )
           ])
    |> C.Http.Request.with_auth_token (token "alice" "alice-pw")
  in
  print_endline ("request:  " ^ C.Http.Request.to_curl request);
  let outcome = C.Monitor.handle monitor request in
  Fmt.pr "response: %a@." C.Http.Response.pp outcome.C.Outcome.response;
  Fmt.pr "verdict:  %a@." C.Outcome.pp_conformance outcome.C.Outcome.conformance;
  Fmt.pr "covered security requirements: %s@."
    (String.concat ", " outcome.C.Outcome.covered_requirements);

  (* 4. And one the specification forbids: carol (plain user) deletes. *)
  let volume_id =
    match outcome.C.Outcome.cloud_response with
    | Some resp ->
      (match resp.C.Http.Response.body with
       | Some body ->
         (match C.Json.member "volume" body with
          | Some v ->
            (match C.Json.member "id" v with
             | Some (C.Json.String id) -> id
             | _ -> "vol-1")
          | None -> "vol-1")
       | None -> "vol-1")
    | None -> "vol-1"
  in
  let forbidden =
    C.Http.Request.make C.Http.Meth.DELETE ("/v3/myProject/volumes/" ^ volume_id)
    |> C.Http.Request.with_auth_token (token "carol" "carol-pw")
  in
  let outcome2 = C.Monitor.handle monitor forbidden in
  Fmt.pr "@.forbidden delete by carol -> %a (%a)@."
    C.Http.Status.pp outcome2.C.Outcome.response.C.Http.Response.status
    C.Outcome.pp_conformance outcome2.C.Outcome.conformance
