(* Reproduction of the paper's validation (§VI-D): inject authorization
   mutants into the simulated private cloud and check that the monitor
   kills every one of them, while staying quiet on the correct cloud.

   Run with: dune exec examples/mutation_campaign.exe *)

let () =
  print_endline "== mutation campaign over the simulated private cloud ==";
  print_endline "";
  let mutants = Cloudmon.Mutation.Mutant.all in
  match Cloudmon.validate_cloud ~mutants () with
  | Error msgs ->
    prerr_endline "monitor construction failed:";
    List.iter prerr_endline msgs;
    exit 1
  | Ok results ->
    print_string (Cloudmon.Mutation.Campaign.kill_matrix results);
    print_endline "";
    let paper_results =
      List.filter
        (fun (r : Cloudmon.Mutation.Campaign.result) ->
          match r.mutant with
          | None -> true
          | Some m -> m.Cloudmon.Mutation.Mutant.from_paper)
        results
    in
    if Cloudmon.Mutation.Campaign.all_killed paper_results then
      print_endline
        "paper result reproduced: all three authorization mutants killed, \
         baseline clean"
    else begin
      print_endline "PAPER RESULT NOT REPRODUCED";
      exit 1
    end;
    if Cloudmon.Mutation.Campaign.all_killed results then
      print_endline "extended catalog: every mutant killed as well"
    else
      print_endline "note: some extended mutants survived (see matrix above)"
