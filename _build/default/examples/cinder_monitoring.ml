(* The paper's running example end to end: the Cinder volume lifecycle
   monitored in Enforce mode (the proxy of Fig. 2).

   The full lifecycle is driven through the monitor: create to quota,
   attempt over-quota creation, update, attach, attempt delete-in-use,
   detach, delete — printing the workflow verdict of each exchange and
   the generated contracts that govern them.

   Run with: dune exec examples/cinder_monitoring.exe *)

module C = Cloudmon

let show_contracts monitor =
  print_endline "== contracts generated from the Cinder models (Listing 1) ==";
  List.iter
    (fun contract -> Fmt.pr "@.%a@." C.Contracts.Contract.pp contract)
    (C.Monitor.contracts monitor)

let () =
  let cloud = C.Cloudsim.create () in
  C.Cloudsim.seed cloud C.Cloudsim.my_project;
  C.Identity.add_user (C.Cloudsim.identity cloud) ~password:"svc"
    (C.Rbac.Subject.make "svc" [ "proj_administrator" ]);
  let token user pw =
    match C.Cloudsim.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service_token = token "svc" "svc" in
  let monitor =
    match
      C.monitor_of_models ~mode:C.Monitor.Enforce ~service_token
        ~security:C.cinder_security C.Uml.Cinder_model.resources
        C.Uml.Cinder_model.behavior (C.Cloudsim.handle cloud)
    with
    | Ok m -> m
    | Error msgs ->
      List.iter prerr_endline msgs;
      exit 1
  in
  show_contracts monitor;
  print_endline "";
  print_endline "== monitored volume lifecycle (Enforce mode) ==";
  let alice = token "alice" "alice-pw" in
  let bob = token "bob" "bob-pw" in
  let carol = token "carol" "carol-pw" in
  let step label user meth path ?body () =
    let req =
      C.Http.Request.make ?body meth path |> C.Http.Request.with_auth_token user
    in
    let outcome = C.Monitor.handle monitor req in
    Fmt.pr "%-44s -> %3d %a@." label
      outcome.C.Outcome.response.C.Http.Response.status
      C.Outcome.pp_conformance outcome.C.Outcome.conformance;
    outcome
  in
  let volume_body name =
    C.Json.obj
      [ ( "volume",
          C.Json.obj [ ("name", C.Json.string name); ("size", C.Json.int 10) ]
        )
      ]
  in
  let base = "/v3/myProject/volumes" in
  let created =
    step "alice creates volume 1" alice C.Http.Meth.POST base
      ~body:(volume_body "data1") ()
  in
  let v1 =
    match created.C.Outcome.cloud_response with
    | Some { C.Http.Response.body = Some body; _ } ->
      (match C.Json.member "volume" body with
       | Some v ->
         (match C.Json.member "id" v with
          | Some (C.Json.String id) -> id
          | _ -> "vol-1")
       | None -> "vol-1")
    | _ -> "vol-1"
  in
  ignore
    (step "alice creates volume 2" alice C.Http.Meth.POST base
       ~body:(volume_body "data2") ());
  ignore
    (step "alice creates volume 3 (fills quota)" alice C.Http.Meth.POST base
       ~body:(volume_body "data3") ());
  ignore
    (step "alice creates volume 4 (over quota, blocked)" alice C.Http.Meth.POST
       base ~body:(volume_body "data4") ());
  ignore (step "bob lists volumes" bob C.Http.Meth.GET base ());
  ignore (step "carol reads volume 1" carol C.Http.Meth.GET (base ^ "/" ^ v1) ());
  ignore
    (step "carol deletes volume 1 (blocked: role)" carol C.Http.Meth.DELETE
       (base ^ "/" ^ v1) ());
  ignore
    (step "bob renames volume 1" bob C.Http.Meth.PUT (base ^ "/" ^ v1)
       ~body:
         (C.Json.obj [ ("volume", C.Json.obj [ ("name", C.Json.string "db") ]) ])
       ());
  ignore
    (step "alice attaches volume 1 (unmodelled URI)" alice C.Http.Meth.POST
       (base ^ "/" ^ v1 ^ "/action")
       ~body:
         (C.Json.obj
            [ ( "os-attach",
                C.Json.obj [ ("instance_uuid", C.Json.string "srv-9") ] )
            ])
       ());
  ignore
    (step "alice deletes volume 1 (blocked: in-use)" alice C.Http.Meth.DELETE
       (base ^ "/" ^ v1) ());
  ignore
    (step "alice detaches volume 1" alice C.Http.Meth.POST
       (base ^ "/" ^ v1 ^ "/action")
       ~body:(C.Json.obj [ ("os-detach", C.Json.obj []) ])
       ());
  ignore
    (step "alice deletes volume 1" alice C.Http.Meth.DELETE (base ^ "/" ^ v1) ());
  print_endline "";
  let summary = C.Report.summarize (C.Monitor.outcomes monitor) in
  print_string (C.Report.render summary ~coverage:(C.Monitor.coverage monitor))
