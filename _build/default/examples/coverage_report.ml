(* Security-requirement traceability (§IV-C): the requirement ids from
   Table I are attached to model transitions, flow into the generated
   contracts, and are reported as covered when an exchange exercises a
   branch carrying them.  This example runs a partial workload on
   purpose and shows which requirements the test campaign still misses.

   Run with: dune exec examples/coverage_report.exe *)

module C = Cloudmon

let () =
  let cloud = C.Cloudsim.create () in
  C.Cloudsim.seed cloud C.Cloudsim.my_project;
  C.Identity.add_user (C.Cloudsim.identity cloud) ~password:"svc"
    (C.Rbac.Subject.make "svc" [ "proj_administrator" ]);
  let token user pw =
    match C.Cloudsim.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service_token = token "svc" "svc" in
  let monitor =
    match
      C.monitor_of_models ~service_token ~security:C.cinder_security
        C.Uml.Cinder_model.resources C.Uml.Cinder_model.behavior
        (C.Cloudsim.handle cloud)
    with
    | Ok m -> m
    | Error msgs ->
      List.iter prerr_endline msgs;
      exit 1
  in
  let alice = token "alice" "alice-pw" in
  let request meth path ?body () =
    ignore
      (C.Monitor.handle monitor
         (C.Http.Request.make ?body meth path
         |> C.Http.Request.with_auth_token alice))
  in
  print_endline "== requirement coverage under a partial test campaign ==";
  print_endline "(the campaign only creates and lists volumes)";
  print_endline "";
  request C.Http.Meth.POST "/v3/myProject/volumes"
    ~body:
      (C.Json.obj
         [ ( "volume",
             C.Json.obj [ ("name", C.Json.string "a"); ("size", C.Json.int 5) ]
           )
         ])
    ();
  request C.Http.Meth.GET "/v3/myProject/volumes" ();
  request C.Http.Meth.GET "/v3/myProject/volumes/vol-1" ();
  let coverage = C.Monitor.coverage monitor in
  List.iter
    (fun (req_id, count) ->
      if count = 0 then
        Fmt.pr "SecReq %-6s NOT COVERED -- extend the test campaign@." req_id
      else Fmt.pr "SecReq %-6s covered (%d exchanges)@." req_id count)
    coverage;
  print_endline "";
  print_endline
    "requirements 1.2 (PUT) and 1.4 (DELETE) are flagged: the campaign never \
     exercises them.";
  (* Now complete the campaign and show full coverage. *)
  request C.Http.Meth.PUT "/v3/myProject/volumes/vol-1"
    ~body:
      (C.Json.obj [ ("volume", C.Json.obj [ ("name", C.Json.string "b") ]) ])
    ();
  request C.Http.Meth.DELETE "/v3/myProject/volumes/vol-1" ();
  print_endline "";
  print_endline "after adding PUT and DELETE steps:";
  List.iter
    (fun (req_id, count) ->
      Fmt.pr "SecReq %-6s %s@." req_id
        (if count = 0 then "NOT COVERED" else "covered"))
    (C.Monitor.coverage monitor)
