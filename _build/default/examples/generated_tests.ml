(* Model-based test generation (§III: "we can use several existing
   model-based testing approaches"): the behavioral model and security
   table are compiled into an executable test campaign — transition
   coverage, authorization probes, and behavioural boundary cases — with
   the cloud monitor acting as the oracle (§III-B, user 4).

   The campaign runs twice: against the correct cloud (everything
   passes) and against a mutated cloud (the generated probes find the
   bug), finishing with the fault-localization report produced from the
   monitoring trace.

   Run with: dune exec examples/generated_tests.exe *)

module C = Cloudmon

let machine = C.Uml.Cinder_model.behavior
let table = C.Rbac.Security_table.cinder
let assignment = C.Rbac.Security_table.cinder_assignment

let () =
  let cases = C.Testgen.Plan.all machine ~table ~assignment in
  Printf.printf "generated %d test cases from the models:\n"
    (List.length cases);
  List.iter (fun case -> Fmt.pr "  %a@." C.Testgen.Case.pp case) cases;

  print_endline "";
  print_endline "== campaign against the correct cloud ==";
  let report =
    C.Testgen.Execute.run ~table ~machine
      (C.Testgen.Cinder_driver.driver ())
      cases
  in
  print_string (C.Testgen.Execute.render report);

  print_endline "";
  print_endline
    "== campaign against a mutated cloud (M1: DELETE opened to members) ==";
  match C.Mutation.Mutant.find "M1-delete-privilege-escalation" with
  | None -> prerr_endline "mutant missing"
  | Some mutant ->
    let report =
      C.Testgen.Execute.run ~table ~machine
        (C.Testgen.Cinder_driver.driver ~faults:mutant.C.Mutation.Mutant.faults
           ())
        cases
    in
    print_string (C.Testgen.Execute.render report);
    if report.C.Testgen.Execute.bugs > 0 then
      print_endline "\nthe generated probes killed the mutant."
    else begin
      print_endline "\nMUTANT SURVIVED";
      exit 1
    end
