examples/quickstart.ml: Cloudmon Fmt List String
