examples/generated_tests.ml: Cloudmon Fmt List Printf
