examples/cinder_monitoring.ml: Cloudmon Fmt List
