examples/release_check.mli:
