examples/mutation_campaign.ml: Cloudmon List
