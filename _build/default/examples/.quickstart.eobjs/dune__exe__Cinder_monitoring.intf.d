examples/cinder_monitoring.mli:
