examples/generated_tests.mli:
