examples/coverage_report.ml: Cloudmon Fmt List
