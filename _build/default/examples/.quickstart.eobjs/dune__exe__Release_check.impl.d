examples/release_check.ml: Cloudmon List Printf
