examples/coverage_report.mli:
