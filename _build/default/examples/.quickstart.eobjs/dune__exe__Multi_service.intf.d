examples/multi_service.mli:
