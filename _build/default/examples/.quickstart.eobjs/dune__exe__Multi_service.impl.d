examples/multi_service.ml: Cloudmon Fmt List
