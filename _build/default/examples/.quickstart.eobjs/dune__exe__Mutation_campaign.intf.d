examples/mutation_campaign.mli:
