examples/quickstart.mli:
